//! Bit-identity proofs for the vectorized kernels.
//!
//! The columnar fast paths in `ops/`, `table.rs` and `expr.rs` must
//! produce **byte-identical** output to the retained row-at-a-time
//! implementations in [`ditto_sql::reference`]. Property tests sweep
//! random tables across join kinds × key types, aggregate sets, partition
//! counts and predicates; a fixed-seed sweep re-executes all five TPC-DS
//! query plans through both interpreters; codec tests round-trip
//! dictionary-encoded columns and reject truncated or corrupted frames.

use ditto_sql::column::{Column, DataType, Value};
use ditto_sql::ops::group_by::{AggFunc, AggSpec};
use ditto_sql::ops::{distinct, group_by, hash_join, sort_limit, JoinKind, SortOrder};
use ditto_sql::reference as refimpl;
use ditto_sql::{CmpOp, Pred, Schema, Table};
use proptest::prelude::*;

/// Strategy: a table with an i64 key, a string key, an i64 payload and an
/// f64 payload. Keys are drawn from small ranges so joins and group-bys
/// exercise chains (duplicate keys) and misses.
fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    proptest::collection::vec((0i64..8, 0usize..6, -4i64..4, -2.0f64..2.0), 0..max_rows)
        .prop_map(|rows| {
            let states = ["TN", "CA", "NY", "WA", "", "Tennessee"];
            let mut k = Vec::new();
            let mut s = Vec::new();
            let mut v = Vec::new();
            let mut x = Vec::new();
            for (a, b, c, d) in rows {
                k.push(a);
                s.push(states[b].to_string());
                v.push(c);
                x.push(d);
            }
            Table::new(
                Schema::new(&[
                    ("k", DataType::I64),
                    ("s", DataType::Str),
                    ("v", DataType::I64),
                    ("x", DataType::F64),
                ]),
                vec![
                    Column::I64(k),
                    Column::Str(s),
                    Column::I64(v),
                    Column::F64(x),
                ],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Joins: every kind × both key types, bit-identical to the reference.
    #[test]
    fn join_matches_reference(l in arb_table(48), r in arb_table(48)) {
        for kind in [JoinKind::Inner, JoinKind::LeftSemi, JoinKind::LeftAnti] {
            for key in ["k", "s"] {
                prop_assert_eq!(
                    hash_join(&l, &r, key, key, kind),
                    refimpl::hash_join_reference(&l, &r, key, key, kind),
                    "kind={:?} key={}", kind, key
                );
            }
        }
    }

    /// Group-by: all aggregate functions over i64, string and compound
    /// keys, with and without HAVING.
    #[test]
    fn group_by_matches_reference(t in arb_table(64)) {
        let aggs = [
            AggSpec { func: AggFunc::Count, input: "v".into(), output: "cnt".into() },
            AggSpec { func: AggFunc::CountDistinct, input: "v".into(), output: "cd".into() },
            AggSpec { func: AggFunc::Sum, input: "x".into(), output: "sx".into() },
            AggSpec { func: AggFunc::Avg, input: "x".into(), output: "ax".into() },
            AggSpec { func: AggFunc::Min, input: "v".into(), output: "mn".into() },
            AggSpec { func: AggFunc::Max, input: "x".into(), output: "mx".into() },
        ];
        let having = Pred::Cmp {
            col: "cnt".into(),
            op: CmpOp::Ge,
            value: Value::I64(2),
        };
        for keys in [&["k"][..], &["s"][..], &["k", "s"][..], &[][..]] {
            for h in [None, Some(&having)] {
                prop_assert_eq!(
                    group_by(&t, keys, &aggs, h),
                    refimpl::group_by_reference(&t, keys, &aggs, h),
                    "keys={:?} having={}", keys, h.is_some()
                );
            }
        }
    }

    /// Partitioning: bucket assignment, per-bucket contents and the fused
    /// `encode_partitions` wire bytes all match the two-step reference.
    #[test]
    fn partition_matches_reference(t in arb_table(64), n in 1usize..7, key in 0usize..2) {
        let key = ["k", "s"][key];
        let parts = t.hash_partition(key, n);
        let expect = refimpl::hash_partition_reference(&t, key, n);
        prop_assert_eq!(&parts, &expect);
        let encoded = t.encode_partitions(key, n);
        prop_assert_eq!(encoded.len(), parts.len());
        for (e, p) in encoded.iter().zip(&parts) {
            prop_assert_eq!(&e.data, &p.encode(), "fused encode differs");
            prop_assert_eq!(e.rows, p.num_rows());
        }
    }

    /// Split: contiguous slicing matches index-vector take.
    #[test]
    fn split_matches_reference(t in arb_table(64), n in 1usize..7) {
        prop_assert_eq!(t.split(n), refimpl::split_reference(&t, n));
    }

    /// Distinct and sort-limit agree with the reference row-at-a-time path.
    #[test]
    fn distinct_and_sort_match_reference(t in arb_table(64), limit in 0usize..70) {
        for cols in [&["k"][..], &["s"][..], &["k", "v"][..]] {
            prop_assert_eq!(
                distinct(&t, cols),
                refimpl::distinct_reference(&t, cols),
                "cols={:?}", cols
            );
        }
        // sort_limit has no separate reference impl, but Desc must remain
        // the exact reverse of the stable Asc order.
        let asc = sort_limit(&t, "v", SortOrder::Asc, t.num_rows());
        let desc = sort_limit(&t, "v", SortOrder::Desc, limit);
        let mut rev: Vec<i64> = asc.column_req("v").as_i64().to_vec();
        rev.reverse();
        rev.truncate(limit);
        prop_assert_eq!(desc.column_req("v").as_i64(), &rev[..]);
    }

    /// Predicate evaluation matches the per-row reference evaluator.
    #[test]
    fn eval_matches_reference(t in arb_table(64), pivot in -4i64..4) {
        let preds = [
            Pred::eq_i64("k", pivot),
            Pred::eq_str("s", "TN"),
            Pred::between_i64("v", -2, 2),
            Pred::InI64 { col: "k".into(), set: vec![1, 3, 5] },
            Pred::InStr { col: "s".into(), set: vec!["CA".into(), "".into()] },
            Pred::ColCmp { left: "x".into(), op: CmpOp::Gt, right: "v".into(), scale: 0.5 },
            Pred::And(vec![
                Pred::Not(Box::new(Pred::eq_str("s", "NY"))),
                Pred::Or(vec![Pred::eq_i64("k", 2), Pred::between_i64("v", 0, 9)]),
            ]),
        ];
        for p in &preds {
            prop_assert_eq!(p.eval(&t), refimpl::eval_reference(p, &t), "{:?}", p);
        }
    }

    /// Codec: v2 encode (bulk numerics + dictionary strings) round-trips
    /// through both `decode` and `try_decode`, and any strict prefix of the
    /// frame is rejected rather than mis-decoded.
    #[test]
    fn codec_roundtrip_and_truncation(t in arb_table(64)) {
        let bytes = t.encode();
        prop_assert_eq!(Table::decode(bytes.clone()), t.clone());
        prop_assert_eq!(Table::try_decode(bytes.clone()).expect("valid frame"), t);
        for cut in 0..bytes.len() {
            prop_assert!(
                Table::try_decode(bytes.slice(..cut)).is_err(),
                "truncated frame of {} bytes accepted", cut
            );
        }
    }
}

/// Fixed-seed sweep: all five TPC-DS query plans execute bit-identically
/// through the vectorized interpreter and the retained reference
/// interpreter, on a non-trivial generated database.
#[test]
fn five_query_sweep_matches_reference_interpreter() {
    use ditto_sql::datagen::{Database, ScaleConfig};
    use ditto_sql::queries::Query;
    let db = Database::generate(ScaleConfig::with_sf(0.05));
    for q in Query::all_extended() {
        let plan = q.prepared_plan(&db);
        let fast = plan.execute_reference(&db);
        let slow = refimpl::execute_plan_reference(&plan, &db);
        assert_eq!(fast, slow, "{} diverged from reference interpreter", q.name());
        // And the results survive a wire round-trip.
        assert_eq!(
            Table::decode(fast.encode()),
            fast,
            "{} codec round-trip",
            q.name()
        );
    }
}

/// Corruption: flipping a dictionary code past the dictionary length, or
/// inflating the dictionary length field, must be rejected by
/// `try_decode` with a descriptive error — never a panic or a wrong table.
#[test]
fn dict_codec_rejects_corruption() {
    let t = Table::new(
        Schema::new(&[("s", DataType::Str)]),
        vec![Column::Str(vec!["alpha".into(), "beta".into(), "alpha".into()])],
    );
    let good = t.encode();
    prop_assert_roundtrip(&t, &good);
    // Last 4 bytes are the final row's u32 dictionary code.
    let mut bad = good.to_vec();
    let n = bad.len();
    bad[n - 4..].copy_from_slice(&999u32.to_le_bytes());
    let err = Table::try_decode(bytes::Bytes::from(bad)).unwrap_err();
    assert!(err.contains("out of range"), "unexpected error: {err}");
    // Dictionary-length field claims more entries than rows.
    let mut bad = good.to_vec();
    // Layout: ncols(4) + name_len(4) + "s"(1) + tag(1) + nrows(8) = offset 18.
    bad[18..22].copy_from_slice(&77u32.to_le_bytes());
    assert!(Table::try_decode(bytes::Bytes::from(bad)).is_err());
}

/// Empty tables (zero rows, and zero columns) round-trip through the
/// dictionary codec.
#[test]
fn codec_empty_edge_cases() {
    let empty_rows = Table::empty(Schema::new(&[("s", DataType::Str), ("k", DataType::I64)]));
    prop_assert_roundtrip(&empty_rows, &empty_rows.encode());
    let no_cols = Table::new(Schema { fields: vec![] }, vec![]);
    prop_assert_roundtrip(&no_cols, &no_cols.encode());
}

fn prop_assert_roundtrip(t: &Table, bytes: &bytes::Bytes) {
    assert_eq!(&Table::decode(bytes.clone()), t);
    assert_eq!(&Table::try_decode(bytes.clone()).expect("valid frame"), t);
}
