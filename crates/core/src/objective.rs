//! Optimization objective: JCT or cost (user-specified, §3).

use std::fmt;

/// What the scheduler minimizes for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize job completion time.
    #[default]
    Jct,
    /// Minimize cost (Σ resource·time per task plus storage persistence).
    Cost,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Objective::Jct => "jct",
            Objective::Cost => "cost",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_default() {
        assert_eq!(Objective::Jct.to_string(), "jct");
        assert_eq!(Objective::Cost.to_string(), "cost");
        assert_eq!(Objective::default(), Objective::Jct);
    }
}
