//! Typed execution errors.
//!
//! Both engines expose fallible entry points (`try_simulate`,
//! `LocalRuntime::try_run`) returning [`ExecError`]; the historical
//! panicking APIs remain as thin wrappers for callers that treat these
//! conditions as bugs.

use std::fmt;

/// Everything that can go wrong while simulating or physically running a
/// scheduled job.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The schedule does not match the DAG it is being executed against.
    InvalidSchedule(String),
    /// The DAG has a cycle (no topological order exists).
    CyclicDag,
    /// A task never received one of its input partitions.
    MissingInput {
        /// Consuming stage index.
        stage: u32,
        /// Consuming task index.
        task: u32,
        /// Human-readable context (edge, timeout, …).
        detail: String,
    },
    /// A stage shuffles but declares no partitioning key.
    MissingOutputKey {
        /// Offending stage index.
        stage: u32,
    },
    /// A worker thread panicked while running a task of this stage.
    TaskPanicked {
        /// Stage index.
        stage: u32,
    },
    /// A task kept crashing past [`RecoveryPolicy::max_retries`].
    ///
    /// [`RecoveryPolicy::max_retries`]: crate::faults::RecoveryPolicy::max_retries
    RetriesExhausted {
        /// Stage index.
        stage: u32,
        /// Task index.
        task: u32,
        /// Attempts consumed (including the first execution).
        attempts: u32,
    },
    /// The surviving cluster is too small to host the job (e.g. after a
    /// server failure).
    InsufficientCapacity {
        /// Slots required (at least one per stage).
        needed: u32,
        /// Slots actually free.
        available: u32,
    },
    /// The data plane rejected an intermediate partition.
    DataPlane(String),
    /// A seeded coordinator crash killed the engine mid-append (the
    /// journal's torn tail survives; recover with
    /// [`JournalSession::resume`]).
    ///
    /// [`JournalSession::resume`]: crate::journal::JournalSession::resume
    CoordinatorCrash {
        /// Journal record index the crash tore.
        at_record: u64,
    },
    /// The write-ahead journal is inconsistent with the run replaying it
    /// (divergent decisions, conflicting commits, malformed records).
    Journal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidSchedule(why) => write!(f, "invalid schedule: {why}"),
            ExecError::CyclicDag => write!(f, "DAG is cyclic; no topological order"),
            ExecError::MissingInput { stage, task, detail } => {
                write!(f, "stage {stage} task {task} missing input: {detail}")
            }
            ExecError::MissingOutputKey { stage } => {
                write!(f, "stage {stage} shuffles without an output_key")
            }
            ExecError::TaskPanicked { stage } => {
                write!(f, "a worker thread of stage {stage} panicked")
            }
            ExecError::RetriesExhausted { stage, task, attempts } => write!(
                f,
                "stage {stage} task {task} failed {attempts} attempts; retries exhausted"
            ),
            ExecError::InsufficientCapacity { needed, available } => write!(
                f,
                "cluster too small after failure: need {needed} slots, {available} free"
            ),
            ExecError::DataPlane(why) => write!(f, "data plane error: {why}"),
            ExecError::CoordinatorCrash { at_record } => {
                write!(f, "coordinator crashed at journal record {at_record}")
            }
            ExecError::Journal(why) => write!(f, "journal error: {why}"),
        }
    }
}

impl std::error::Error for ExecError {}
