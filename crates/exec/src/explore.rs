//! Small-scope model checking of the simulators' schedule space.
//!
//! The discrete-event engines ([`crate::faults`], [`crate::adaptive`])
//! execute stages through a ready queue; stages with **bit-equal** ready
//! times are simultaneous events with no physical ordering, so the
//! simulation result must not depend on how their tie is broken. This
//! module *checks* that claim the loom way: it re-runs the same job under
//! every tie-break interleaving (exhaustively up to a budget, then
//! seeded-sampled), asserting bit-identical [`JobMetrics`] and
//! structurally identical traces. Any divergence is shrunk to a minimal
//! witness decision vector — the smallest set of flipped tie-breaks that
//! reproduces the difference — which is what goes into a regression test.
//!
//! The tie-break decision tree is *dynamic*: flipping an early decision
//! can change which later batches form. Enumeration therefore walks the
//! tree odometer-style — after each run, the realized `(decisions,
//! arity)` vectors name the path taken and its branching, and the next
//! script increments the last incrementable position and truncates the
//! tail (depth-first over the trie of schedules).

use crate::adaptive::{try_simulate_adaptive_tie, AdaptiveConfig};
use crate::error::ExecError;
use crate::faults::{
    sim_pass_with, FaultPlan, FaultRates, RecoveryPolicy, ReschedulingContext,
};
use crate::groundtruth::{ExecConfig, GroundTruth};
use crate::metrics::JobMetrics;
use crate::queue::TieBreak;
use crate::trace::ExecutionTrace;
use ditto_cluster::ResourceManager;
use ditto_core::{DittoScheduler, JointOptions, Objective, Schedule, Scheduler, SchedulingContext};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_dag::{JobDag, StageKind};
use ditto_obs::Recorder;
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;

/// Exploration budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreConfig {
    /// Interleavings to enumerate exhaustively (depth-first over the
    /// decision trie, canonical run included). Small DAGs usually have
    /// fewer total interleavings than this and are covered completely.
    pub max_enumerated: usize,
    /// Seeded-random interleavings sampled after the enumeration budget
    /// is spent (0 = none).
    pub samples: u64,
    /// Seed for the sampling phase.
    pub seed: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_enumerated: 128,
            samples: 16,
            seed: 0,
        }
    }
}

/// A tie-break interleaving whose result differs from the canonical one,
/// shrunk to a minimal witness.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The canonical run's realized decision vector (all zeros).
    pub canonical_decisions: Vec<u32>,
    /// Minimal diverging decision vector (greedily shrunk: no single
    /// decision in it can be reset to canonical without the divergence
    /// disappearing).
    pub witness_decisions: Vec<u32>,
    /// What differed (first mismatching field, rendered).
    pub detail: String,
}

/// Result of exploring one job's schedule space.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOutcome {
    /// Interleavings actually run (canonical + enumerated + sampled).
    pub interleavings: usize,
    /// Tie-break decision points in the canonical run.
    pub decision_points: usize,
    /// Whether enumeration covered the whole decision trie (no budget
    /// cut-off; sampling adds nothing when this is true).
    pub exhaustive: bool,
    /// The first divergence found, if any, shrunk to a minimal witness.
    pub divergence: Option<Divergence>,
}

/// One run's comparable result: metrics bit-compared, traces compared
/// structurally (both are canonically (stage, task)-sorted by the engine).
struct RunResult {
    metrics: JobMetrics,
    trace: ExecutionTrace,
    decisions: Vec<u32>,
    arity: Vec<u32>,
}

/// First difference between two runs, if any.
fn diff(canon: &RunResult, other: &RunResult) -> Option<String> {
    if canon.metrics != other.metrics {
        return Some(format!(
            "JobMetrics diverge: canonical {:?} vs witness {:?}",
            canon.metrics, other.metrics
        ));
    }
    if canon.trace.tasks != other.trace.tasks {
        let i = canon
            .trace
            .tasks
            .iter()
            .zip(&other.trace.tasks)
            .position(|(a, b)| a != b)
            .unwrap_or(canon.trace.tasks.len().min(other.trace.tasks.len()));
        return Some(format!("task timelines diverge at index {i}"));
    }
    if canon.trace.attempts != other.trace.attempts {
        return Some("attempt histories diverge".to_string());
    }
    if canon.trace.replans != other.trace.replans {
        return Some("replan records diverge".to_string());
    }
    None
}

/// Depth-first successor of a realized `(decisions, arity)` path in the
/// decision trie: increment the last incrementable position, drop the
/// tail. `None` when the trie is exhausted.
fn next_script(decisions: &[u32], arity: &[u32]) -> Option<Vec<u32>> {
    let mut i = decisions.len();
    while i > 0 {
        i -= 1;
        if decisions[i] + 1 < arity[i] {
            let mut s = decisions[..i].to_vec();
            s.push(decisions[i] + 1);
            return Some(s);
        }
    }
    None
}

/// Explore every tie-break interleaving of one simulated job, frozen or
/// adaptive. `adaptive` switches the engine:
/// `Some((ctx, cfg))` drives [`crate::try_simulate_adaptive`] (replans
/// enabled), `None` drives the frozen fault engine. Returns the outcome
/// with any divergence shrunk to a minimal witness; engine-level errors
/// (retries exhausted, infeasible splice) propagate.
pub fn explore_schedule(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    adaptive: Option<(&ReschedulingContext<'_>, &AdaptiveConfig)>,
    cfg: &ExploreConfig,
) -> Result<ExploreOutcome, ExecError> {
    let muted = Recorder::disabled();
    let run = |mut tie: TieBreak| -> Result<RunResult, ExecError> {
        let (trace, metrics) = match adaptive {
            Some((ctx, acfg)) => try_simulate_adaptive_tie(
                dag, schedule, gt, plan, policy, ctx, acfg, &muted, &mut tie, None,
            )?,
            None => {
                let pass = sim_pass_with(dag, schedule, gt, plan, policy, &muted, &mut tie)?;
                (pass.trace, pass.metrics)
            }
        };
        Ok(RunResult {
            metrics,
            trace,
            decisions: tie.decisions,
            arity: tie.arity,
        })
    };

    let canon = run(TieBreak::canonical())?;
    let mut interleavings = 1usize;
    let mut exhaustive = true;
    let mut first_divergence: Option<(Vec<u32>, String)> = None;

    // Exhaustive phase: depth-first over the trie.
    let mut cursor = next_script(&canon.decisions, &canon.arity);
    while let Some(script) = cursor {
        if interleavings >= cfg.max_enumerated {
            exhaustive = false;
            break;
        }
        let r = run(TieBreak::scripted(script))?;
        interleavings += 1;
        if let Some(detail) = diff(&canon, &r) {
            first_divergence = Some((r.decisions.clone(), detail));
            break;
        }
        cursor = next_script(&r.decisions, &r.arity);
    }

    // Sampling phase: only when the trie was too big to enumerate.
    if first_divergence.is_none() && !exhaustive {
        for k in 0..cfg.samples {
            let r = run(TieBreak::random(cfg.seed.wrapping_add(k)))?;
            interleavings += 1;
            if let Some(detail) = diff(&canon, &r) {
                first_divergence = Some((r.decisions.clone(), detail));
                break;
            }
        }
    }

    // Shrink: greedily reset decisions to canonical (0), left to right,
    // keeping any reset that preserves the divergence; repeat to a
    // fixpoint. The result is 1-minimal — no single remaining flip can
    // be dropped.
    let divergence = match first_divergence {
        None => None,
        Some((mut witness, mut detail)) => {
            loop {
                let mut shrunk = false;
                let mut i = 0;
                while i < witness.len() {
                    if witness[i] == 0 {
                        i += 1;
                        continue;
                    }
                    let mut candidate = witness.clone();
                    candidate[i] = 0;
                    let r = run(TieBreak::scripted(candidate))?;
                    interleavings += 1;
                    if let Some(d) = diff(&canon, &r) {
                        witness = r.decisions;
                        detail = d;
                        shrunk = true;
                        // restart the left-to-right pass on the new path
                        break;
                    }
                    i += 1;
                }
                if !shrunk {
                    break;
                }
            }
            Some(Divergence {
                canonical_decisions: canon.decisions.clone(),
                witness_decisions: witness,
                detail,
            })
        }
    };

    Ok(ExploreOutcome {
        interleavings,
        decision_points: canon.decisions.len(),
        exhaustive,
        divergence,
    })
}

/// Model-check tie-break invariance on `n` small random DAGs with faults
/// *and* adaptive replanning enabled — the acceptance sweep behind
/// `figures -- race`. Deterministic in `(n, cfg.seed)`. Returns one
/// outcome per DAG; the caller fails on any `divergence`.
pub fn explore_random_dags(n: usize, cfg: &ExploreConfig) -> Result<Vec<ExploreOutcome>, ExecError> {
    let gt = GroundTruth::new(ExecConfig::default());
    let mut outcomes = Vec::with_capacity(n);
    for i in 0..n as u64 {
        // Small DAGs keep full enumeration feasible; sources share ready
        // time 0.0, so every multi-source DAG has at least one batch.
        let stages = 5 + (i % 4) as usize;
        let dag = random_dag(1000 + i, &RandomDagConfig::sized(stages));
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![12, 10]);
        let schedule = DittoScheduler::new().schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        // Faults: seeded crashes/stragglers/object loss, plus kind drift
        // strong enough to trip the adaptive detector into replanning.
        let plan = FaultPlan::from_rates(FaultRates {
            crash_prob: 0.1,
            straggler_prob: 0.1,
            straggler_slowdown: 3.0,
            loss_prob: 0.15,
            corruption_prob: 0.05,
            ..FaultRates::none(2000 + i)
        })
        .with_kind_drift(StageKind::Map, 2.0)
        .with_kind_drift(StageKind::Reduce, 2.0);
        let policy = RecoveryPolicy {
            max_retries: 16,
            ..Default::default()
        };
        let ctx = ReschedulingContext {
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        };
        let acfg = AdaptiveConfig::default();
        outcomes.push(explore_schedule(
            &dag,
            &schedule,
            &gt,
            &plan,
            &policy,
            Some((&ctx, &acfg)),
            cfg,
        )?);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trie_successor_walks_depth_first() {
        // arity [2, 3]: canonical [0,0] → [0,1] → [0,2] → [1] (tail
        // truncated) → after realizing [1,0]: [1,1] → [1,2] → done.
        assert_eq!(next_script(&[0, 0], &[2, 3]), Some(vec![0, 1]));
        assert_eq!(next_script(&[0, 1], &[2, 3]), Some(vec![0, 2]));
        assert_eq!(next_script(&[0, 2], &[2, 3]), Some(vec![1]));
        assert_eq!(next_script(&[1, 0], &[2, 3]), Some(vec![1, 1]));
        assert_eq!(next_script(&[1, 2], &[2, 3]), None);
        assert_eq!(next_script(&[], &[]), None);
    }

    #[test]
    fn frozen_engine_is_tie_invariant_on_a_faulted_diamond() {
        let dag = ditto_dag::generators::diamond(1 << 30);
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![8, 8]);
        let schedule = DittoScheduler::new().schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let gt = GroundTruth::new(ExecConfig::default());
        let plan = FaultPlan::from_rates(FaultRates {
            crash_prob: 0.2,
            loss_prob: 0.3,
            ..FaultRates::none(11)
        });
        let policy = RecoveryPolicy {
            max_retries: 16,
            ..Default::default()
        };
        let out = explore_schedule(
            &dag,
            &schedule,
            &gt,
            &plan,
            &policy,
            None,
            &ExploreConfig::default(),
        )
        .unwrap();
        assert!(out.exhaustive, "a diamond's trie fits any budget");
        assert!(
            out.divergence.is_none(),
            "frozen engine diverged: {:?}",
            out.divergence
        );
        assert!(out.interleavings >= 1);
    }

    #[test]
    fn sixteen_random_dags_with_faults_and_replanning_are_invariant() {
        // The ISSUE's acceptance bar, in-tree: ≥ 16 small random DAGs,
        // faults and adaptive replanning enabled, bit-identical metrics
        // across every explored interleaving.
        let outcomes = explore_random_dags(16, &ExploreConfig::default()).unwrap();
        assert_eq!(outcomes.len(), 16);
        let mut with_ties = 0;
        for (i, o) in outcomes.iter().enumerate() {
            assert!(
                o.divergence.is_none(),
                "dag {i} diverged: {:?}",
                o.divergence
            );
            if o.decision_points > 0 {
                with_ties += 1;
            }
        }
        assert!(
            with_ties > 0,
            "sweep must actually exercise simultaneous-event batches"
        );
    }
}
