//! The per-job execution time model: fitted steps for every stage and edge.

use crate::resource::ResourceModel;
use crate::step::{Step, StepKind};
use ditto_dag::{EdgeId, JobDag, StageId};

/// The non-I/O steps of a stage plus its *external* I/O (scanning job input
/// from the object store, writing final output). External I/O never goes
/// through shared memory, so it is unaffected by placement.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StageSteps {
    /// CPU work; unaffected by placement.
    pub compute: Step,
    /// Reading the stage's external input (zero for non-initial stages).
    pub external_read: Step,
    /// Writing the stage's external output (zero unless final stage).
    pub external_write: Step,
}

impl StageSteps {
    /// A stage with compute only.
    pub fn compute_only(alpha: f64, beta: f64) -> Self {
        StageSteps {
            compute: Step::new(StepKind::Compute, alpha, beta),
            external_read: Step::zero(StepKind::Read),
            external_write: Step::zero(StepKind::Write),
        }
    }
}

/// Fitted I/O steps of one data-dependency edge: the upstream stage's write
/// and the downstream stage's read. Both collapse to zero time when the
/// placement co-locates the two stages (zero-copy shared memory, §4.1).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EdgeIo {
    /// Write step, charged to the upstream (`src`) stage.
    pub write: Step,
    /// Read step, charged to the downstream (`dst`) stage.
    pub read: Step,
    /// NIMBLE pipelining annotation (§4.5): when `true`, the downstream
    /// read overlaps the upstream write and is excluded from the downstream
    /// stage's non-overlapped execution time.
    pub pipelined: bool,
}

impl EdgeIo {
    /// Symmetric I/O cost for an edge.
    pub fn symmetric(alpha: f64, beta: f64) -> Self {
        EdgeIo {
            write: Step::new(StepKind::Write, alpha, beta),
            read: Step::new(StepKind::Read, alpha, beta),
            pipelined: false,
        }
    }

    /// Zero-cost edge I/O.
    pub fn zero() -> Self {
        EdgeIo {
            write: Step::zero(StepKind::Write),
            read: Step::zero(StepKind::Read),
            pipelined: false,
        }
    }
}

/// Rates for deriving a model directly from a DAG's byte volumes — the
/// convenient constructor used by figures, examples and tests (a stand-in
/// for profiling a real deployment; `ditto-exec` + [`crate::profile`]
/// provide the "honest" profile-then-fit path).
#[derive(Debug, Clone)]
pub struct RateConfig {
    /// External-storage read bandwidth per task, bytes/s.
    pub external_read_bw: f64,
    /// External-storage write bandwidth per task, bytes/s.
    pub external_write_bw: f64,
    /// Inter-server shuffle bandwidth per task, bytes/s (write and read).
    pub shuffle_bw: f64,
    /// Compute throughput per task, bytes/s over the stage's processed data.
    pub compute_bw: f64,
    /// Inherent overhead per read/write step, seconds.
    pub io_beta: f64,
    /// Inherent overhead of the compute step, seconds.
    pub compute_beta: f64,
    /// Straggler scaling factor, ≥ 1 (§4.1 "Modeling stragglers").
    pub straggler_scale: f64,
    /// Memory GB per byte of processed data, for the resource model ρ.
    pub mem_gb_per_byte: f64,
    /// Per-function memory overhead in GB, for the resource model σ.
    pub mem_gb_per_function: f64,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig {
            external_read_bw: 80e6,  // ~80 MB/s per function from S3-like
            external_write_bw: 60e6, // writes a bit slower
            shuffle_bw: 100e6,       // via external storage or network
            compute_bw: 150e6,       // 150 MB/s of data crunched per core
            io_beta: 0.5,            // request latency + connection setup
            compute_beta: 0.2,
            straggler_scale: 1.15,
            mem_gb_per_byte: 2.0e-9, // working set ≈ 2× data size
            mem_gb_per_function: 0.125,
        }
    }
}

/// Fitted execution-time model for every stage and edge of a job.
///
/// All query methods take a `colocated: &[bool]` mask indexed by
/// [`EdgeId`]: `colocated[e]` means the placement puts the edge's endpoint
/// stages in the same stage group (same server), so its I/O steps cost
/// nothing. Use [`JobTimeModel::no_colocation`] for the all-remote mask.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobTimeModel {
    stages: Vec<StageSteps>,
    edges: Vec<EdgeIo>,
    resources: Vec<ResourceModel>,
    /// Straggler scaling factor per stage, ≥ 1.
    scaling: Vec<f64>,
}

impl JobTimeModel {
    /// Build a model with explicit steps. Lengths must match the DAG.
    pub fn new(
        dag: &JobDag,
        stages: Vec<StageSteps>,
        edges: Vec<EdgeIo>,
        resources: Vec<ResourceModel>,
    ) -> Self {
        assert_eq!(stages.len(), dag.num_stages());
        assert_eq!(edges.len(), dag.num_edges());
        assert_eq!(resources.len(), dag.num_stages());
        JobTimeModel {
            scaling: vec![1.0; stages.len()],
            stages,
            edges,
            resources,
        }
    }

    /// Derive a model from the DAG's byte volumes and a [`RateConfig`].
    pub fn from_rates(dag: &JobDag, cfg: &RateConfig) -> Self {
        let mut stages = Vec::with_capacity(dag.num_stages());
        let mut resources = Vec::with_capacity(dag.num_stages());
        for s in dag.stages() {
            let in_edges_bytes: u64 = dag.in_edges(s.id).map(|e| e.bytes).sum();
            let processed = s.input_bytes + in_edges_bytes;
            let is_final = dag.out_degree(s.id) == 0;
            let ext_read = if s.input_bytes > 0 {
                Step::new(
                    StepKind::Read,
                    s.input_bytes as f64 / cfg.external_read_bw,
                    cfg.io_beta,
                )
            } else {
                Step::zero(StepKind::Read)
            };
            let ext_write = if is_final && s.output_bytes > 0 {
                Step::new(
                    StepKind::Write,
                    s.output_bytes as f64 / cfg.external_write_bw,
                    cfg.io_beta,
                )
            } else {
                Step::zero(StepKind::Write)
            };
            stages.push(StageSteps {
                compute: Step::new(
                    StepKind::Compute,
                    processed as f64 / cfg.compute_bw,
                    cfg.compute_beta,
                ),
                external_read: ext_read,
                external_write: ext_write,
            });
            resources.push(ResourceModel::new(
                (processed as f64 * cfg.mem_gb_per_byte).max(1e-3),
                cfg.mem_gb_per_function,
            ));
        }
        let edges = dag
            .edges()
            .iter()
            .map(|e| EdgeIo {
                write: Step::new(StepKind::Write, e.bytes as f64 / cfg.shuffle_bw, cfg.io_beta),
                read: Step::new(StepKind::Read, e.bytes as f64 / cfg.shuffle_bw, cfg.io_beta),
                pipelined: e.pipelined,
            })
            .collect();
        let mut m = JobTimeModel::new(dag, stages, edges, resources);
        m.scaling = vec![cfg.straggler_scale.max(1.0); dag.num_stages()];
        m
    }

    /// Serialize the fitted model to JSON — recurring jobs persist their
    /// fitted model between runs (the paper fits offline and reuses,
    /// updating "periodically as new job profiles are generated", §3).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("model serializes")
    }

    /// Load a fitted model from JSON and validate it against the DAG it is
    /// meant for: matching stage/edge counts, non-negative parameters,
    /// scaling ≥ 1.
    pub fn from_json(dag: &JobDag, text: &str) -> Result<JobTimeModel, String> {
        let m: JobTimeModel = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if m.stages.len() != dag.num_stages() {
            return Err(format!(
                "model has {} stages, DAG has {}",
                m.stages.len(),
                dag.num_stages()
            ));
        }
        if m.edges.len() != dag.num_edges() {
            return Err(format!(
                "model has {} edges, DAG has {}",
                m.edges.len(),
                dag.num_edges()
            ));
        }
        if m.resources.len() != m.stages.len() || m.scaling.len() != m.stages.len() {
            return Err("resource/scaling vectors mismatch stage count".into());
        }
        let step_ok = |s: &Step| s.alpha >= 0.0 && s.beta >= 0.0;
        for (i, st) in m.stages.iter().enumerate() {
            if !(step_ok(&st.compute) && step_ok(&st.external_read) && step_ok(&st.external_write))
            {
                return Err(format!("stage {i}: negative step parameters"));
            }
        }
        for (i, io) in m.edges.iter().enumerate() {
            if !(step_ok(&io.read) && step_ok(&io.write)) {
                return Err(format!("edge {i}: negative step parameters"));
            }
        }
        for (i, r) in m.resources.iter().enumerate() {
            if r.rho < 0.0 || r.sigma < 0.0 {
                return Err(format!("stage {i}: negative resource parameters"));
            }
        }
        if let Some(i) = m.scaling.iter().position(|&s| s < 1.0) {
            return Err(format!("stage {i}: scaling factor below 1"));
        }
        Ok(m)
    }

    /// An all-`false` co-location mask (every shuffle goes remote).
    pub fn no_colocation(&self) -> Vec<bool> {
        vec![false; self.edges.len()]
    }

    /// The steps of a stage.
    pub fn stage_steps(&self, s: StageId) -> &StageSteps {
        &self.stages[s.index()]
    }

    /// Mutable steps of a stage.
    pub fn stage_steps_mut(&mut self, s: StageId) -> &mut StageSteps {
        &mut self.stages[s.index()]
    }

    /// The I/O model of an edge.
    pub fn edge_io(&self, e: EdgeId) -> &EdgeIo {
        &self.edges[e.index()]
    }

    /// Mutable I/O model of an edge.
    pub fn edge_io_mut(&mut self, e: EdgeId) -> &mut EdgeIo {
        &mut self.edges[e.index()]
    }

    /// The resource model of a stage.
    pub fn resource(&self, s: StageId) -> &ResourceModel {
        &self.resources[s.index()]
    }

    /// Mutable resource model of a stage.
    pub fn resource_mut(&mut self, s: StageId) -> &mut ResourceModel {
        &mut self.resources[s.index()]
    }

    /// Straggler scaling factor of a stage.
    pub fn scaling(&self, s: StageId) -> f64 {
        self.scaling[s.index()]
    }

    /// Set the straggler scaling factor of a stage (≥ 1).
    pub fn set_scaling(&mut self, s: StageId, scale: f64) {
        assert!(scale >= 1.0, "straggler scale must be >= 1");
        self.scaling[s.index()] = scale;
    }

    /// Mark an edge as pipelined (§4.5): the downstream read overlaps the
    /// upstream write and leaves the downstream stage's modeled time.
    pub fn set_pipelined(&mut self, e: EdgeId, pipelined: bool) {
        self.edges[e.index()].pipelined = pipelined;
    }

    /// Aggregate parallelizable time αᵢ of stage `s` under the co-location
    /// mask: compute α + external I/O α + non-co-located edge I/O α
    /// (incoming reads that aren't pipelined, outgoing writes), scaled by
    /// the stage's straggler factor.
    pub fn stage_alpha(&self, dag: &JobDag, s: StageId, colocated: &[bool]) -> f64 {
        let st = &self.stages[s.index()];
        let mut a = st.compute.alpha + st.external_read.alpha + st.external_write.alpha;
        for e in dag.in_edges(s) {
            let io = &self.edges[e.id.index()];
            if !colocated[e.id.index()] && !io.pipelined {
                a += io.read.alpha;
            }
        }
        for e in dag.out_edges(s) {
            if !colocated[e.id.index()] {
                a += self.edges[e.id.index()].write.alpha;
            }
        }
        a * self.scaling[s.index()]
    }

    /// Aggregate inherent time βᵢ of stage `s` under the co-location mask.
    pub fn stage_beta(&self, dag: &JobDag, s: StageId, colocated: &[bool]) -> f64 {
        let st = &self.stages[s.index()];
        let mut b = st.compute.beta + st.external_read.beta + st.external_write.beta;
        for e in dag.in_edges(s) {
            let io = &self.edges[e.id.index()];
            if !colocated[e.id.index()] && !io.pipelined {
                b += io.read.beta;
            }
        }
        for e in dag.out_edges(s) {
            if !colocated[e.id.index()] {
                b += self.edges[e.id.index()].write.beta;
            }
        }
        b * self.scaling[s.index()]
    }

    /// `T(s, d, P) = αᵢ/d + βᵢ` (paper Eq. 1/2) under the co-location mask.
    /// Includes the straggler scaling factor: this predicts the *stage*
    /// time, i.e. its slowest task (§4.1 "Modeling stragglers").
    pub fn exec_time(&self, dag: &JobDag, s: StageId, d: f64, colocated: &[bool]) -> f64 {
        self.stage_alpha(dag, s, colocated) / d + self.stage_beta(dag, s, colocated)
    }

    /// Like [`JobTimeModel::exec_time`] but without the straggler scaling:
    /// the predicted *mean* task time. This is the quantity the paper's
    /// Fig. 11 plots against the measured average task execution time.
    pub fn mean_exec_time(&self, dag: &JobDag, s: StageId, d: f64, colocated: &[bool]) -> f64 {
        self.exec_time(dag, s, d, colocated) / self.scaling(s)
    }

    /// The compute-step time `C(s, d)`, placement-independent.
    pub fn compute_time(&self, s: StageId, d: f64) -> f64 {
        self.stages[s.index()].compute.eval(d) * self.scaling[s.index()]
    }

    /// Total read time `R(s, d, P)`: external read + non-co-located,
    /// non-pipelined upstream-edge reads.
    pub fn read_time(&self, dag: &JobDag, s: StageId, d: f64, colocated: &[bool]) -> f64 {
        let mut t = self.stages[s.index()].external_read.eval(d);
        for e in dag.in_edges(s) {
            let io = &self.edges[e.id.index()];
            if !colocated[e.id.index()] && !io.pipelined {
                t += io.read.eval(d);
            }
        }
        t * self.scaling[s.index()]
    }

    /// Total write time `W(s, d, P)`: external write + non-co-located
    /// downstream-edge writes.
    pub fn write_time(&self, dag: &JobDag, s: StageId, d: f64, colocated: &[bool]) -> f64 {
        let mut t = self.stages[s.index()].external_write.eval(d);
        for e in dag.out_edges(s) {
            if !colocated[e.id.index()] {
                t += self.edges[e.id.index()].write.eval(d);
            }
        }
        t * self.scaling[s.index()]
    }

    /// Stage cost `M(s, d) × T(s, d, P)` in GB·s.
    pub fn stage_cost(&self, dag: &JobDag, s: StageId, d: f64, colocated: &[bool]) -> f64 {
        self.resources[s.index()].cost(d, self.exec_time(dag, s, d, colocated))
    }

    /// Shuffle time of one edge at the given endpoint DoPs: the upstream
    /// write plus the downstream read, or ~0 if co-located. This is the
    /// edge weight `W(sᵢ) + R(sⱼ)` used by greedy grouping for JCT (§4.3).
    pub fn edge_shuffle_time(&self, e: EdgeId, d_src: f64, d_dst: f64, colocated: &[bool]) -> f64 {
        if colocated[e.index()] {
            return 0.0;
        }
        let io = &self.edges[e.index()];
        io.write.eval(d_src) + io.read.eval(d_dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::generators;

    fn model() -> (JobDag, JobTimeModel) {
        let dag = generators::fig1_join();
        let m = JobTimeModel::from_rates(&dag, &RateConfig::default());
        (dag, m)
    }

    #[test]
    fn exec_time_decreases_with_dop() {
        let (dag, m) = model();
        let none = m.no_colocation();
        let s = StageId(0);
        let t1 = m.exec_time(&dag, s, 1.0, &none);
        let t8 = m.exec_time(&dag, s, 8.0, &none);
        let t64 = m.exec_time(&dag, s, 64.0, &none);
        assert!(t1 > t8 && t8 > t64);
        // But floors at β.
        let beta = m.stage_beta(&dag, s, &none);
        assert!(m.exec_time(&dag, s, 1e9, &none) - beta < 1e-6);
    }

    #[test]
    fn colocation_zeroes_edge_io() {
        let (dag, m) = model();
        let none = m.no_colocation();
        let mut colo = none.clone();
        colo[0] = true; // map1 -> join colocated
        let s_map = StageId(0);
        let s_join = StageId(2);
        assert!(m.stage_alpha(&dag, s_map, &colo) < m.stage_alpha(&dag, s_map, &none));
        assert!(m.stage_alpha(&dag, s_join, &colo) < m.stage_alpha(&dag, s_join, &none));
        assert_eq!(m.edge_shuffle_time(EdgeId(0), 4.0, 4.0, &colo), 0.0);
        assert!(m.edge_shuffle_time(EdgeId(0), 4.0, 4.0, &none) > 0.0);
    }

    #[test]
    fn alpha_scales_with_input_size() {
        let (dag, m) = model();
        let none = m.no_colocation();
        // map1 scans 4x the bytes of map2 → larger alpha.
        let a1 = m.stage_alpha(&dag, StageId(0), &none);
        let a2 = m.stage_alpha(&dag, StageId(1), &none);
        assert!(a1 > 2.0 * a2, "a1={a1} a2={a2}");
    }

    #[test]
    fn exec_time_is_sum_of_steps() {
        let (dag, m) = model();
        let none = m.no_colocation();
        for s in dag.stages() {
            for d in [1.0, 3.0, 17.0] {
                let total = m.exec_time(&dag, s.id, d, &none);
                let parts = m.read_time(&dag, s.id, d, &none)
                    + m.compute_time(s.id, d)
                    + m.write_time(&dag, s.id, d, &none);
                assert!(
                    (total - parts).abs() < 1e-9,
                    "stage {} d={d}: {total} vs {parts}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn pipelined_read_leaves_downstream_time() {
        let (dag, mut m) = model();
        let none = m.no_colocation();
        let join = StageId(2);
        let before = m.exec_time(&dag, join, 4.0, &none);
        m.set_pipelined(EdgeId(0), true);
        let after = m.exec_time(&dag, join, 4.0, &none);
        assert!(after < before);
        // The upstream write is still counted.
        let map1 = StageId(0);
        assert_eq!(
            m.write_time(&dag, map1, 4.0, &none),
            m.write_time(&dag, map1, 4.0, &none)
        );
    }

    #[test]
    fn straggler_scaling_inflates_time() {
        let (dag, mut m) = model();
        let none = m.no_colocation();
        let s = StageId(0);
        let base = m.exec_time(&dag, s, 8.0, &none);
        let base_scale = m.scaling(s);
        m.set_scaling(s, base_scale * 2.0);
        assert!((m.exec_time(&dag, s, 8.0, &none) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn cost_uses_resource_model() {
        let (dag, mut m) = model();
        let none = m.no_colocation();
        let s = StageId(0);
        *m.resource_mut(s) = ResourceModel::new(2.0, 0.0);
        let t = m.exec_time(&dag, s, 4.0, &none);
        assert!((m.stage_cost(&dag, s, 4.0, &none) - 2.0 * t).abs() < 1e-9);
    }

    #[test]
    fn final_stage_has_external_write() {
        let (_dag, m) = model();
        assert!(!m.stage_steps(StageId(2)).external_write.is_zero());
        assert!(m.stage_steps(StageId(0)).external_write.is_zero());
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_scale_below_one() {
        let (_, mut m) = model();
        m.set_scaling(StageId(0), 0.5);
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let (dag, mut m) = model();
        m.set_scaling(StageId(0), 1.3);
        m.set_pipelined(EdgeId(1), true);
        let text = m.to_json();
        let back = JobTimeModel::from_json(&dag, &text).unwrap();
        let none = m.no_colocation();
        for s in dag.stages() {
            for d in [1.0, 7.0, 42.0] {
                assert_eq!(
                    m.exec_time(&dag, s.id, d, &none),
                    back.exec_time(&dag, s.id, d, &none)
                );
            }
        }
        assert!(back.edge_io(EdgeId(1)).pipelined);
        assert_eq!(back.scaling(StageId(0)), 1.3);
    }

    #[test]
    fn from_json_rejects_mismatched_dag() {
        let (dag, m) = model();
        let other = ditto_dag::generators::q95_shape();
        let err = JobTimeModel::from_json(&other, &m.to_json()).unwrap_err();
        assert!(err.contains("stages"), "{err}");
        // Tampered scaling is caught.
        let tampered = m.to_json().replace("\"scaling\": [\n    1.15,", "\"scaling\": [\n    0.2,");
        assert!(JobTimeModel::from_json(&dag, &tampered).is_err());
        // Garbage is caught.
        assert!(JobTimeModel::from_json(&dag, "not json").is_err());
    }
}
