//! Multi-job scheduling (the paper's §4.5 future work, explored).
//!
//! A FIFO queue of eight analytics jobs (two of each evaluated query)
//! arrives at a shared cluster. Two inter-job allocation policies are
//! compared, both using Ditto within each job:
//!
//! * whole-cluster: each job gets every free slot, jobs serialize;
//! * static partitions: the cluster splits k ways, jobs run concurrently
//!   on smaller slices.
//!
//! ```sh
//! cargo run --release --example multi_job
//! ```

use ditto::core::{DittoScheduler, Objective};
use ditto::exec::multi::{queue_stats, simulate_queue, AllocationPolicy, QueuedJob};
use ditto::exec::{profile_job, ExecConfig, GroundTruth};
use ditto::sql::queries::Query;
use ditto::sql::{Database, ScaleConfig};

fn main() {
    let db = Database::generate(ScaleConfig::with_sf(0.5));
    let gt = GroundTruth::new(ExecConfig::default());

    // Eight jobs: two waves of the four TPC-DS queries, 10 s apart.
    let mut jobs = Vec::new();
    for wave in 0..2 {
        for (i, q) in Query::all().iter().enumerate() {
            let mut plan = q.prepared_plan(&db);
            plan.scale_volumes(40_000.0);
            let profile = profile_job(&plan.dag, &gt, &[10, 20, 40, 80, 120]);
            let (model, _) = profile.build_model(&plan.dag);
            jobs.push(QueuedJob {
                name: format!("{}-{}", q.name(), wave),
                dag: plan.dag,
                model,
                arrival: (wave * 4 + i) as f64 * 10.0,
            });
        }
    }

    let free = [96u32; 8];
    println!("policy                 mean response   makespan   total cost");
    for (label, policy) in [
        ("whole-cluster", AllocationPolicy::WholeCluster),
        ("2 static partitions", AllocationPolicy::StaticPartitions(2)),
        ("4 static partitions", AllocationPolicy::StaticPartitions(4)),
    ] {
        let outcomes = simulate_queue(
            &free,
            &jobs,
            &DittoScheduler::new(),
            Objective::Jct,
            policy,
            &gt,
        );
        let s = queue_stats(&outcomes);
        println!(
            "{label:<22} {:>10.1}s {:>10.1}s {:>10.0} GB·s",
            s.mean_response, s.makespan, s.total_cost
        );
    }
    println!(
        "\nThe tension the paper defers to future work: whole-cluster minimizes\n\
         each job's JCT but queues the rest; partitions overlap jobs at the\n\
         price of per-job parallelism. A co-designed inter/intra-job scheduler\n\
         would pick per-job shares dynamically."
    );
}
