//! Exactly-once object-commit ledger.
//!
//! Control-plane crash recovery (see `ditto-exec::journal`) replays the
//! durable prefix of a write-ahead journal and then re-executes whatever
//! work had not committed. Re-execution is *at-least-once*: a stage whose
//! object commits were durable but whose completion record was torn off
//! the journal tail runs again and re-delivers the same objects. The
//! [`CommitLedger`] turns that into *exactly-once commit* semantics: each
//! object commit is keyed by `(object, attempt_epoch)` and carries the
//! 64-bit value fingerprint of what was committed. A re-delivered commit
//! with the same fingerprint is a [`CommitOutcome::Duplicate`] (counted,
//! not re-journaled); the same key with a *different* fingerprint is a
//! [`CommitOutcome::Conflict`] — determinism was violated and recovery
//! must fail loudly rather than silently pick a side.
//!
//! Both engines use it: the simulator fingerprints an object by the bit
//! pattern of its commit instant (the simulation is deterministic, so the
//! instant names the object's content), the physical runtime by the
//! [`checksum64`](crate::checksum64) of the encoded output table.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// What happened when a commit was offered to the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// First time this `(object, epoch)` was seen; the commit is new and
    /// should be journaled.
    Committed,
    /// Same `(object, epoch)` and the same value fingerprint: a benign
    /// re-delivery from at-least-once re-execution. Not re-journaled.
    Duplicate,
    /// Same `(object, epoch)` but a *different* value fingerprint —
    /// re-execution produced different bytes than the journaled commit.
    Conflict {
        /// Fingerprint recorded by the original commit.
        expected: u64,
        /// Fingerprint of the conflicting re-delivery.
        actual: u64,
    },
}

/// Thread-safe exactly-once commit ledger keyed by
/// `(object key, attempt epoch)`.
#[derive(Debug, Default)]
pub struct CommitLedger {
    entries: Mutex<BTreeMap<(String, u32), u64>>,
}

impl CommitLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a commit of `key` at `epoch` with value fingerprint
    /// `value`. See [`CommitOutcome`] for the three possible answers.
    pub fn commit(&self, key: &str, epoch: u32, value: u64) -> CommitOutcome {
        let mut entries = self.entries.lock().expect("commit ledger poisoned");
        match entries.get(&(key.to_string(), epoch)) {
            Some(&expected) if expected == value => CommitOutcome::Duplicate,
            Some(&expected) => CommitOutcome::Conflict {
                expected,
                actual: value,
            },
            None => {
                entries.insert((key.to_string(), epoch), value);
                CommitOutcome::Committed
            }
        }
    }

    /// Highest committed attempt epoch of `key`, if any commit exists.
    pub fn latest_epoch(&self, key: &str) -> Option<u32> {
        let entries = self.entries.lock().expect("commit ledger poisoned");
        entries
            .keys()
            .filter(|(k, _)| k == key)
            .map(|&(_, e)| e)
            .max()
    }

    /// Number of distinct committed `(object, epoch)` entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("commit ledger poisoned").len()
    }

    /// Whether no commits have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_commit_then_duplicate_then_conflict() {
        let ledger = CommitLedger::new();
        assert_eq!(ledger.commit("s0.t0", 0, 42), CommitOutcome::Committed);
        assert_eq!(ledger.commit("s0.t0", 0, 42), CommitOutcome::Duplicate);
        assert_eq!(
            ledger.commit("s0.t0", 0, 43),
            CommitOutcome::Conflict {
                expected: 42,
                actual: 43
            }
        );
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn epochs_are_independent_commits() {
        let ledger = CommitLedger::new();
        assert_eq!(ledger.commit("s1.t2", 0, 7), CommitOutcome::Committed);
        assert_eq!(ledger.commit("s1.t2", 1, 9), CommitOutcome::Committed);
        assert_eq!(ledger.latest_epoch("s1.t2"), Some(1));
        assert_eq!(ledger.latest_epoch("s9.t9"), None);
        assert_eq!(ledger.len(), 2);
    }
}
