#![warn(missing_docs)]

//! Facade crate re-exporting the Ditto public API.
pub mod jobspec;

pub use ditto_audit as audit;
pub use ditto_cluster as cluster;
pub use ditto_core as core;
pub use ditto_dag as dag;
pub use ditto_exec as exec;
pub use ditto_obs as obs;
pub use ditto_sql as sql;
pub use ditto_storage as storage;
pub use ditto_timemodel as timemodel;
