//! Runtime monitor: per-task statistics collection (paper §3).
//!
//! Each server in the paper hosts a runtime monitor tracking statistics and
//! results of every function execution; those records feed the recurring-job
//! profiles that the execution-time model is fitted from. Here a single
//! [`RuntimeMonitor`] aggregates records for the whole (simulated) cluster;
//! it is `Sync` so the multi-threaded local runtime in `ditto-exec` can
//! report from worker threads. It can also be fed from the unified
//! telemetry stream: [`RuntimeMonitor::ingest`] replays the `task` spans
//! of a recorded trace into records, making the monitor a consumer of
//! the same event stream the exporters read.

use crate::server::ServerId;
use ditto_obs::{StepTimings, TraceData};
use parking_lot::Mutex;

/// One completed task execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Stage index within the job (matches `StageId` downstream).
    pub stage: u32,
    /// Task index within the stage, `0..dop`.
    pub task: u32,
    /// Server the task ran on.
    pub server: ServerId,
    /// Launch time, seconds since job start.
    pub start: f64,
    /// Completion time, seconds since job start.
    pub end: f64,
    /// Per-step durations (setup/read/compute/write), seconds.
    pub steps: StepTimings,
    /// Bytes read (external + intermediate).
    pub bytes_read: u64,
    /// Bytes written (external + intermediate).
    pub bytes_written: u64,
}

impl TaskRecord {
    /// Wall-clock duration of the task.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Per-stage aggregate over the collected records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStats {
    /// Number of tasks recorded.
    pub tasks: u32,
    /// Mean task duration, seconds.
    pub mean_duration: f64,
    /// Max task duration, seconds (the straggler).
    pub max_duration: f64,
    /// Earliest task start.
    pub first_start: f64,
    /// Latest task end — the stage completion time.
    pub last_end: f64,
    /// Mean per-step durations.
    pub mean_steps: StepTimings,
}

/// Thread-safe collector of [`TaskRecord`]s.
#[derive(Debug, Default)]
pub struct RuntimeMonitor {
    records: Mutex<Vec<TaskRecord>>,
}

impl RuntimeMonitor {
    /// New empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed task.
    pub fn record(&self, r: TaskRecord) {
        self.records.lock().push(r);
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records (sorted by stage then task for determinism).
    pub fn records(&self) -> Vec<TaskRecord> {
        let mut v = self.records.lock().clone();
        v.sort_by_key(|a| (a.stage, a.task));
        v
    }

    /// Aggregate statistics for one stage, or `None` if unrecorded.
    pub fn stage_stats(&self, stage: u32) -> Option<StageStats> {
        let recs = self.records.lock();
        let rs: Vec<&TaskRecord> = recs.iter().filter(|r| r.stage == stage).collect();
        if rs.is_empty() {
            return None;
        }
        let n = rs.len() as f64;
        let mut sum = StepTimings::zero();
        for r in &rs {
            sum.accumulate(&r.steps);
        }
        Some(StageStats {
            tasks: rs.len() as u32,
            mean_duration: rs.iter().map(|r| r.duration()).sum::<f64>() / n,
            max_duration: rs.iter().map(|r| r.duration()).fold(f64::MIN, f64::max),
            first_start: rs.iter().map(|r| r.start).fold(f64::MAX, f64::min),
            last_end: rs.iter().map(|r| r.end).fold(f64::MIN, f64::max),
            mean_steps: sum.scaled(1.0 / n),
        })
    }

    /// Replay the `task` spans of a recorded telemetry stream into
    /// monitor records — the monitor as a consumer of the unified event
    /// stream rather than a bespoke reporting channel. Returns the number
    /// of records ingested. Spans missing the task attributes are
    /// skipped.
    pub fn ingest(&self, data: &TraceData) -> usize {
        let mut n = 0;
        for span in data.spans.iter().filter(|s| s.name == "task") {
            let (Some(stage), Some(task)) = (span.attr_u64("stage"), span.attr_u64("task")) else {
                continue;
            };
            if !span.end.is_finite() {
                continue;
            }
            let read_start = span.attr_f64("read_start").unwrap_or(span.start);
            let compute_start = span.attr_f64("compute_start").unwrap_or(read_start);
            let write_start = span.attr_f64("write_start").unwrap_or(span.end);
            self.record(TaskRecord {
                stage: stage as u32,
                task: task as u32,
                server: ServerId(span.track.group.saturating_sub(ditto_obs::Track::SERVER_BASE)),
                start: span.start,
                end: span.end,
                steps: StepTimings::new(
                    read_start - span.start,
                    compute_start - read_start,
                    write_start - compute_start,
                    span.end - write_start,
                ),
                bytes_read: span.attr_f64("bytes_read").unwrap_or(0.0) as u64,
                bytes_written: span.attr_f64("bytes_written").unwrap_or(0.0) as u64,
            });
            n += 1;
        }
        n
    }

    /// Clear all records (between profiled runs).
    pub fn clear(&self) {
        self.records.lock().clear();
    }
}

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

/// Configuration of the [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Multiplicative tolerance band around 1.0: a stage whose smoothed
    /// observed/predicted time ratio leaves `[1/band, band]` is drifting.
    pub band: f64,
    /// EWMA smoothing weight on the newest sample, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Minimum samples for a stage before it can fire a [`DriftEvent`]
    /// (single-task noise must not trigger a replan).
    pub min_samples: u32,
    /// Predictions below this are treated as "no signal" (ratio 1.0).
    pub eps: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            // 25% sustained deviation before the planner is disturbed; the
            // paper's own model error is well inside this (Fig. 11).
            band: 1.25,
            ewma_alpha: 0.4,
            min_samples: 2,
            eps: 1e-9,
        }
    }
}

/// A stage's realized time has left the configured band around its
/// prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// The drifting stage.
    pub stage: u32,
    /// Smoothed observed/predicted total-time ratio (> band or < 1/band).
    pub factor: f64,
    /// Smoothed per-step ratios at the moment of detection.
    pub step_factors: StepTimings,
    /// Samples behind the estimate.
    pub samples: u32,
}

impl DriftEvent {
    /// Record this detection as a `drift.detected` instant on `obs` at
    /// trace time `ts` (scheduler track). The scorecard in `ditto-obs`
    /// reads these marks to annotate post-drift predictor samples, and
    /// the trace-diff engine counts them as structural context.
    pub fn record(&self, obs: &ditto_obs::Recorder, ts: f64) {
        if !obs.is_enabled() {
            return;
        }
        obs.event(
            "drift.detected",
            ditto_obs::Track::scheduler(1),
            ts,
            vec![
                ("stage", self.stage.into()),
                ("factor", self.factor.into()),
                ("samples", (self.samples as u64).into()),
                ("factor_read", self.step_factors.read.into()),
                ("factor_compute", self.step_factors.compute.into()),
                ("factor_write", self.step_factors.write.into()),
            ],
        );
    }
}

/// Per-step EWMA state for one scope (a stage, or the whole job).
#[derive(Debug, Clone, Copy)]
struct EwmaState {
    steps: StepTimings,
    total: f64,
    samples: u32,
}

impl EwmaState {
    fn new() -> Self {
        EwmaState {
            steps: StepTimings::new(1.0, 1.0, 1.0, 1.0),
            total: 1.0,
            samples: 0,
        }
    }

    fn update(&mut self, alpha: f64, step_ratio: &StepTimings, total_ratio: f64) {
        if self.samples == 0 {
            self.steps = *step_ratio;
            self.total = total_ratio;
        } else {
            let blend = |old: f64, new: f64| (1.0 - alpha) * old + alpha * new;
            self.steps = StepTimings::new(
                blend(self.steps.setup, step_ratio.setup),
                blend(self.steps.read, step_ratio.read),
                blend(self.steps.compute, step_ratio.compute),
                blend(self.steps.write, step_ratio.write),
            );
            self.total = blend(self.total, total_ratio);
        }
        self.samples += 1;
    }
}

/// Online detector of execution-time model drift (paper §4.2 fits offline;
/// this is the runtime feedback loop on top).
///
/// Feed it one `(observed, predicted)` [`StepTimings`] pair per completed
/// task; it maintains per-stage and job-global EWMAs of the per-step and
/// total observed/predicted ratios. When a stage's smoothed total ratio
/// leaves the configured multiplicative band (with enough samples), the
/// observation returns a typed [`DriftEvent`] — the signal the adaptive
/// executor uses to re-fit the model and re-optimize the schedule suffix.
#[derive(Debug)]
pub struct DriftDetector {
    config: DriftConfig,
    stages: Vec<EwmaState>,
    /// Stage-type class per stage (empty = no class layer).
    class_of: Vec<u32>,
    /// Per-class EWMAs, indexed by the values in `class_of`.
    classes: Vec<EwmaState>,
    global: EwmaState,
}

impl DriftDetector {
    /// Detector for an `n_stages`-stage job.
    pub fn new(n_stages: usize, config: DriftConfig) -> Self {
        DriftDetector {
            config,
            stages: vec![EwmaState::new(); n_stages],
            class_of: Vec::new(),
            classes: Vec::new(),
            global: EwmaState::new(),
        }
    }

    /// Detector with a stage-*type* class layer: `class_of[stage]` names
    /// an equivalence class (e.g. the `StageKind` discriminant), and each
    /// observation also updates a per-class EWMA. Corrections learned
    /// from a completed map stage then transfer to maps that have not
    /// run yet — the only way online feedback can help a stage before
    /// its own first sample. Falls back between the per-stage, class,
    /// and global estimates in that order via [`Self::class_correction`].
    pub fn with_classes(class_of: &[u32], config: DriftConfig) -> Self {
        let n_classes = class_of.iter().max().map_or(0, |&m| m as usize + 1);
        DriftDetector {
            config,
            stages: vec![EwmaState::new(); class_of.len()],
            class_of: class_of.to_vec(),
            classes: vec![EwmaState::new(); n_classes],
            global: EwmaState::new(),
        }
    }

    /// The configured band and smoothing parameters.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Record one completed task's observed vs. predicted step timings.
    /// Returns a [`DriftEvent`] when the stage's smoothed total ratio has
    /// left `[1/band, band]` and the stage has `min_samples` samples.
    pub fn observe(
        &mut self,
        stage: u32,
        observed: &StepTimings,
        predicted: &StepTimings,
    ) -> Option<DriftEvent> {
        let eps = self.config.eps;
        let step_ratio = observed.ratio_to(predicted, eps);
        let total_ratio = if predicted.total() > eps {
            observed.total() / predicted.total()
        } else {
            1.0
        };
        let st = &mut self.stages[stage as usize];
        st.update(self.config.ewma_alpha, &step_ratio, total_ratio);
        if let Some(&class) = self.class_of.get(stage as usize) {
            self.classes[class as usize].update(self.config.ewma_alpha, &step_ratio, total_ratio);
        }
        self.global
            .update(self.config.ewma_alpha, &step_ratio, total_ratio);
        let st = &self.stages[stage as usize];
        let out_of_band = st.total > self.config.band || st.total < 1.0 / self.config.band;
        if st.samples >= self.config.min_samples && out_of_band {
            Some(DriftEvent {
                stage,
                factor: st.total,
                step_factors: st.steps,
                samples: st.samples,
            })
        } else {
            None
        }
    }

    /// Smoothed per-step correction factors for one stage, or `None` if
    /// the stage has no samples yet.
    pub fn stage_correction(&self, stage: u32) -> Option<StepTimings> {
        let st = self.stages.get(stage as usize)?;
        (st.samples > 0).then_some(st.steps)
    }

    /// Smoothed per-step correction factors for the *class* of `stage`
    /// (see [`Self::with_classes`]), or `None` if the detector has no
    /// class layer or the class has no samples yet. This is what makes
    /// drift learned on one map stage apply to a map stage that has not
    /// started.
    pub fn class_correction(&self, stage: u32) -> Option<StepTimings> {
        let class = *self.class_of.get(stage as usize)?;
        let st = self.classes.get(class as usize)?;
        (st.samples > 0).then_some(st.steps)
    }

    /// Samples observed for the class of `stage` (0 without a class layer).
    pub fn class_samples(&self, stage: u32) -> u32 {
        self.class_of
            .get(stage as usize)
            .and_then(|&c| self.classes.get(c as usize))
            .map_or(0, |s| s.samples)
    }

    /// Smoothed per-step correction factors across all observed tasks —
    /// the fallback applied to stages that have not run yet.
    pub fn global_correction(&self) -> StepTimings {
        self.global.steps
    }

    /// Samples observed for one stage.
    pub fn stage_samples(&self, stage: u32) -> u32 {
        self.stages.get(stage as usize).map_or(0, |s| s.samples)
    }

    /// Total samples observed.
    pub fn total_samples(&self) -> u32 {
        self.global.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stage: u32, task: u32, start: f64, end: f64) -> TaskRecord {
        TaskRecord {
            stage,
            task,
            server: ServerId(0),
            start,
            end,
            steps: StepTimings::new(0.0, 1.0, 2.0, 0.5),
            bytes_read: 100,
            bytes_written: 50,
        }
    }

    #[test]
    fn collects_and_aggregates() {
        let m = RuntimeMonitor::new();
        m.record(rec(0, 0, 0.0, 4.0));
        m.record(rec(0, 1, 0.5, 6.0));
        m.record(rec(1, 0, 6.0, 8.0));
        assert_eq!(m.len(), 3);
        let s = m.stage_stats(0).unwrap();
        assert_eq!(s.tasks, 2);
        assert!((s.mean_duration - 4.75).abs() < 1e-12);
        assert!((s.max_duration - 5.5).abs() < 1e-12);
        assert_eq!(s.first_start, 0.0);
        assert_eq!(s.last_end, 6.0);
        assert_eq!(s.mean_steps, StepTimings::new(0.0, 1.0, 2.0, 0.5));
        assert!(m.stage_stats(9).is_none());
    }

    #[test]
    fn ingests_task_spans_from_trace() {
        use ditto_obs::{Recorder, Track};
        let obs = Recorder::new();
        obs.span(
            "task",
            Track::server(3, 42),
            2.0,
            5.5,
            vec![
                ("stage", 1u64.into()),
                ("task", 2u64.into()),
                ("read_start", 2.5.into()),
                ("compute_start", 3.0.into()),
                ("write_start", 5.0.into()),
                ("bytes_read", 1024.0.into()),
                ("bytes_written", 512.0.into()),
            ],
        );
        // A span without task attributes is skipped, not an error.
        obs.span("sched.round", Track::scheduler(0), 0.0, 0.1, vec![]);

        let m = RuntimeMonitor::new();
        assert_eq!(m.ingest(&obs.finish()), 1);
        let r = &m.records()[0];
        assert_eq!((r.stage, r.task), (1, 2));
        assert_eq!(r.server, ServerId(3));
        assert_eq!(r.steps, StepTimings::new(0.5, 0.5, 2.0, 0.5));
        assert_eq!((r.bytes_read, r.bytes_written), (1024, 512));
        let s = m.stage_stats(1).unwrap();
        assert!((s.mean_duration - 3.5).abs() < 1e-12);
    }

    #[test]
    fn records_sorted() {
        let m = RuntimeMonitor::new();
        m.record(rec(1, 0, 0.0, 1.0));
        m.record(rec(0, 1, 0.0, 1.0));
        m.record(rec(0, 0, 0.0, 1.0));
        let v = m.records();
        assert_eq!(
            v.iter().map(|r| (r.stage, r.task)).collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0)]
        );
    }

    #[test]
    fn clear_resets() {
        let m = RuntimeMonitor::new();
        m.record(rec(0, 0, 0.0, 1.0));
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn drift_fires_only_after_min_samples_and_out_of_band() {
        let mut d = DriftDetector::new(2, DriftConfig::default());
        let pred = StepTimings::new(0.5, 1.0, 2.0, 0.5);
        // In-band observation: nothing fires.
        assert!(d.observe(0, &StepTimings::new(0.5, 1.1, 2.1, 0.5), &pred).is_none());
        // First wildly-slow sample: still below min_samples... but the
        // second has both the samples and the smoothed ratio out of band.
        let slow = StepTimings::new(0.5, 1.0, 8.0, 0.5); // compute 4x
        assert!(d.observe(1, &slow, &pred).is_none());
        let ev = d.observe(1, &slow, &pred).expect("drift should fire");
        assert_eq!(ev.stage, 1);
        assert!(ev.factor > 1.25, "factor {}", ev.factor);
        assert!(ev.step_factors.compute > 3.0);
        assert!((ev.step_factors.read - 1.0).abs() < 1e-9);
        assert_eq!(ev.samples, 2);
    }

    #[test]
    fn drift_fires_on_sustained_speedup_too() {
        let cfg = DriftConfig {
            min_samples: 2,
            ..Default::default()
        };
        let mut d = DriftDetector::new(1, cfg);
        let pred = StepTimings::new(0.0, 1.0, 4.0, 1.0);
        let fast = StepTimings::new(0.0, 0.5, 2.0, 0.5);
        assert!(d.observe(0, &fast, &pred).is_none());
        let ev = d.observe(0, &fast, &pred).expect("speedup drift");
        assert!(ev.factor < 1.0 / 1.25);
    }

    #[test]
    fn corrections_track_per_stage_and_global() {
        let mut d = DriftDetector::new(3, DriftConfig::default());
        let pred = StepTimings::new(0.0, 1.0, 1.0, 1.0);
        d.observe(0, &StepTimings::new(0.0, 2.0, 2.0, 2.0), &pred);
        assert_eq!(d.stage_samples(0), 1);
        assert_eq!(d.stage_samples(1), 0);
        assert!(d.stage_correction(1).is_none());
        let c0 = d.stage_correction(0).unwrap();
        assert!((c0.compute - 2.0).abs() < 1e-9);
        // Setup ratio is neutral when the prediction has no setup signal.
        assert!((c0.setup - 1.0).abs() < 1e-9);
        let g = d.global_correction();
        assert!((g.read - 2.0).abs() < 1e-9);
        assert_eq!(d.total_samples(), 1);
    }

    #[test]
    fn class_layer_transfers_corrections_to_unobserved_stages() {
        // Stages 0 and 2 are class 0 ("map"), stage 1 is class 1. A 2x
        // compute observation on stage 0 must become available to stage 2
        // through the class estimate before stage 2 has any samples.
        let mut d = DriftDetector::with_classes(&[0, 1, 0], DriftConfig::default());
        let pred = StepTimings::new(0.0, 1.0, 1.0, 1.0);
        d.observe(0, &StepTimings::new(0.0, 1.0, 2.0, 1.0), &pred);
        assert!(d.stage_correction(2).is_none(), "stage 2 itself unobserved");
        let c = d.class_correction(2).expect("class estimate transfers");
        assert!((c.compute - 2.0).abs() < 1e-9);
        assert_eq!(d.class_samples(2), 1);
        assert!(d.class_correction(1).is_none(), "other class untouched");
        // A detector without a class layer never transfers.
        let mut plain = DriftDetector::new(3, DriftConfig::default());
        plain.observe(0, &StepTimings::new(0.0, 1.0, 2.0, 1.0), &pred);
        assert!(plain.class_correction(2).is_none());
        assert_eq!(plain.class_samples(0), 0);
    }

    #[test]
    fn zero_prediction_is_neutral_not_infinite() {
        let mut d = DriftDetector::new(1, DriftConfig::default());
        let pred = StepTimings::zero();
        for _ in 0..5 {
            assert!(d.observe(0, &StepTimings::new(1.0, 1.0, 1.0, 1.0), &pred).is_none());
        }
        assert_eq!(d.global_correction().as_tuple(), (1.0, 1.0, 1.0, 1.0));
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(RuntimeMonitor::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        m.record(rec(t, i, 0.0, 1.0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 100);
    }
}
