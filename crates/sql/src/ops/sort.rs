//! Sort-limit (top-N) and distinct.

use crate::column::Column;
use crate::hash::TupleIdMap;
use crate::selvec::SelVec;
use crate::table::Table;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Asc,
    /// Largest first.
    Desc,
}

/// `ORDER BY col <order> LIMIT limit`. Stable: ties keep input order.
pub fn sort_limit(t: &Table, col: &str, order: SortOrder, limit: usize) -> Table {
    let c = t.column_req(col);
    let mut idx: Vec<u32> = (0..t.num_rows() as u32).collect();
    // Comparators read the typed slices directly — no per-row `Value`.
    match c {
        Column::I64(v) => idx.sort_by(|&a, &b| v[a as usize].cmp(&v[b as usize])),
        Column::F64(v) => idx.sort_by(|&a, &b| v[a as usize].total_cmp(&v[b as usize])),
        Column::Str(v) => idx.sort_by(|&a, &b| v[a as usize].cmp(&v[b as usize])),
    }
    if order == SortOrder::Desc {
        idx.reverse();
    }
    idx.truncate(limit);
    t.gather(&SelVec::Rows(idx))
}

/// `SELECT DISTINCT cols FROM t` — unique rows of the named columns, in
/// first-appearance order.
///
/// Rows are deduplicated on the tuple of per-column [`Column::hash_row`]
/// values (computed in bulk, one FNV per distinct string) through a
/// deterministic open-addressing set — no `std` `RandomState` anywhere.
pub fn distinct(t: &Table, cols: &[&str]) -> Table {
    let projected = t.project(cols);
    let hashes: Vec<Vec<u64>> = projected.columns.iter().map(|c| c.hash_column()).collect();
    let n = projected.num_rows();
    let stride = hashes.len();
    let mut seen = TupleIdMap::with_capacity(stride, n);
    let mut keep: Vec<u32> = Vec::new();
    let mut tuple: Vec<u64> = vec![0; stride];
    for row in 0..n {
        for (slot, h) in tuple.iter_mut().zip(&hashes) {
            *slot = h[row];
        }
        if seen.insert_or_get(&tuple).1 {
            keep.push(row as u32);
        }
    }
    projected.gather(&SelVec::Rows(keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::table::Schema;

    fn t() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("x", DataType::F64)]),
            vec![
                Column::I64(vec![3, 1, 2, 1]),
                Column::F64(vec![30.0, 10.0, 20.0, 11.0]),
            ],
        )
    }

    #[test]
    fn sort_asc_desc() {
        let a = sort_limit(&t(), "k", SortOrder::Asc, 10);
        assert_eq!(a.column_req("k").as_i64(), &[1, 1, 2, 3]);
        // Stable: first 1 is x=10, second x=11.
        assert_eq!(a.column_req("x").as_f64()[0], 10.0);
        let d = sort_limit(&t(), "x", SortOrder::Desc, 2);
        assert_eq!(d.column_req("x").as_f64(), &[30.0, 20.0]);
    }

    #[test]
    fn limit_truncates() {
        let a = sort_limit(&t(), "k", SortOrder::Asc, 1);
        assert_eq!(a.num_rows(), 1);
        let all = sort_limit(&t(), "k", SortOrder::Asc, 100);
        assert_eq!(all.num_rows(), 4);
    }

    #[test]
    fn distinct_unique_rows() {
        let d = distinct(&t(), &["k"]);
        assert_eq!(d.column_req("k").as_i64(), &[3, 1, 2]);
        assert_eq!(d.num_columns(), 1);
    }

    #[test]
    fn distinct_multi_column() {
        let tab = Table::new(
            Schema::new(&[("a", DataType::I64), ("b", DataType::I64)]),
            vec![
                Column::I64(vec![1, 1, 2, 1]),
                Column::I64(vec![1, 2, 1, 1]),
            ],
        );
        let d = distinct(&tab, &["a", "b"]);
        assert_eq!(d.num_rows(), 3);
    }

    #[test]
    fn distinct_matches_reference() {
        let tab = Table::new(
            Schema::new(&[("a", DataType::I64), ("s", DataType::Str)]),
            vec![
                Column::I64(vec![1, 1, 2, 1, 2]),
                Column::Str(vec![
                    "x".into(),
                    "y".into(),
                    "x".into(),
                    "x".into(),
                    "x".into(),
                ]),
            ],
        );
        for cols in [&["a"][..], &["s"][..], &["a", "s"][..]] {
            assert_eq!(
                distinct(&tab, cols),
                crate::reference::distinct_reference(&tab, cols),
                "cols={cols:?}"
            );
        }
    }
}
