//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the deterministic subset the workspace uses: `StdRng` seeded
//! via `seed_from_u64`, the `Rng` extension trait (`gen`, `gen_bool`,
//! `gen_range`), and `seq::SliceRandom::shuffle`. The generator is
//! xoshiro256++ with splitmix64 seed expansion — high-quality, fast, and
//! fully reproducible across runs, which is all the simulators and tests
//! require. Statistical equivalence with upstream rand streams is *not*
//! promised (seeded expectations in tests were calibrated against this
//! generator).

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 never produces
        // it from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable over an interval. The single generic
/// [`SampleRange`] impl below ties a range literal's element type to
/// `gen_range`'s return type, so integer literals unify with surrounding
/// context (e.g. `rng.gen_range(1..=512) * MB` with `MB: u64`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (exclusive) or `[lo, hi]` (inclusive).
    fn sample_interval<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let frac = <f64 as Standard>::draw(rng) as $t;
                lo + frac * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        <f64 as Standard>::draw(self) < p
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` module shape.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// `rand::prelude` module shape.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "{frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
