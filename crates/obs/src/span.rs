//! Structured tracing: spans, events, counters and the [`Recorder`].
//!
//! A [`Recorder`] collects the full telemetry stream of one run:
//!
//! * **spans** — named intervals on a [`Track`] (a `(group, lane)` pair
//!   that maps to Chrome's `pid`/`tid`), optionally nested via a parent
//!   span id, carrying typed attributes;
//! * **events** — named instants with attributes (fault injections,
//!   scheduler verdicts, …);
//! * **counter samples** — timestamped cumulative values of a named
//!   counter series (bytes per storage medium, …), mirrored into the
//!   [`MetricsRegistry`].
//!
//! Timestamps are *trace seconds*: the simulator records sim-clock
//! seconds; wall-clock instrumentation (the scheduler) records seconds
//! since the recorder's epoch via [`Recorder::wall_now`]. Every record
//! additionally notes the wall-clock capture time for the JSONL stream.
//!
//! A recorder built with [`Recorder::disabled`] rejects every operation
//! after a single branch — no lock is taken, nothing allocates — so
//! instrumented code can thread `&Recorder` unconditionally through hot
//! paths (zero-cost when off).

use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Instant;

/// A typed attribute value on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Static string (verdicts, outcome names, …).
    Str(&'static str),
    /// Owned string.
    Text(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}

/// A named attribute: `(key, value)`.
pub type Attr = (&'static str, AttrValue);

/// Where a span/event renders: `group` maps to a Chrome process (one box
/// per server, plus dedicated scheduler / storage / job groups), `lane`
/// to a thread within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Track {
    /// Track group (Chrome `pid`).
    pub group: u32,
    /// Lane within the group (Chrome `tid`).
    pub lane: u32,
}

impl Track {
    /// Group id of the scheduler track.
    pub const SCHEDULER_GROUP: u32 = 0;
    /// Group id of the storage/data-plane track.
    pub const STORAGE_GROUP: u32 = 1;
    /// Group id of the job-level (per-stage) track.
    pub const JOB_GROUP: u32 = 2;
    /// First group id of per-server tracks (`SERVER_BASE + server`).
    pub const SERVER_BASE: u32 = 10;

    /// The scheduler track, one lane per nesting level or concern.
    pub fn scheduler(lane: u32) -> Track {
        Track {
            group: Self::SCHEDULER_GROUP,
            lane,
        }
    }

    /// The storage track.
    pub fn storage() -> Track {
        Track {
            group: Self::STORAGE_GROUP,
            lane: 0,
        }
    }

    /// The job-level track; lane = stage index.
    pub fn job(lane: u32) -> Track {
        Track {
            group: Self::JOB_GROUP,
            lane,
        }
    }

    /// The track of one server; lane identifies the task slot.
    pub fn server(server: u32, lane: u32) -> Track {
        Track {
            group: Self::SERVER_BASE + server,
            lane,
        }
    }
}

/// Handle to a recorded span (0 = invalid / recorder disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The null span id (no parent / disabled recorder).
    pub const NONE: SpanId = SpanId(0);
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id (1-based; 0 is reserved for "none").
    pub id: u32,
    /// Parent span id, 0 = top-level.
    pub parent: u32,
    /// Span name (namespaced, e.g. `sched.round`, `task`).
    pub name: &'static str,
    /// Render track.
    pub track: Track,
    /// Start, trace seconds.
    pub start: f64,
    /// End, trace seconds (`NaN` while still open).
    pub end: f64,
    /// Wall-clock capture time of the start, seconds since recorder epoch.
    pub wall_start: f64,
    /// Attributes.
    pub attrs: Vec<Attr>,
}

impl SpanRecord {
    /// Duration in trace seconds (0 for still-open spans).
    pub fn duration(&self) -> f64 {
        if self.end.is_finite() {
            self.end - self.start
        } else {
            0.0
        }
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// An attribute as u64 (if present and integral).
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key)? {
            AttrValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// An attribute as f64 (numeric kinds only).
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        match self.attr(key)? {
            AttrValue::F64(v) => Some(*v),
            AttrValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }
}

/// One recorded instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name (namespaced, e.g. `fault.crashed`, `sched.merge`).
    pub name: &'static str,
    /// Render track.
    pub track: Track,
    /// Instant, trace seconds.
    pub ts: f64,
    /// Wall-clock capture time, seconds since recorder epoch.
    pub wall: f64,
    /// Attributes.
    pub attrs: Vec<Attr>,
}

impl EventRecord {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One timestamped cumulative counter sample.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Counter name (e.g. `storage.bytes`).
    pub name: &'static str,
    /// Series label within the counter (e.g. `shared_memory`).
    pub series: String,
    /// Sample instant, trace seconds.
    pub ts: f64,
    /// Cumulative value after this increment.
    pub total: f64,
}

/// An immutable snapshot of everything a [`Recorder`] collected.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// All spans, ordered by id (creation order).
    pub spans: Vec<SpanRecord>,
    /// All instant events, in emission order.
    pub events: Vec<EventRecord>,
    /// All counter samples, in emission order.
    pub samples: Vec<CounterSample>,
    /// Human-readable names of track groups.
    pub track_names: BTreeMap<u32, String>,
    /// Metrics registry snapshot.
    pub metrics: Vec<crate::metrics::MetricSnapshot>,
}

impl TraceData {
    /// The latest finite span end, trace seconds (0 when empty).
    pub fn span_horizon(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| s.end)
            .filter(|e| e.is_finite())
            .fold(0.0, f64::max)
    }
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    samples: Vec<CounterSample>,
    track_names: BTreeMap<u32, String>,
}

/// Thread-safe telemetry collector. See the [module docs](self).
pub struct Recorder {
    enabled: bool,
    epoch: Instant,
    /// When set, [`Recorder::wall_now`] dispenses deterministic virtual
    /// microsecond ticks instead of reading the real clock.
    virtual_clock: Option<std::sync::atomic::AtomicU64>,
    inner: Mutex<Inner>,
    metrics: MetricsRegistry,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("spans", &inner.spans.len())
            .field("events", &inner.events.len())
            .field("samples", &inner.samples.len())
            .finish()
    }
}

impl Recorder {
    /// A recording (enabled) recorder.
    pub fn new() -> Self {
        Recorder {
            enabled: true,
            epoch: Instant::now(),
            virtual_clock: None,
            inner: Mutex::new(Inner::default()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A recording recorder whose wall clock is a deterministic virtual
    /// counter: every [`Recorder::wall_now`] call returns the next
    /// microsecond tick. Sim-clock timestamps are untouched; only
    /// wall-clock instrumentation (the scheduler spans) becomes
    /// reproducible, so two identical runs export byte-identical
    /// artifacts. Ordering between calls is preserved — ticks are
    /// strictly increasing — but durations no longer measure real time,
    /// so never use this recorder for overhead benchmarks.
    pub fn deterministic() -> Self {
        Recorder {
            virtual_clock: Some(std::sync::atomic::AtomicU64::new(0)),
            ..Recorder::new()
        }
    }

    /// A disabled recorder: every operation is a no-op after one branch.
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            ..Recorder::new()
        }
    }

    /// Whether this recorder records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Wall-clock seconds since the recorder's creation — the trace
    /// timestamp for instrumentation without a sim clock (the scheduler).
    /// On a [`Recorder::deterministic`] recorder this is a virtual
    /// microsecond tick instead.
    pub fn wall_now(&self) -> f64 {
        match &self.virtual_clock {
            Some(ticks) => {
                let t = ticks.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                t as f64 * 1e-6
            }
            None => self.epoch.elapsed().as_secs_f64(),
        }
    }

    /// Name a track group (shown as the process name in Chrome).
    pub fn name_track(&self, group: u32, name: &str) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .track_names
            .entry(group)
            .or_insert_with(|| name.to_string());
    }

    /// Record a complete (already closed) span. Returns its id.
    pub fn span(
        &self,
        name: &'static str,
        track: Track,
        start: f64,
        end: f64,
        attrs: Vec<Attr>,
    ) -> SpanId {
        self.span_with_parent(name, track, start, end, SpanId::NONE, attrs)
    }

    /// Record a complete span under a parent.
    pub fn span_with_parent(
        &self,
        name: &'static str,
        track: Track,
        start: f64,
        end: f64,
        parent: SpanId,
        attrs: Vec<Attr>,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let wall = self.wall_now();
        let mut inner = self.inner.lock();
        let id = inner.spans.len() as u32 + 1;
        inner.spans.push(SpanRecord {
            id,
            parent: parent.0,
            name,
            track,
            start,
            end,
            wall_start: wall,
            attrs,
        });
        SpanId(id)
    }

    /// Open a span; close it with [`Recorder::end`].
    pub fn begin(
        &self,
        name: &'static str,
        track: Track,
        start: f64,
        parent: SpanId,
        attrs: Vec<Attr>,
    ) -> SpanId {
        self.span_with_parent(name, track, start, f64::NAN, parent, attrs)
    }

    /// Close a span opened with [`Recorder::begin`].
    pub fn end(&self, id: SpanId, end: f64) {
        if !self.enabled || id.0 == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(s) = inner.spans.get_mut(id.0 as usize - 1) {
            s.end = end;
        }
    }

    /// Record an instant event.
    pub fn event(&self, name: &'static str, track: Track, ts: f64, attrs: Vec<Attr>) {
        if !self.enabled {
            return;
        }
        let wall = self.wall_now();
        self.inner.lock().events.push(EventRecord {
            name,
            track,
            ts,
            wall,
            attrs,
        });
    }

    /// Increment a counter series by `delta` at trace time `ts`: updates
    /// the metrics registry and logs a cumulative sample for exporters.
    pub fn counter_add(&self, name: &'static str, series: &str, delta: f64, ts: f64) {
        if !self.enabled {
            return;
        }
        let total = self.metrics.counter_add(name, series, delta);
        self.inner.lock().samples.push(CounterSample {
            name,
            series: series.to_string(),
            ts,
            total,
        });
    }

    /// Observe a histogram value (no per-sample log — registry only).
    pub fn observe(&self, name: &'static str, series: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.metrics.observe(name, series, value);
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &'static str, series: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.metrics.gauge_set(name, series, value);
    }

    /// The metrics registry (live; snapshot via [`Recorder::finish`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Snapshot the collected stream for export/analysis. The recorder
    /// keeps recording; later snapshots include earlier data.
    pub fn finish(&self) -> TraceData {
        let inner = self.inner.lock();
        TraceData {
            spans: inner.spans.clone(),
            events: inner.events.clone(),
            samples: inner.samples.clone(),
            track_names: inner.track_names.clone(),
            metrics: self.metrics.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_events_counters() {
        let rec = Recorder::new();
        rec.name_track(Track::JOB_GROUP, "job");
        let root = rec.span("stage", Track::job(0), 0.0, 5.0, vec![("stage", 0u32.into())]);
        let child = rec.span_with_parent(
            "task",
            Track::server(1, 7),
            1.0,
            4.0,
            root,
            vec![("task", 7u32.into())],
        );
        assert_ne!(child, SpanId::NONE);
        rec.event("fault.crashed", Track::server(1, 7), 2.0, vec![]);
        rec.counter_add("storage.bytes", "s3", 100.0, 1.0);
        rec.counter_add("storage.bytes", "s3", 50.0, 2.0);
        let data = rec.finish();
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.spans[1].parent, data.spans[0].id);
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.samples.len(), 2);
        assert_eq!(data.samples[1].total, 150.0);
        assert_eq!(data.track_names.get(&Track::JOB_GROUP).unwrap(), "job");
        assert!((data.span_horizon() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn begin_end_close_spans() {
        let rec = Recorder::new();
        let id = rec.begin("sched.joint", Track::scheduler(0), 0.5, SpanId::NONE, vec![]);
        assert_eq!(rec.finish().spans[0].duration(), 0.0, "open span");
        rec.end(id, 2.5);
        let data = rec.finish();
        assert!((data.spans[0].duration() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let id = rec.span("task", Track::server(0, 0), 0.0, 1.0, vec![]);
        assert_eq!(id, SpanId::NONE);
        rec.end(id, 2.0);
        rec.event("e", Track::storage(), 0.0, vec![]);
        rec.counter_add("c", "x", 1.0, 0.0);
        rec.observe("h", "", 1.0);
        let data = rec.finish();
        assert!(data.spans.is_empty());
        assert!(data.events.is_empty());
        assert!(data.samples.is_empty());
        assert!(data.metrics.is_empty());
    }

    #[test]
    fn attr_lookups() {
        let rec = Recorder::new();
        rec.span(
            "task",
            Track::server(0, 0),
            0.0,
            1.0,
            vec![
                ("stage", 3u32.into()),
                ("mem", 2.5f64.into()),
                ("verdict", "accept".into()),
            ],
        );
        let data = rec.finish();
        let s = &data.spans[0];
        assert_eq!(s.attr_u64("stage"), Some(3));
        assert_eq!(s.attr_f64("mem"), Some(2.5));
        assert_eq!(s.attr_f64("stage"), Some(3.0));
        assert!(matches!(s.attr("verdict"), Some(AttrValue::Str("accept"))));
        assert!(s.attr("missing").is_none());
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let rec = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        rec.span("task", Track::server(t, i), 0.0, 1.0, vec![]);
                        rec.counter_add("c", "x", 1.0, 0.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.span_count(), 200);
        let data = rec.finish();
        assert_eq!(data.samples.len(), 200);
        // Cumulative totals are a permutation of 1..=200.
        let mut totals: Vec<u64> = data.samples.iter().map(|s| s.total as u64).collect();
        totals.sort_unstable();
        assert_eq!(totals, (1..=200).collect::<Vec<_>>());
    }
}
