//! Job profiles and offline model building (paper §4.1, Table 2).
//!
//! Production analytics jobs are recurring; Ditto fits the step model from
//! the profiles of previous executions (about five distinct DoPs per step
//! suffice). [`JobProfile::build_model`] performs that fit and reports how
//! long it took — the quantity Table 2 of the paper measures (~200 ms per
//! query there, microseconds here since fitting is closed-form).

use crate::fit::fit_step;
use crate::model::{EdgeIo, JobTimeModel, StageSteps};
use crate::resource::ResourceModel;
use crate::step::{Step, StepKind};
use ditto_dag::{EdgeId, JobDag, StageId};
use std::time::{Duration, Instant};

/// Which fine-grained step of a stage a set of samples profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepTarget {
    /// The CPU step.
    Compute,
    /// Reading the stage's external input.
    ExternalRead,
    /// Writing the stage's external output.
    ExternalWrite,
    /// Reading intermediate data arriving over the given edge.
    EdgeRead(EdgeId),
    /// Writing intermediate data departing over the given edge.
    EdgeWrite(EdgeId),
}

/// One profiled execution of one step at one degree of parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileSample {
    /// Degree of parallelism the stage ran with.
    pub dop: u32,
    /// Mean task time for this step, seconds.
    pub mean_seconds: f64,
    /// Slowest task time for this step, seconds (straggler evidence).
    pub max_seconds: f64,
}

impl ProfileSample {
    /// A sample with no straggler skew.
    pub fn even(dop: u32, seconds: f64) -> Self {
        ProfileSample {
            dop,
            mean_seconds: seconds,
            max_seconds: seconds,
        }
    }
}

/// All profiled steps of one stage.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// The profiled stage.
    pub stage: StageId,
    /// Samples per step target; steps absent here fit to zero.
    pub steps: Vec<(StepTarget, Vec<ProfileSample>)>,
}

impl StageProfile {
    /// New empty profile for a stage.
    pub fn new(stage: StageId) -> Self {
        StageProfile {
            stage,
            steps: Vec::new(),
        }
    }

    /// Append samples for one step target.
    pub fn with_step(mut self, target: StepTarget, samples: Vec<ProfileSample>) -> Self {
        self.steps.push((target, samples));
        self
    }
}

/// A full job profile: per-stage step samples plus resource models.
#[derive(Debug, Clone)]
pub struct JobProfile {
    /// Per-stage profiles; stages without a profile get zero steps.
    pub stages: Vec<StageProfile>,
    /// Per-stage resource models (`M(s,d) = ρ + σd`); when empty, defaults
    /// are used for every stage.
    pub resources: Vec<(StageId, ResourceModel)>,
}

impl JobProfile {
    /// Empty profile.
    pub fn new() -> Self {
        JobProfile {
            stages: Vec::new(),
            resources: Vec::new(),
        }
    }

    /// Add a stage profile.
    pub fn add_stage(&mut self, p: StageProfile) {
        self.stages.push(p);
    }

    /// Fit the execution-time model from the profile. Returns the model and
    /// the wall-clock time the fit took (Table 2's metric).
    ///
    /// The straggler scaling factor of each stage is estimated as the mean
    /// of `max/mean` task-time ratios over all its samples, clamped to ≥ 1
    /// (§4.1 "Modeling stragglers": dynamically tuned from job history).
    pub fn build_model(&self, dag: &JobDag) -> (JobTimeModel, Duration) {
        let start = Instant::now();
        let mut stages: Vec<StageSteps> = (0..dag.num_stages())
            .map(|_| StageSteps {
                compute: Step::zero(StepKind::Compute),
                external_read: Step::zero(StepKind::Read),
                external_write: Step::zero(StepKind::Write),
            })
            .collect();
        // Pipelining annotations travel with the job DAG (§4.5: "Ditto
        // adjusts the profile by reading the pipelining annotation").
        let mut edges: Vec<EdgeIo> = dag
            .edges()
            .iter()
            .map(|e| {
                let mut io = EdgeIo::zero();
                io.pipelined = e.pipelined;
                io
            })
            .collect();
        let mut scaling = vec![1.0_f64; dag.num_stages()];

        for sp in &self.stages {
            let mut ratio_sum = 0.0;
            let mut ratio_n = 0usize;
            for (target, samples) in &sp.steps {
                if samples.is_empty() {
                    continue;
                }
                for s in samples {
                    if s.mean_seconds > 1e-12 {
                        ratio_sum += s.max_seconds / s.mean_seconds;
                        ratio_n += 1;
                    }
                }
                let pts: Vec<(u32, f64)> =
                    samples.iter().map(|s| (s.dop, s.mean_seconds)).collect();
                // A single sample can't separate α from β; attribute it all
                // to the parallelizable part (the common case for big data).
                let (alpha, beta) = if pts.len() == 1 {
                    (pts[0].1 * pts[0].0 as f64, 0.0)
                } else {
                    let fit = fit_step(&pts);
                    (fit.alpha, fit.beta)
                };
                match *target {
                    StepTarget::Compute => {
                        stages[sp.stage.index()].compute = Step::new(StepKind::Compute, alpha, beta)
                    }
                    StepTarget::ExternalRead => {
                        stages[sp.stage.index()].external_read =
                            Step::new(StepKind::Read, alpha, beta)
                    }
                    StepTarget::ExternalWrite => {
                        stages[sp.stage.index()].external_write =
                            Step::new(StepKind::Write, alpha, beta)
                    }
                    StepTarget::EdgeRead(e) => {
                        edges[e.index()].read = Step::new(StepKind::Read, alpha, beta)
                    }
                    StepTarget::EdgeWrite(e) => {
                        edges[e.index()].write = Step::new(StepKind::Write, alpha, beta)
                    }
                }
            }
            if ratio_n > 0 {
                scaling[sp.stage.index()] = (ratio_sum / ratio_n as f64).max(1.0);
            }
        }

        let mut resources = vec![ResourceModel::default(); dag.num_stages()];
        for (s, r) in &self.resources {
            resources[s.index()] = *r;
        }
        let mut model = JobTimeModel::new(dag, stages, edges, resources);
        for (i, sc) in scaling.into_iter().enumerate() {
            model.set_scaling(StageId(i as u32), sc);
        }
        (model, start.elapsed())
    }
}

impl Default for JobProfile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::generators;

    /// Synthesize samples from a known ground truth α/β at 5 DoPs — the
    /// paper's methodology (five profiled parallelism degrees, §6.5).
    fn samples(alpha: f64, beta: f64, straggle: f64) -> Vec<ProfileSample> {
        [10u32, 20, 40, 80, 120]
            .iter()
            .map(|&d| {
                let mean = alpha / d as f64 + beta;
                ProfileSample {
                    dop: d,
                    mean_seconds: mean,
                    max_seconds: mean * straggle,
                }
            })
            .collect()
    }

    #[test]
    fn builds_model_recovering_ground_truth() {
        let dag = generators::fig1_join();
        let mut profile = JobProfile::new();
        profile.add_stage(
            StageProfile::new(StageId(0))
                .with_step(StepTarget::Compute, samples(60.0, 1.0, 1.0))
                .with_step(StepTarget::ExternalRead, samples(100.0, 0.5, 1.0))
                .with_step(StepTarget::EdgeWrite(EdgeId(0)), samples(8.0, 0.5, 1.0)),
        );
        let (model, took) = profile.build_model(&dag);
        let none = model.no_colocation();
        let a = model.stage_alpha(&dag, StageId(0), &none);
        assert!((a - 168.0).abs() < 1e-6, "alpha={a}");
        let b = model.stage_beta(&dag, StageId(0), &none);
        assert!((b - 2.0).abs() < 1e-6, "beta={b}");
        assert!(took < Duration::from_secs(1));
    }

    #[test]
    fn straggler_ratio_becomes_scaling() {
        let dag = generators::fig1_join();
        let mut profile = JobProfile::new();
        profile.add_stage(
            StageProfile::new(StageId(1)).with_step(StepTarget::Compute, samples(40.0, 0.0, 1.3)),
        );
        let (model, _) = profile.build_model(&dag);
        assert!((model.scaling(StageId(1)) - 1.3).abs() < 1e-9);
        // Unprofiled stages keep scaling 1.
        assert_eq!(model.scaling(StageId(0)), 1.0);
    }

    #[test]
    fn single_sample_goes_to_alpha() {
        let dag = generators::fig1_join();
        let mut profile = JobProfile::new();
        profile.add_stage(
            StageProfile::new(StageId(0))
                .with_step(StepTarget::Compute, vec![ProfileSample::even(10, 6.0)]),
        );
        let (model, _) = profile.build_model(&dag);
        let st = model.stage_steps(StageId(0));
        assert!((st.compute.alpha - 60.0).abs() < 1e-9);
        assert_eq!(st.compute.beta, 0.0);
    }

    #[test]
    fn resource_overrides_apply() {
        let dag = generators::fig1_join();
        let mut profile = JobProfile::new();
        profile
            .resources
            .push((StageId(2), ResourceModel::new(7.0, 0.25)));
        let (model, _) = profile.build_model(&dag);
        assert_eq!(model.resource(StageId(2)).rho, 7.0);
        assert_eq!(model.resource(StageId(0)).rho, 1.0); // default elsewhere
    }

    #[test]
    fn unprofiled_stages_are_zero() {
        let dag = generators::fig1_join();
        let (model, _) = JobProfile::new().build_model(&dag);
        let none = model.no_colocation();
        assert_eq!(model.stage_alpha(&dag, StageId(0), &none), 0.0);
        assert_eq!(model.stage_beta(&dag, StageId(0), &none), 0.0);
    }
}
