//! The schedule auditor: independent re-derivation of the paper's
//! invariants as machine-checkable certificates.
//!
//! Nothing here calls into the joint optimizer. The DoP-ratio certificate
//! re-derives the fractional Algorithm-1 optimum from the time model alone
//! (the documented merge rules, Eq. 3/4), the placement certificate
//! re-counts tasks per server against the cluster's free slots, and the
//! grouping certificates re-check partition/connectivity/co-location
//! claims from the DAG — so a bug in `ditto-core` cannot silently vouch
//! for itself.

use crate::report::{AuditFinding, AuditReport, CheckId};
use ditto_cluster::{ResourceManager, ServerId};
use ditto_core::{Objective, Schedule, TaskPlacement};
use ditto_dag::{JobDag, StageId};
use ditto_timemodel::JobTimeModel;
use std::collections::BTreeMap;

/// Knobs for [`audit_with`]. The default audits everything that can be
/// audited for the given schedule.
#[derive(Debug, Clone, Default)]
pub struct AuditOptions {
    /// Force the DoP-ratio certificate on (`Some(true)`) or off
    /// (`Some(false)`). By default it runs only for schedules named
    /// `ditto-jct` / `ditto-cost` — the joint optimizer's outputs, which
    /// claim Algorithm-1 optimality. Baselines (NIMBLE's DoP ∝ input
    /// size, fixed DoP, …) are *deliberately* non-optimal and are not
    /// held to the ratio invariant.
    pub check_ratios: Option<bool>,
    /// If set, predicted JCT above this many seconds is an error.
    pub deadline: Option<f64>,
    /// If set, predicted cost above this many GB·s is an error.
    pub cost_budget: Option<f64>,
}

/// Audit a schedule against the DAG, time model and cluster it was
/// produced for, with default options. `cluster` must be the free-slot
/// state the scheduler saw (schedules do not record reservations they
/// caused, so auditing against a post-reservation manager would
/// double-count).
pub fn audit(
    dag: &JobDag,
    model: &JobTimeModel,
    cluster: &ResourceManager,
    schedule: &Schedule,
) -> AuditReport {
    audit_with(dag, model, cluster, schedule, &AuditOptions::default())
}

/// [`audit`] with explicit [`AuditOptions`].
pub fn audit_with(
    dag: &JobDag,
    model: &JobTimeModel,
    cluster: &ResourceManager,
    schedule: &Schedule,
    opts: &AuditOptions,
) -> AuditReport {
    let mut report = audit_structure(dag, schedule);
    report.merge(audit_model(dag, model));
    if report.is_clean() {
        // Placement/ratio certificates index by the vectors the structural
        // pass just length-checked; skip them on malformed input.
        report.merge(audit_placement(dag, cluster, schedule));
        let ratios = opts
            .check_ratios
            .unwrap_or(matches!(
                schedule.scheduler.as_str(),
                "ditto-jct" | "ditto-cost"
            ));
        if ratios {
            report.merge(audit_ratios(dag, model, cluster, schedule));
        }
        report.merge(audit_objective(dag, model, schedule, opts));
    }
    report
}

// ---------------------------------------------------------------------
// Structural certificates (no model or cluster needed)
// ---------------------------------------------------------------------

/// DAG sanity plus everything checkable from `(dag, schedule)` alone:
/// vector alignment, DoP ≥ 1, spread coverage, group partition and
/// connectivity, and the co-location claims (same group *and* same server
/// set per co-located edge). This is the subset `ditto-exec` gates on
/// before simulating.
pub fn audit_structure(dag: &JobDag, schedule: &Schedule) -> AuditReport {
    let mut r = AuditReport::default();
    let n = dag.num_stages();

    // DAG itself: non-empty, unique names, acyclic.
    r.checks_run += 1;
    if let Err(e) = dag.validate() {
        r.findings
            .push(AuditFinding::error(CheckId::Structure, format!("invalid DAG: {e}")));
        return r; // nothing downstream is meaningful
    }

    // The paper's DAGs have a single result stage; more than one is legal
    // here (random DAGs can have several sinks) but worth surfacing.
    r.checks_run += 1;
    let sinks = dag.final_stages();
    if sinks.len() > 1 {
        r.findings.push(AuditFinding::warning(
            CheckId::Structure,
            format!("{} sink stages (paper DAGs have one)", sinks.len()),
        ));
    }

    // Vector alignment.
    r.checks_run += 1;
    let aligned = schedule.dop.len() == n
        && schedule.placement.len() == n
        && schedule.group_of.len() == n
        && schedule.colocated.len() == dag.num_edges();
    if !aligned {
        r.findings.push(AuditFinding::error(
            CheckId::Structure,
            format!(
                "schedule vectors misaligned: dop {}, placement {}, group_of {} (stages {}); \
                 colocated {} (edges {})",
                schedule.dop.len(),
                schedule.placement.len(),
                schedule.group_of.len(),
                n,
                schedule.colocated.len(),
                dag.num_edges()
            ),
        ));
        return r;
    }

    // Per-stage: DoP ≥ 1, spread placements cover exactly the DoP.
    for s in dag.stages() {
        let i = s.id.index();
        r.checks_run += 2;
        if schedule.dop[i] == 0 {
            r.findings.push(
                AuditFinding::error(CheckId::Structure, format!("stage {:?} has DoP 0", s.name))
                    .at_stage(s.id.0),
            );
        }
        if let TaskPlacement::Spread(parts) = &schedule.placement[i] {
            let covered: u32 = parts.iter().map(|&(_, c)| c).sum();
            if covered != schedule.dop[i] {
                r.findings.push(
                    AuditFinding::error(
                        CheckId::PlacementCoverage,
                        format!(
                            "stage {:?} places {covered} tasks but DoP is {}",
                            s.name, schedule.dop[i]
                        ),
                    )
                    .at_stage(s.id.0),
                );
            }
            if parts.iter().any(|&(_, c)| c == 0) {
                r.findings.push(
                    AuditFinding::warning(
                        CheckId::PlacementCoverage,
                        format!("stage {:?} placement has an empty chunk", s.name),
                    )
                    .at_stage(s.id.0),
                );
            }
        }
    }

    // Group partition: every stage in exactly one group, group_of aligned.
    r.checks_run += 1;
    let mut seen = vec![false; n];
    let mut partition_ok = true;
    for (g, members) in schedule.groups.iter().enumerate() {
        for &m in members {
            if m.index() >= n {
                r.findings.push(AuditFinding::error(
                    CheckId::GroupPartition,
                    format!("group {g} names nonexistent stage {}", m.0),
                ));
                partition_ok = false;
                continue;
            }
            if seen[m.index()] {
                r.findings.push(
                    AuditFinding::error(
                        CheckId::GroupPartition,
                        format!("stage {} appears in more than one group", m.0),
                    )
                    .at_stage(m.0),
                );
                partition_ok = false;
            }
            seen[m.index()] = true;
            if schedule.group_of[m.index()] != g {
                r.findings.push(
                    AuditFinding::error(
                        CheckId::GroupPartition,
                        format!(
                            "group_of[{}] = {} but stage is listed in group {g}",
                            m.0,
                            schedule.group_of[m.index()]
                        ),
                    )
                    .at_stage(m.0),
                );
                partition_ok = false;
            }
        }
    }
    for (i, s) in seen.iter().enumerate() {
        if !s {
            r.findings.push(
                AuditFinding::error(
                    CheckId::GroupPartition,
                    format!("stage {i} belongs to no group"),
                )
                .at_stage(i as u32),
            );
            partition_ok = false;
        }
    }

    // Group connectivity: Algorithm 2 merges only along DAG edges, so a
    // multi-stage group must be connected in the undirected edge graph.
    if partition_ok {
        for (g, members) in schedule.groups.iter().enumerate() {
            if members.len() < 2 {
                continue;
            }
            r.checks_run += 1;
            let in_group = |s: StageId| schedule.group_of[s.index()] == g;
            let mut reached = vec![false; members.len()];
            let pos =
                |s: StageId| members.iter().position(|&m| m == s).expect("member of group");
            reached[0] = true;
            let mut stack = vec![members[0]];
            while let Some(s) = stack.pop() {
                for e in dag.incident_edges(s) {
                    let other = if e.src == s { e.dst } else { e.src };
                    if in_group(other) && !reached[pos(other)] {
                        reached[pos(other)] = true;
                        stack.push(other);
                    }
                }
            }
            for (k, ok) in reached.iter().enumerate() {
                if !ok {
                    r.findings.push(
                        AuditFinding::error(
                            CheckId::GroupConnectivity,
                            format!(
                                "group {g} is disconnected: stage {} shares no edge path \
                                 with stage {} inside the group",
                                members[k].0, members[0].0
                            ),
                        )
                        .at_stage(members[k].0),
                    );
                }
            }
        }
    }

    // Co-location claims: a colocated edge's endpoints must share a group
    // (the mask is exactly the same-group relation in this codebase) and a
    // server set (otherwise "shared memory" would cross machines).
    for e in dag.edges() {
        r.checks_run += 1;
        if !schedule.colocated[e.id.index()] {
            continue;
        }
        if schedule.group_of[e.src.index()] != schedule.group_of[e.dst.index()] {
            r.findings.push(
                AuditFinding::error(
                    CheckId::ColocationClaim,
                    format!(
                        "edge {} ({} -> {}) claims shared-memory co-location but its \
                         endpoints are in groups {} and {}",
                        e.id.0,
                        e.src.0,
                        e.dst.0,
                        schedule.group_of[e.src.index()],
                        schedule.group_of[e.dst.index()]
                    ),
                )
                .at_edge(e.id.0),
            );
            continue;
        }
        let src_servers = schedule.placement[e.src.index()].servers();
        let dst_servers = schedule.placement[e.dst.index()].servers();
        if src_servers != dst_servers {
            r.findings.push(
                AuditFinding::error(
                    CheckId::ColocationClaim,
                    format!(
                        "edge {} ({} -> {}) claims co-location but the stages run on \
                         different servers ({src_servers:?} vs {dst_servers:?})",
                        e.id.0, e.src.0, e.dst.0
                    ),
                )
                .at_edge(e.id.0),
            );
        }
    }

    r
}

// ---------------------------------------------------------------------
// Time-model sanity
// ---------------------------------------------------------------------

/// Positive/finite α and β per stage, scaling ≥ 1 — the preconditions of
/// every Algorithm-1 derivation (a negative α flips the merge ratios).
pub fn audit_model(dag: &JobDag, model: &JobTimeModel) -> AuditReport {
    let mut r = AuditReport::default();
    if dag.validate().is_err() {
        return r; // structure pass already reported
    }
    let none = model.no_colocation();
    for s in dag.stages() {
        r.checks_run += 3;
        let alpha = model.stage_alpha(dag, s.id, &none);
        let beta = model.stage_beta(dag, s.id, &none);
        if !alpha.is_finite() || alpha < 0.0 {
            r.findings.push(
                AuditFinding::error(
                    CheckId::ModelSanity,
                    format!("stage {:?} has α = {alpha}", s.name),
                )
                .at_stage(s.id.0),
            );
        } else if alpha == 0.0 {
            r.findings.push(
                AuditFinding::warning(
                    CheckId::ModelSanity,
                    format!("stage {:?} has zero parallelizable work (α = 0)", s.name),
                )
                .at_stage(s.id.0),
            );
        }
        if !beta.is_finite() || beta < 0.0 {
            r.findings.push(
                AuditFinding::error(
                    CheckId::ModelSanity,
                    format!("stage {:?} has β = {beta}", s.name),
                )
                .at_stage(s.id.0),
            );
        }
        let scale = model.scaling(s.id);
        if scale < 1.0 || !scale.is_finite() {
            r.findings.push(
                AuditFinding::error(
                    CheckId::ModelSanity,
                    format!("stage {:?} has straggler scaling {scale} (must be ≥ 1)", s.name),
                )
                .at_stage(s.id.0),
            );
        }
    }
    r
}

// ---------------------------------------------------------------------
// Placement certificates (Algorithm 3 feasibility)
// ---------------------------------------------------------------------

/// Re-count tasks per server and compare against the cluster's free
/// slots, plus the global Σ DoP ≤ max(C, #stages) budget.
pub fn audit_placement(
    dag: &JobDag,
    cluster: &ResourceManager,
    schedule: &Schedule,
) -> AuditReport {
    audit_placement_masked(dag, cluster, schedule, None)
}

/// Feasibility certificate for a *spliced* (replanned) schedule.
///
/// A mid-job replan cannot be audited with the static [`audit_placement`]
/// count: stages of the completed prefix have already released their
/// slots, so counting them against the replan-time free-slot snapshot
/// would double-charge the cluster. The caller supplies the `active`
/// mask — stages still holding or about to claim slots at splice time
/// (the in-flight prefix plus the replanned suffix) — and only those are
/// counted against `cluster`. Structure, grouping and co-location claims
/// are still checked for the whole schedule ([`audit_structure`]).
///
/// `cluster` must be the free-slot snapshot the replan optimized against
/// (failed servers removed, completed stages' slots returned).
pub fn audit_splice(
    dag: &JobDag,
    cluster: &ResourceManager,
    schedule: &Schedule,
    active: &[bool],
) -> AuditReport {
    let mut r = audit_structure(dag, schedule);
    if r.is_clean() {
        r.merge(audit_placement_masked(dag, cluster, schedule, Some(active)));
    }
    r
}

/// [`audit_placement`] restricted to the stages selected by `active`
/// (`None` = all stages).
fn audit_placement_masked(
    dag: &JobDag,
    cluster: &ResourceManager,
    schedule: &Schedule,
    active: Option<&[bool]>,
) -> AuditReport {
    let mut r = AuditReport::default();
    let counted = |i: usize| active.is_none_or(|m| m.get(i).copied().unwrap_or(false));
    let n = dag
        .stages()
        .iter()
        .filter(|s| counted(s.id.index()))
        .count() as u32;

    // Tasks per server, with the heaviest stage kept for provenance.
    let mut load: BTreeMap<u32, (u32, u32)> = BTreeMap::new(); // server -> (tasks, worst stage)
    let mut add = |server: ServerId, count: u32, stage: StageId| {
        let entry = load.entry(server.0).or_insert((0, stage.0));
        entry.0 += count;
        if count > 0 {
            entry.1 = stage.0;
        }
    };
    for s in dag.stages() {
        if !counted(s.id.index()) {
            continue;
        }
        let d = schedule.dop[s.id.index()];
        match &schedule.placement[s.id.index()] {
            TaskPlacement::Single(srv) => add(*srv, d, s.id),
            TaskPlacement::Spread(parts) => {
                for &(srv, c) in parts {
                    add(srv, c, s.id);
                }
            }
        }
    }

    for (&server, &(tasks, stage)) in &load {
        r.checks_run += 1;
        if server as usize >= cluster.num_servers() {
            r.findings.push(
                AuditFinding::error(
                    CheckId::SlotCapacity,
                    format!(
                        "placement names server {server} but the cluster has {}",
                        cluster.num_servers()
                    ),
                )
                .at_server(server)
                .at_stage(stage),
            );
            continue;
        }
        let free = cluster.free_on(ServerId(server));
        if tasks > free {
            r.findings.push(
                AuditFinding::error(
                    CheckId::SlotCapacity,
                    format!("server {server} hosts {tasks} tasks but had {free} free slots"),
                )
                .at_server(server)
                .at_stage(stage),
            );
        }
    }

    // §4.5 rounding keeps Σ DoP within max(C, #stages): every stage needs
    // at least one task even when C < #stages. Under a mask, both sides
    // count the selected stages only.
    r.checks_run += 1;
    let budget = cluster.total_free().max(n);
    let used: u32 = dag
        .stages()
        .iter()
        .filter(|s| counted(s.id.index()))
        .map(|s| schedule.dop[s.id.index()])
        .sum();
    if used > budget {
        r.findings.push(AuditFinding::error(
            CheckId::SlotBudget,
            format!("schedule uses {used} slots, budget is {budget} (C = {})", cluster.total_free()),
        ));
    }

    r
}

// ---------------------------------------------------------------------
// DoP-ratio certificates (Algorithm 1)
// ---------------------------------------------------------------------

/// The fractional Algorithm-1 optimum, re-derived from scratch.
///
/// JCT: collapse the DAG bottom-up with the paper's two merge rules —
/// sibling subtrees merge with `α = Σαᵢ` and split slots `dᵢ ∝ αᵢ`
/// (Eq. 4, Appendix A.2); an upstream subtree merges with its consumer
/// stage with `α = (√α_up + √α_down)²` and splits `d ∝ √α` (Eq. 3,
/// Appendix A.1). Multi-consumer stages follow the documented spanning
/// in-forest reduction: each attaches to the consumer on its heaviest
/// α-path to a sink (ties to the smaller id).
///
/// Cost: the single-path reduction `dᵢ ∝ √(ρᵢ αᵢ)` (§4.2).
pub fn derive_fractional_dops(
    dag: &JobDag,
    model: &JobTimeModel,
    colocated: &[bool],
    objective: Objective,
    c: u32,
) -> Vec<f64> {
    let n = dag.num_stages();
    let alpha: Vec<f64> = dag
        .stages()
        .iter()
        .map(|s| model.stage_alpha(dag, s.id, colocated))
        .collect();

    if objective == Objective::Cost {
        let shares: Vec<f64> = (0..n)
            .map(|i| (model.resource(StageId(i as u32)).rho * alpha[i]).sqrt())
            .collect();
        let total: f64 = shares.iter().sum();
        return if total > 0.0 {
            shares.iter().map(|s| s / total * c as f64).collect()
        } else {
            vec![c as f64 / n as f64; n]
        };
    }

    // Spanning in-forest: primary consumer = heaviest α-path to a sink.
    let order = dag.topo_order().expect("audited DAG was validated");
    let mut longest = vec![0.0_f64; n];
    for &s in order.iter().rev() {
        let best = dag
            .children_of(s)
            .map(|ch| longest[ch.index()])
            .fold(0.0_f64, f64::max);
        longest[s.index()] = alpha[s.index()] + best;
    }
    let mut feeders: Vec<Vec<StageId>> = vec![Vec::new(); n];
    for s in dag.stages() {
        let primary = dag.children_of(s.id).max_by(|&a, &b| {
            longest[a.index()]
                .total_cmp(&longest[b.index()])
                .then(b.cmp(&a)) // tie → smaller id
        });
        if let Some(p) = primary {
            feeders[p.index()].push(s.id);
        }
    }

    // Merged subtree α per stage: A[s] = (√(Σ A[feeders]) + √α_s)².
    let mut merged = vec![0.0_f64; n];
    for &s in &order {
        let up: f64 = feeders[s.index()].iter().map(|f| merged[f.index()]).sum();
        merged[s.index()] = if feeders[s.index()].is_empty() {
            alpha[s.index()]
        } else {
            (up.sqrt() + alpha[s.index()].sqrt()).powi(2)
        };
    }

    // Walk back down: sinks split C ∝ A (inter-path); inside a subtree the
    // stage takes √α_s : √(Σ A[feeders]) (intra-path) and the feeders split
    // their share ∝ A (inter-path again).
    let mut fractional = vec![0.0_f64; n];
    let sinks = dag.final_stages();
    let sink_total: f64 = sinks.iter().map(|s| merged[s.index()]).sum();
    let mut subtree_budget = vec![0.0_f64; n];
    for &s in &sinks {
        subtree_budget[s.index()] = if sink_total > 0.0 {
            c as f64 * merged[s.index()] / sink_total
        } else {
            c as f64 / sinks.len() as f64
        };
    }
    for &s in order.iter().rev() {
        let d = subtree_budget[s.index()];
        let fs = &feeders[s.index()];
        if fs.is_empty() {
            fractional[s.index()] = d;
            continue;
        }
        let up: f64 = fs.iter().map(|f| merged[f.index()]).sum();
        let (su, sd) = (up.sqrt(), alpha[s.index()].sqrt());
        let own_share = if su + sd > 0.0 { sd / (su + sd) } else { 0.5 };
        fractional[s.index()] = d * own_share;
        let up_budget = d - fractional[s.index()];
        for f in fs {
            subtree_budget[f.index()] = if up > 0.0 {
                up_budget * merged[f.index()] / up
            } else {
                up_budget / fs.len() as f64
            };
        }
    }
    fractional
}

/// Certify that `schedule.dop` is a faithful §4.5 rounding of the
/// independently re-derived fractional optimum, per stage.
///
/// The §4.5 rule is floor-then-clamp-to-1, with slots taken back from the
/// largest DoPs only when `Σ max(⌊dᵢ⌋, 1) > max(C, #stages)` (possible
/// only when C is small relative to the stage count). The certificate
/// therefore accepts `dopᵢ ∈ [max(⌊dᵢ⌋,1) − shrink, max(⌊dᵢ⌋,1)]` where
/// `shrink` is the total overshoot, widening the floor by a relative ε so
/// a last-ulp difference between this derivation and the scheduler's
/// cannot flip a certificate.
pub fn audit_ratios(
    dag: &JobDag,
    model: &JobTimeModel,
    cluster: &ResourceManager,
    schedule: &Schedule,
) -> AuditReport {
    let mut r = AuditReport::default();
    let objective = if schedule.scheduler.contains("cost") {
        Objective::Cost
    } else {
        Objective::Jct
    };
    let c = cluster.total_free().max(1);
    let n = dag.num_stages() as u32;
    let fractional = derive_fractional_dops(dag, model, &schedule.colocated, objective, c);

    let eps = |f: f64| 1e-9 * f.abs().max(1.0);
    let floor_hi = |f: f64| (((f + eps(f)).floor()) as i64).max(1);
    let floor_lo = |f: f64| (((f - eps(f)).floor()) as i64).max(1);

    let nominal: i64 = fractional.iter().map(|&f| floor_hi(f)).sum();
    let shrink = (nominal - i64::from(c.max(n))).max(0);

    for s in dag.stages() {
        r.checks_run += 1;
        let f = fractional[s.id.index()];
        let d = i64::from(schedule.dop[s.id.index()]);
        let hi = floor_hi(f);
        let lo = (floor_lo(f) - shrink).max(1);
        if d < lo || d > hi {
            let rule = match objective {
                Objective::Jct => "Eq. 3/4 merge ratios",
                Objective::Cost => "dᵢ ∝ √(ρᵢαᵢ)",
            };
            r.findings.push(
                AuditFinding::error(
                    CheckId::DopRatio,
                    format!(
                        "stage {:?} has DoP {d}, but the re-derived {rule} optimum is \
                         {f:.3} of {c} slots — certified range [{lo}, {hi}]",
                        s.name
                    ),
                )
                .at_stage(s.id.0),
            );
        }
    }

    // Subtree-level ratio certificates on the *fractional* derivation:
    // every intra-path split must satisfy d_down/d_up = √α_down/√(Σ A_up)
    // and sibling subtrees d_i/d_j = A_i/A_j. These hold by construction
    // of `derive_fractional_dops`; re-checking them here guards the
    // auditor itself against a derivation bug (a broken derivation would
    // otherwise silently certify broken schedules).
    if objective == Objective::Jct {
        r.merge(ratio_self_check(dag, model, &schedule.colocated, &fractional));
    }

    r
}

/// Verify the Eq. 3/4 ratio laws directly on a fractional DoP vector.
fn ratio_self_check(
    dag: &JobDag,
    model: &JobTimeModel,
    colocated: &[bool],
    fractional: &[f64],
) -> AuditReport {
    let mut r = AuditReport::default();
    let alpha: Vec<f64> = dag
        .stages()
        .iter()
        .map(|s| model.stage_alpha(dag, s.id, colocated))
        .collect();
    for s in dag.stages() {
        let (d, a) = (fractional[s.id.index()], alpha[s.id.index()]);
        for child in dag.children_of(s.id) {
            let (dc, ac) = (fractional[child.index()], alpha[child.index()]);
            if d <= 0.0 || dc <= 0.0 || a <= 0.0 || ac <= 0.0 {
                continue;
            }
            r.checks_run += 1;
            // Along the spanning forest the exact law is d_s/d_child =
            // √(A_s/α_child) with A the merged subtree α — which is ≥ the
            // plain √(α_s/α_child) whenever s has feeders of its own, and
            // the child may also host siblings of s. The certificate
            // therefore brackets the ratio between the two extremes
            // instead of pinning one closed form.
            let ratio = d / dc;
            let lo = (a / alpha_upper_bound(dag, &alpha, child)).sqrt() * 1e-3;
            let hi = (alpha_upper_bound(dag, &alpha, s.id) / ac).sqrt() * 1e3;
            if !(ratio >= lo && ratio <= hi && ratio.is_finite()) {
                r.findings.push(
                    AuditFinding::warning(
                        CheckId::DopRatio,
                        format!(
                            "fractional ratio d[{}]/d[{}] = {ratio:.4} escapes the \
                             Eq. 3 bracket [{lo:.4}, {hi:.4}]",
                            s.id.0, child.0
                        ),
                    )
                    .at_stage(s.id.0),
                );
            }
        }
    }
    r
}

/// Upper bound on the merged subtree α rooted at `s`: (Σ√α over all
/// stages)² caps every Eq. 3 cascade.
fn alpha_upper_bound(_dag: &JobDag, alpha: &[f64], _s: StageId) -> f64 {
    let total: f64 = alpha.iter().map(|a| a.max(0.0).sqrt()).sum();
    total * total
}

// ---------------------------------------------------------------------
// Objective-level certificates
// ---------------------------------------------------------------------

/// Deadline / cost-budget adherence on the model-predicted outcome.
fn audit_objective(
    dag: &JobDag,
    model: &JobTimeModel,
    schedule: &Schedule,
    opts: &AuditOptions,
) -> AuditReport {
    let mut r = AuditReport::default();
    if opts.deadline.is_none() && opts.cost_budget.is_none() {
        return r;
    }
    let frac: Vec<f64> = schedule.dop.iter().map(|&d| d as f64).collect();
    if let Some(deadline) = opts.deadline {
        r.checks_run += 1;
        let jct = ditto_core::predicted_jct(dag, model, &frac, &schedule.colocated);
        if jct > deadline {
            r.findings.push(AuditFinding::error(
                CheckId::Deadline,
                format!("predicted JCT {jct:.2}s exceeds the {deadline:.2}s deadline"),
            ));
        }
    }
    if let Some(budget) = opts.cost_budget {
        r.checks_run += 1;
        let cost = ditto_core::predicted_cost(dag, model, &frac, &schedule.colocated);
        if cost > budget {
            r.findings.push(AuditFinding::error(
                CheckId::CostBudget,
                format!("predicted cost {cost:.2} GB·s exceeds the {budget:.2} GB·s budget"),
            ));
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_core::{joint_optimize, JointOptions, Scheduler as _};
    use ditto_timemodel::model::RateConfig;

    fn setup() -> (JobDag, JobTimeModel, ResourceManager) {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![96; 8]);
        (dag, model, rm)
    }

    #[test]
    fn joint_optimize_output_is_certified() {
        let (dag, model, rm) = setup();
        for objective in [Objective::Jct, Objective::Cost] {
            let s = joint_optimize(&dag, &model, &rm, objective, &JointOptions::default());
            let report = audit(&dag, &model, &rm, &s);
            assert!(report.is_clean(), "{objective:?}:\n{}", report.render());
            assert!(report.checks_run > dag.num_stages(), "checks actually ran");
        }
    }

    #[test]
    fn fractional_derivation_matches_algorithm_one() {
        let (dag, model, rm) = setup();
        let none = model.no_colocation();
        for objective in [Objective::Jct, Objective::Cost] {
            let ours =
                derive_fractional_dops(&dag, &model, &none, objective, rm.total_free());
            let theirs =
                ditto_core::compute_dop(&dag, &model, &none, objective, rm.total_free());
            for (i, (a, b)) in ours.iter().zip(&theirs.fractional).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                    "stage {i}: audit {a} vs core {b} ({objective:?})"
                );
            }
        }
    }

    #[test]
    fn splice_audit_counts_only_active_stages() {
        let (dag, model, rm) = setup();
        let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        let n = dag.num_stages();

        // Treat the last two stages as the replanned suffix against a
        // nearly-full cluster: the full static count would overflow, the
        // masked count must not.
        let mut active = vec![false; n];
        active[n - 1] = true;
        active[n - 2] = true;
        let masked_need: u32 = (n - 2..n).map(|i| s.dop[i]).sum();
        let tight = ResourceManager::from_free_slots(vec![masked_need; 1]);
        // Re-place the suffix onto the one-server snapshot so the masked
        // capacity check exercises the real placement path.
        let mut spliced = s.clone();
        spliced.scheduler = format!("{}+replan", s.scheduler);
        for i in n - 2..n {
            spliced.placement[i] = TaskPlacement::Single(ServerId(0));
        }
        for (e, c) in dag.edges().iter().zip(spliced.colocated.iter_mut()) {
            if *c && (active[e.src.index()] || active[e.dst.index()]) {
                *c = false;
            }
        }
        let report = audit_splice(&dag, &tight, &spliced, &active);
        assert!(report.is_clean(), "{}", report.render());

        // One fewer free slot and the masked certificate must flag it.
        let over = ResourceManager::from_free_slots(vec![masked_need - 1; 1]);
        let report = audit_splice(&dag, &over, &spliced, &active);
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == CheckId::SlotCapacity || f.check == CheckId::SlotBudget));
    }

    #[test]
    fn deadline_option_flags_misses() {
        let (dag, model, rm) = setup();
        let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        let opts = AuditOptions {
            deadline: Some(1e-6), // impossible
            ..Default::default()
        };
        let report = audit_with(&dag, &model, &rm, &s, &opts);
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == CheckId::Deadline));
    }

    #[test]
    fn baseline_is_not_held_to_ratio_invariant() {
        let (dag, model, rm) = setup();
        let s = ditto_core::baselines::NimbleScheduler { seed: 7 }.schedule(
            &ditto_core::SchedulingContext {
                dag: &dag,
                model: &model,
                resources: &rm,
                objective: Objective::Jct,
            },
        );
        let report = audit(&dag, &model, &rm, &s);
        assert!(report.is_clean(), "{}", report.render());
        // But forcing the ratio check on a DoP-∝-input baseline flags it.
        let forced = audit_with(
            &dag,
            &model,
            &rm,
            &s,
            &AuditOptions { check_ratios: Some(true), ..Default::default() },
        );
        assert!(forced.findings.iter().any(|f| f.check == CheckId::DopRatio));
    }
}
