//! Minimal offline stand-in for `proptest`.
//!
//! Keeps the call-site surface (`proptest!`, `prop_assert*`, `prop_oneof!`,
//! `Strategy`, `collection::vec`, `ProptestConfig`) but swaps the engine
//! for plain deterministic random sampling: each test case draws its
//! inputs from an RNG seeded by the test name and case index, so failures
//! reproduce exactly across runs. There is no shrinking — a failing case
//! reports the case number, and re-running hits the same inputs.

use rand::{Rng, SeedableRng, StdRng};

/// Strategy combinators and the [`Strategy`](strategy::Strategy) trait.
pub mod strategy {
    use super::*;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Object-safe: `gen_value` takes a concrete [`StdRng`] so strategies
    /// can be boxed for [`Union`] / `prop_oneof!`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Box the strategy (type erasure).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut StdRng) -> V {
            (**self).gen_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// New union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].gen_value(rng)
        }
    }

    /// Boxing helper used by `prop_oneof!` (keeps inference on arm types).
    pub fn boxed_arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Length specification: exact or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy yielding `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Vector of values drawn from `elem`, with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.lo..self.len.hi);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Test-runner types: configuration and case-level errors.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — the property is violated.
        Fail(String),
        /// Input rejected by `prop_assume!` — draw another case.
        Reject,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (filtered input).
        pub fn reject(_msg: impl Into<String>) -> Self {
            TestCaseError::Reject
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject => write!(f, "input rejected"),
            }
        }
    }
}

/// Deterministic per-(test, case) RNG: FNV-1a of the test name mixed with
/// the case index.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Everything call sites import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use test_runner::{ProptestConfig, TestCaseError};

/// Define property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursive expansion for [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut __rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property `{}` failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Assert a boolean property inside `proptest!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}: {:?} != {:?}",
                    stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}: {:?} != {:?}: {}",
                    stringify!($a), stringify!($b), a, b, format!($($fmt)+)),
            ));
        }
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} != {}: both {:?}",
                    stringify!($a), stringify!($b), a),
            ));
        }
    }};
}

/// Reject the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_arm($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, Vec<i64>)> {
        (0u32..10).prop_flat_map(|n| {
            (Just(n), collection::vec(-5i64..5, n as usize))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f), "f = {}", f);
        }

        #[test]
        fn flat_map_links_length((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n as usize);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![0i64..3, 10i64..13]) {
            prop_assert!((0..3).contains(&x) || (10..13).contains(&x));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn runs_generated_tests() {
        ranges_in_bounds();
        flat_map_links_length();
        oneof_covers_arms();
        assume_rejects();
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = collection::vec(0i64..100, 5usize);
        let a = s.gen_value(&mut crate::case_rng("t", 3));
        let b = s.gen_value(&mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }
}
