//! Path enumeration and weighted critical-path computation.
//!
//! The greedy grouping algorithm (paper §4.3) repeatedly finds the critical
//! path of the DAG under node weights (compute time, or resource·compute for
//! the cost objective) and edge weights (shuffle write+read time, zeroed
//! once the two endpoint stages are grouped).

use crate::graph::{EdgeId, JobDag};
use crate::stage::StageId;

/// Node and edge weights over a [`JobDag`], indexed by id.
///
/// Weights are non-negative `f64`s; the semantics (seconds, dollars, …)
/// belong to the caller.
#[derive(Debug, Clone)]
pub struct DagWeights {
    /// `node[StageId::index()]`.
    pub node: Vec<f64>,
    /// `edge[EdgeId::index()]`.
    pub edge: Vec<f64>,
}

impl DagWeights {
    /// Zero weights sized for `dag`.
    pub fn zeros(dag: &JobDag) -> Self {
        DagWeights {
            node: vec![0.0; dag.num_stages()],
            edge: vec![0.0; dag.num_edges()],
        }
    }

    /// Weight of a stage.
    pub fn node_weight(&self, s: StageId) -> f64 {
        self.node[s.index()]
    }

    /// Weight of an edge.
    pub fn edge_weight(&self, e: EdgeId) -> f64 {
        self.edge[e.index()]
    }
}

/// A directed path: alternating stages and the edges between them.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Stages along the path, upstream to downstream.
    pub stages: Vec<StageId>,
    /// Edges along the path; `edges.len() == stages.len() - 1`.
    pub edges: Vec<EdgeId>,
    /// Total weight (Σ node + Σ edge) under the weights it was computed for.
    pub weight: f64,
}

impl Path {
    /// Number of stages on the path.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the path has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// The critical path: the maximum-weight directed path from any initial
/// stage to any final stage, where a path's weight is the sum of its node
/// and edge weights. Computed by dynamic programming over the topological
/// order, O(V + E).
///
/// Ties are broken deterministically toward smaller stage ids.
///
/// Allocates a fresh topological order and DP buffers per call; hot loops
/// that recompute the critical path many times over one DAG should hold a
/// [`CriticalPathCache`] instead.
pub fn critical_path(dag: &JobDag, w: &DagWeights) -> Path {
    CriticalPathCache::new(dag).critical_path(dag, w)
}

/// Reusable state for repeated [`critical_path`] computations over one DAG:
/// the topological order is computed once and the DP buffers are reused, so
/// each recomputation is a single allocation-free O(V + E) sweep (plus the
/// returned [`Path`] itself). Produces bit-identical results to
/// [`critical_path`].
#[derive(Debug, Clone)]
pub struct CriticalPathCache {
    topo: Vec<StageId>,
    finals: Vec<StageId>,
    best: Vec<f64>,
    pred: Vec<Option<EdgeId>>,
}

impl CriticalPathCache {
    /// Build the cache for `dag` (computes and stores its topo order).
    pub fn new(dag: &JobDag) -> Self {
        let topo = dag
            .topo_order()
            .expect("critical_path requires an acyclic DAG");
        let n = dag.num_stages();
        CriticalPathCache {
            topo,
            finals: dag.final_stages(),
            best: vec![f64::NEG_INFINITY; n],
            pred: vec![None; n],
        }
    }

    /// The DP sweep: recompute `best`/`pred` under `w` and return the end
    /// stage of the critical path.
    fn sweep(&mut self, dag: &JobDag, w: &DagWeights) -> StageId {
        debug_assert_eq!(self.best.len(), dag.num_stages());
        // best[s] = max weight of a path ending at s (inclusive of s's node
        // weight); pred[s] = edge taken into s on that path.
        let best = &mut self.best;
        let pred = &mut self.pred;
        for &s in &self.topo {
            let own = w.node_weight(s);
            let mut b = own; // start of a path
            let mut p = None;
            for e in dag.in_edges(s) {
                let cand = best[e.src.index()] + w.edge_weight(e.id) + own;
                // Strictly better, or a tie against "start a fresh path here":
                // prefer the longer path through a parent so zero-weight DAGs
                // still yield maximal paths (greedy grouping needs edges to
                // traverse even when all remaining weights are equal).
                if cand > b + 1e-15 || (p.is_none() && cand >= b - 1e-15) {
                    b = cand;
                    p = Some(e.id);
                }
            }
            best[s.index()] = b;
            pred[s.index()] = p;
        }
        // Pick the best final stage.
        let mut end: Option<StageId> = None;
        for &s in &self.finals {
            if end.is_none_or(|cur| best[s.index()] > best[cur.index()] + 1e-15) {
                end = Some(s);
            }
        }
        end.expect("non-empty DAG has a final stage")
    }

    /// The critical path's *edges only*, written into `out` (cleared first)
    /// in downstream→upstream order, with no `Path` allocation. For callers
    /// that reduce over the edge set — like the greedy grouping pick, whose
    /// heaviest-edge comparator is a total order and therefore
    /// order-independent.
    pub fn critical_path_edges_into(&mut self, dag: &JobDag, w: &DagWeights, out: &mut Vec<EdgeId>) {
        let end = self.sweep(dag, w);
        out.clear();
        let mut cur = end;
        while let Some(e) = self.pred[cur.index()] {
            out.push(e);
            cur = dag.edge(e).src;
        }
    }

    /// [`critical_path`] using the cached topo order and buffers. The cache
    /// must have been built for this `dag`.
    pub fn critical_path(&mut self, dag: &JobDag, w: &DagWeights) -> Path {
        let end = self.sweep(dag, w);
        let best = &self.best;
        let pred = &self.pred;
        // Reconstruct.
        let mut stages = vec![end];
        let mut edges = Vec::new();
        let mut cur = end;
        while let Some(e) = pred[cur.index()] {
            edges.push(e);
            cur = dag.edge(e).src;
            stages.push(cur);
        }
        stages.reverse();
        edges.reverse();
        Path {
            stages,
            edges,
            weight: best[end.index()],
        }
    }
}

/// Enumerate every maximal path (initial stage → final stage). Exponential
/// in the worst case; intended for tests and small motivating DAGs, not for
/// the scheduler hot path.
pub fn all_paths(dag: &JobDag) -> Vec<Path> {
    let mut out = Vec::new();
    for start in dag.initial_stages() {
        let mut stack = vec![(start, vec![start], Vec::new())];
        while let Some((s, stages, edges)) = stack.pop() {
            let mut is_final = true;
            for e in dag.out_edges(s) {
                is_final = false;
                let mut st = stages.clone();
                st.push(e.dst);
                let mut ed = edges.clone();
                ed.push(e.id);
                stack.push((e.dst, st, ed));
            }
            if is_final {
                out.push(Path {
                    stages,
                    edges,
                    weight: 0.0,
                });
            }
        }
    }
    out
}

/// Weight of an explicit path under `w`.
pub fn path_weight(path: &Path, w: &DagWeights) -> f64 {
    let nodes: f64 = path.stages.iter().map(|&s| w.node_weight(s)).sum();
    let edges: f64 = path.edges.iter().map(|&e| w.edge_weight(e)).sum();
    nodes + edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use crate::stage::StageKind;

    /// Fig. 6b-style DAG: two two-stage paths into a shared sink.
    fn two_paths() -> (JobDag, Vec<StageId>) {
        let mut g = JobDag::new("t");
        let a1 = g.add_stage("a1", StageKind::Map);
        let a2 = g.add_stage("a2", StageKind::Map);
        let b1 = g.add_stage("b1", StageKind::Map);
        let b2 = g.add_stage("b2", StageKind::Map);
        let sink = g.add_stage("sink", StageKind::Reduce);
        g.add_edge(a1, a2, EdgeKind::Shuffle, 0).unwrap(); // e0
        g.add_edge(b1, b2, EdgeKind::Shuffle, 0).unwrap(); // e1
        g.add_edge(a2, sink, EdgeKind::Shuffle, 0).unwrap(); // e2
        g.add_edge(b2, sink, EdgeKind::Shuffle, 0).unwrap(); // e3
        (g, vec![a1, a2, b1, b2, sink])
    }

    #[test]
    fn critical_path_picks_heavier_branch() {
        let (g, s) = two_paths();
        let mut w = DagWeights::zeros(&g);
        // Path via a: nodes 20+20, edges 100 (e0) + 50 (e2) -> 190 + sink
        // Path via b: nodes 10+20, edges 120 (e1) + 80 (e3) -> 230 + sink
        w.node[s[0].index()] = 20.0;
        w.node[s[1].index()] = 20.0;
        w.node[s[2].index()] = 10.0;
        w.node[s[3].index()] = 20.0;
        w.node[s[4].index()] = 5.0;
        w.edge[0] = 100.0;
        w.edge[1] = 120.0;
        w.edge[2] = 50.0;
        w.edge[3] = 80.0;
        let cp = critical_path(&g, &w);
        assert_eq!(cp.stages, vec![s[2], s[3], s[4]]);
        assert!((cp.weight - 235.0).abs() < 1e-9);
        assert_eq!(path_weight(&cp, &w), cp.weight);
    }

    #[test]
    fn critical_path_updates_when_edge_zeroed() {
        // Grouping the heaviest edge moves the critical path — the loop at
        // the heart of greedy grouping (Fig. 6b).
        let (g, s) = two_paths();
        let mut w = DagWeights::zeros(&g);
        w.edge[1] = 120.0;
        w.edge[0] = 100.0;
        let cp1 = critical_path(&g, &w);
        assert_eq!(cp1.stages[0], s[2]);
        w.edge[1] = 0.0; // group b1-b2
        let cp2 = critical_path(&g, &w);
        assert_eq!(cp2.stages[0], s[0]);
    }

    #[test]
    fn single_stage_path() {
        let mut g = JobDag::new("one");
        let a = g.add_stage("a", StageKind::Map);
        let mut w = DagWeights::zeros(&g);
        w.node[0] = 7.0;
        let cp = critical_path(&g, &w);
        assert_eq!(cp.stages, vec![a]);
        assert!(cp.edges.is_empty());
        assert_eq!(cp.weight, 7.0);
        assert_eq!(cp.len(), 1);
        assert!(!cp.is_empty());
    }

    #[test]
    fn all_paths_enumerates_both() {
        let (g, _) = two_paths();
        let ps = all_paths(&g);
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert_eq!(p.stages.len(), 3);
            assert_eq!(p.edges.len(), 2);
        }
    }

    #[test]
    fn cached_critical_path_matches_fresh() {
        let (g, s) = two_paths();
        let mut w = DagWeights::zeros(&g);
        w.node[s[0].index()] = 20.0;
        w.edge[0] = 100.0;
        w.edge[1] = 120.0;
        w.edge[3] = 80.0;
        let mut cache = CriticalPathCache::new(&g);
        // Repeated calls with mutating weights must match a fresh
        // computation every time (the greedy-grouping access pattern).
        for zeroed in [usize::MAX, 1, 3, 0, 2] {
            if zeroed != usize::MAX {
                w.edge[zeroed] = 0.0;
            }
            let cached = cache.critical_path(&g, &w);
            let fresh = critical_path(&g, &w);
            assert_eq!(cached.stages, fresh.stages);
            assert_eq!(cached.edges, fresh.edges);
            assert_eq!(cached.weight, fresh.weight);
        }
    }

    #[test]
    fn zero_weights_give_longest_hop_free_path() {
        let (g, _) = two_paths();
        let w = DagWeights::zeros(&g);
        let cp = critical_path(&g, &w);
        assert_eq!(cp.weight, 0.0);
        assert_eq!(cp.stages.len(), 3);
    }
}
