//! One function per table/figure of the paper's evaluation (§6).
//!
//! Every function is deterministic and self-contained; the `figures`
//! binary renders their rows, and `EXPERIMENTS.md` records the measured
//! values next to the paper's.

use crate::setup::{default_testbed, prepare, prepare_with_sf, testbed, PreparedQuery};
use ditto_cluster::{ResourceManager, SlotDistribution};
use ditto_core::baselines::{
    EvenSplitScheduler, FixedDopScheduler, NimbleDopScheduler, NimbleGroupScheduler,
    NimbleScheduler,
};
use ditto_core::{DittoScheduler, Objective, Scheduler};
use ditto_dag::StageId;
use ditto_exec::profile::probe_schedule;
use ditto_exec::{simulate, ExecConfig, GroundTruth};
use ditto_sql::queries::Query;
use ditto_storage::Medium;
use serde::Serialize;
use std::time::Instant;

/// A JCT measurement.
#[derive(Debug, Clone, Serialize)]
pub struct JctRow {
    /// Experiment setting (query name, slot usage, distribution, …).
    pub setting: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Simulated job completion time, seconds.
    pub jct_seconds: f64,
}

/// A cost measurement.
#[derive(Debug, Clone, Serialize)]
pub struct CostRow {
    /// Experiment setting.
    pub setting: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Absolute cost, GB·s.
    pub cost_gb_s: f64,
    /// Cost normalized to Ditto's (Ditto = 1.0), as the paper plots.
    pub normalized_cost: f64,
}

fn jct_pair(p: &PreparedQuery, rm: &ResourceManager, setting: &str) -> Vec<JctRow> {
    let schedulers: [&dyn Scheduler; 2] = [&DittoScheduler::new(), &NimbleScheduler::default()];
    schedulers
        .iter()
        .map(|s| JctRow {
            setting: setting.to_string(),
            scheduler: s.name().to_string(),
            jct_seconds: p.run(*s, rm, Objective::Jct).jct,
        })
        .collect()
}

fn cost_pair(p: &PreparedQuery, rm: &ResourceManager, setting: &str) -> Vec<CostRow> {
    let ditto = p.run(&DittoScheduler::new(), rm, Objective::Cost).total_cost();
    let nimble = p
        .run(&NimbleScheduler::default(), rm, Objective::Cost)
        .total_cost();
    vec![
        CostRow {
            setting: setting.to_string(),
            scheduler: "ditto".into(),
            cost_gb_s: ditto,
            normalized_cost: 1.0,
        },
        CostRow {
            setting: setting.to_string(),
            scheduler: "nimble".into(),
            cost_gb_s: nimble,
            normalized_cost: nimble / ditto,
        },
    ]
}

// ---------------------------------------------------------------------
// Motivation figures
// ---------------------------------------------------------------------

/// Fig. 1: JCT of the three-stage join DAG under even-split, data-size
/// -proportional (NIMBLE) and Ditto's DoP-ratio parallelism, 20 slots.
pub fn fig1() -> Vec<JctRow> {
    let dag = ditto_dag::generators::fig1_join();
    let gt = GroundTruth::new(ExecConfig {
        skew: 0.0,
        straggler_prob: 0.0,
        jitter: 0.0,
        ..Default::default()
    });
    let profile = ditto_exec::profile_job(&dag, &gt, &[2, 4, 8, 16, 20]);
    let (model, _) = profile.build_model(&dag);
    let rm = ResourceManager::from_free_slots(vec![20]);
    let schedulers: [&dyn Scheduler; 3] = [
        &EvenSplitScheduler,
        &NimbleScheduler::default(),
        &NimbleDopScheduler, // Ditto's DoP ratios without grouping
    ];
    let labels = ["even-split", "data-size (nimble)", "dop-ratio (ditto)"];
    schedulers
        .iter()
        .zip(labels)
        .map(|(s, label)| {
            let schedule = s.schedule(&ditto_core::SchedulingContext {
                dag: &dag,
                model: &model,
                resources: &rm,
                objective: Objective::Jct,
            });
            let (_, m) = simulate(&dag, &schedule, &gt);
            JctRow {
                setting: "fig1-join".into(),
                scheduler: label.into(),
                jct_seconds: m.jct,
            }
        })
        .collect()
}

/// One Fig. 2 configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Map-stage DoP.
    pub map_dop: u32,
    /// Whether map and reduce share a server (zero-copy shuffle).
    pub colocated: bool,
    /// Simulated JCT, seconds.
    pub jct_seconds: f64,
}

/// Fig. 2: a high-DoP map spread across servers (external shuffle) vs a
/// low-DoP map co-located with the reduce (shared memory). The low-DoP
/// co-located plan wins despite using fewer slots.
pub fn fig2() -> Vec<Fig2Row> {
    use ditto_core::{Schedule, TaskPlacement};
    let mut dag = ditto_dag::JobDag::new("fig2");
    let map = dag.add_stage("map", ditto_dag::StageKind::Map);
    let red = dag.add_stage("reduce", ditto_dag::StageKind::Reduce);
    {
        let s = dag.stage_mut(map);
        s.input_bytes = 6 << 30;
        s.output_bytes = 3 << 30;
    }
    dag.add_edge(map, red, ditto_dag::EdgeKind::Shuffle, 3 << 30).unwrap();
    let gt = GroundTruth::new(ExecConfig {
        skew: 0.0,
        straggler_prob: 0.0,
        jitter: 0.0,
        ..Default::default()
    });
    let make = |map_dop: u32, colocated: bool| -> Fig2Row {
        let placement = if colocated {
            vec![
                TaskPlacement::Single(ditto_cluster::ServerId(0)),
                TaskPlacement::Single(ditto_cluster::ServerId(0)),
            ]
        } else {
            vec![
                TaskPlacement::Spread(vec![
                    (ditto_cluster::ServerId(0), map_dop / 2),
                    (ditto_cluster::ServerId(1), map_dop - map_dop / 2),
                ]),
                TaskPlacement::Single(ditto_cluster::ServerId(0)),
            ]
        };
        let schedule = Schedule {
            scheduler: "manual".into(),
            dop: vec![map_dop, 1],
            groups: if colocated {
                vec![vec![map, red]]
            } else {
                vec![vec![map], vec![red]]
            },
            group_of: if colocated { vec![0, 0] } else { vec![0, 1] },
            colocated: vec![colocated],
            placement,
        };
        let (_, m) = simulate(&dag, &schedule, &gt);
        Fig2Row {
            map_dop,
            colocated,
            jct_seconds: m.jct,
        }
    };
    // (a) 6 maps across two servers, remote shuffle; (b) 3 maps co-located.
    vec![make(6, false), make(3, true)]
}

/// A worked DoP-ratio example (Figs. 4 and 5).
#[derive(Debug, Clone, Serialize)]
pub struct RatioRow {
    /// Which configuration.
    pub config: String,
    /// First stage's DoP.
    pub d1: f64,
    /// Second stage's DoP.
    pub d2: f64,
    /// Completion time in the paper's abstract time units.
    pub completion_time: f64,
}

/// Fig. 4: intra-path ratio, α = (60, 15), C = 15 — data-size split gives
/// 10 units; the √-ratio split gives 9.
pub fn fig4() -> Vec<RatioRow> {
    let t = |d1: f64, d2: f64| 60.0 / d1 + 15.0 / d2;
    vec![
        RatioRow {
            config: "data-size (4:1)".into(),
            d1: 12.0,
            d2: 3.0,
            completion_time: t(12.0, 3.0),
        },
        RatioRow {
            config: "sqrt-ratio (2:1)".into(),
            d1: 10.0,
            d2: 5.0,
            completion_time: t(10.0, 5.0),
        },
    ]
}

/// Fig. 5: inter-path ratio, α = (24, 12), 6 slots — balanced 4/2 beats
/// even 3/3.
pub fn fig5() -> Vec<RatioRow> {
    let t = |d1: f64, d2: f64| (24.0 / d1).max(12.0 / d2);
    vec![
        RatioRow {
            config: "even (3:3)".into(),
            d1: 3.0,
            d2: 3.0,
            completion_time: t(3.0, 3.0),
        },
        RatioRow {
            config: "balanced (2:1)".into(),
            d1: 4.0,
            d2: 2.0,
            completion_time: t(4.0, 2.0),
        },
    ]
}

// ---------------------------------------------------------------------
// §6.1 / §6.2 — overall performance
// ---------------------------------------------------------------------

/// Fig. 8a: JCT across the four queries, Zipf-0.9, S3 external storage.
pub fn fig8a() -> Vec<JctRow> {
    let rm = default_testbed();
    Query::all()
        .iter()
        .flat_map(|&q| {
            let p = prepare(q, Medium::S3);
            jct_pair(&p, &rm, q.name())
        })
        .collect()
}

/// Fig. 8b: JCT of Q95 at 100/75/50/25 % slot usage.
pub fn fig8b() -> Vec<JctRow> {
    let p = prepare(Query::Q95, Medium::S3);
    [1.0, 0.75, 0.5, 0.25]
        .iter()
        .flat_map(|&usage| {
            let rm = testbed(&SlotDistribution::Uniform { usage });
            jct_pair(&p, &rm, &format!("{}%", (usage * 100.0) as u32))
        })
        .collect()
}

/// Fig. 8c: JCT of Q95 under Norm-1.0 / Norm-0.8 / Zipf-0.9 / Zipf-0.99.
pub fn fig8c() -> Vec<JctRow> {
    let p = prepare(Query::Q95, Medium::S3);
    slot_distributions()
        .into_iter()
        .flat_map(|(name, dist)| {
            let rm = testbed(&dist);
            jct_pair(&p, &rm, name)
        })
        .collect()
}

/// Fig. 9a: normalized cost across the four queries (cost objective).
pub fn fig9a() -> Vec<CostRow> {
    let rm = default_testbed();
    Query::all()
        .iter()
        .flat_map(|&q| {
            let p = prepare(q, Medium::S3);
            cost_pair(&p, &rm, q.name())
        })
        .collect()
}

/// Fig. 9b: normalized cost of Q95 at 100–25 % slot usage.
pub fn fig9b() -> Vec<CostRow> {
    let p = prepare(Query::Q95, Medium::S3);
    [1.0, 0.75, 0.5, 0.25]
        .iter()
        .flat_map(|&usage| {
            let rm = testbed(&SlotDistribution::Uniform { usage });
            cost_pair(&p, &rm, &format!("{}%", (usage * 100.0) as u32))
        })
        .collect()
}

/// Fig. 9c: normalized cost of Q95 under the four slot distributions.
pub fn fig9c() -> Vec<CostRow> {
    let p = prepare(Query::Q95, Medium::S3);
    slot_distributions()
        .into_iter()
        .flat_map(|(name, dist)| {
            let rm = testbed(&dist);
            cost_pair(&p, &rm, name)
        })
        .collect()
}

fn slot_distributions() -> Vec<(&'static str, SlotDistribution)> {
    vec![
        ("Norm-1.0", SlotDistribution::Normal { sigma: 1.0 }),
        ("Norm-0.8", SlotDistribution::Normal { sigma: 0.8 }),
        ("Zipf-0.9", SlotDistribution::Zipf { theta: 0.9 }),
        ("Zipf-0.99", SlotDistribution::Zipf { theta: 0.99 }),
    ]
}

// ---------------------------------------------------------------------
// §6.3 — Redis
// ---------------------------------------------------------------------

/// Fig. 10: JCT and cost under Redis external storage (benchmark scaled
/// down to cache capacity, as in the paper: SF 100 instead of 1000).
pub fn fig10() -> (Vec<JctRow>, Vec<CostRow>) {
    let rm = default_testbed();
    let mut jct = Vec::new();
    let mut cost = Vec::new();
    for q in Query::all() {
        // A quarter of the default volume scale ≈ the paper's SF-100 run
        // (intermediates fit the 228 GB Redis capacity, and data volumes
        // stay large enough that transfer — not per-task setup — is the
        // dominant term, as in the paper).
        let p = prepare_with_sf(q, Medium::Redis, crate::setup::EXPERIMENT_SF, 10_000.0);
        jct.extend(jct_pair(&p, &rm, q.name()));
        cost.extend(cost_pair(&p, &rm, q.name()));
    }
    (jct, cost)
}

// ---------------------------------------------------------------------
// §6.4 — deep dive
// ---------------------------------------------------------------------

/// One Fig. 11 point: predicted vs actual stage time at a DoP.
#[derive(Debug, Clone, Serialize)]
pub struct ModelAccuracyRow {
    /// Query name.
    pub query: String,
    /// Stage name.
    pub stage: String,
    /// `io` or `compute` intensive.
    pub kind: String,
    /// Degree of parallelism.
    pub dop: u32,
    /// Ground-truth mean task time, seconds.
    pub actual_seconds: f64,
    /// Model-predicted time, seconds.
    pub predicted_seconds: f64,
    /// |predicted − actual| / actual.
    pub rel_error: f64,
}

/// Fig. 11: execution-time model accuracy. For each query, one
/// IO-intensive stage (largest I/O α) and one compute-intensive stage
/// (largest compute *fraction* among non-trivial stages, so it differs
/// from the IO pick) are replayed at DoPs 20–120; the measured mean task
/// time is compared against the fitted model's prediction — exactly the
/// paper's methodology ("we plot the average execution time of all tasks
/// in a stage as points, while the lines represent the predicted
/// execution time").
pub fn fig11() -> Vec<ModelAccuracyRow> {
    let mut rows = Vec::new();
    for q in Query::all() {
        let p = prepare(q, Medium::S3);
        let dag = &p.plan.dag;
        let none = p.model.no_colocation();
        let total_alpha = |s: StageId| p.model.stage_alpha(dag, s, &none);
        let io_alpha = |s: StageId| {
            total_alpha(s) - p.model.stage_steps(s).compute.alpha * p.model.scaling(s)
        };
        let max_total = dag
            .stages()
            .iter()
            .map(|s| total_alpha(s.id))
            .fold(0.0, f64::max);
        let io_stage = dag
            .stages()
            .iter()
            .max_by(|a, b| io_alpha(a.id).total_cmp(&io_alpha(b.id)))
            .unwrap()
            .id;
        // Compute-intensive: highest compute share among stages doing at
        // least 5% of the heaviest stage's work, excluding the IO pick.
        let comp_stage = dag
            .stages()
            .iter()
            .filter(|s| s.id != io_stage && total_alpha(s.id) > 0.05 * max_total)
            .max_by(|a, b| {
                let frac = |s: StageId| {
                    p.model.stage_steps(s).compute.alpha * p.model.scaling(s)
                        / total_alpha(s).max(1e-12)
                };
                frac(a.id).total_cmp(&frac(b.id))
            })
            .unwrap()
            .id;
        for (kind, s) in [("io", io_stage), ("compute", comp_stage)] {
            for dop in [20u32, 40, 60, 80, 100, 120] {
                let sched = probe_schedule(dag, dop);
                let tasks = p.gt.stage_tasks(dag, &sched, s);
                let actual = tasks
                    .iter()
                    .map(|t| t.read + t.compute + t.write)
                    .sum::<f64>()
                    / tasks.len() as f64;
                let predicted = p.model.mean_exec_time(dag, s, dop as f64, &none);
                rows.push(ModelAccuracyRow {
                    query: q.name().into(),
                    stage: dag.stage(s).name.clone(),
                    kind: kind.into(),
                    dop,
                    actual_seconds: actual,
                    predicted_seconds: predicted,
                    rel_error: (predicted - actual).abs() / actual.max(1e-9),
                });
            }
        }
    }
    rows
}

/// Fig. 12: the ablation — NIMBLE / NIMBLE+Group / NIMBLE+DoP / Ditto on
/// all four queries (JCT rows and cost rows).
pub fn fig12() -> (Vec<JctRow>, Vec<CostRow>) {
    let rm = default_testbed();
    let mut jct = Vec::new();
    let mut cost = Vec::new();
    for q in Query::all() {
        let p = prepare(q, Medium::S3);
        let schedulers: [&dyn Scheduler; 4] = [
            &NimbleScheduler::default(),
            &NimbleGroupScheduler,
            &NimbleDopScheduler,
            &DittoScheduler::new(),
        ];
        let ditto_cost = p.run(&DittoScheduler::new(), &rm, Objective::Cost).total_cost();
        for s in schedulers {
            jct.push(JctRow {
                setting: q.name().into(),
                scheduler: s.name().into(),
                jct_seconds: p.run(s, &rm, Objective::Jct).jct,
            });
            let c = p.run(s, &rm, Objective::Cost).total_cost();
            cost.push(CostRow {
                setting: q.name().into(),
                scheduler: s.name().into(),
                cost_gb_s: c,
                normalized_cost: c / ditto_cost,
            });
        }
    }
    (jct, cost)
}

/// One Fig. 14 bar: a stage's mean step durations under fixed DoP.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Stage index (1-based, as in Fig. 13/14).
    pub stage: u32,
    /// Stage name.
    pub name: String,
    /// Tasks in the stage.
    pub tasks: u32,
    /// Stage start, seconds.
    pub start: f64,
    /// Stage end, seconds.
    pub end: f64,
    /// Mean setup seconds.
    pub setup: f64,
    /// Mean read seconds.
    pub read: f64,
    /// Mean compute seconds.
    pub compute: f64,
    /// Mean write seconds.
    pub write: f64,
}

/// Fig. 14: per-stage time breakdown of Q95 with every stage at DoP 40.
pub fn fig14() -> Vec<BreakdownRow> {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = testbed(&SlotDistribution::Uniform { usage: 1.0 });
    let schedule = p.schedule(&FixedDopScheduler { dop: 40 }, &rm, Objective::Jct);
    let (trace, _) = simulate(&p.plan.dag, &schedule, &p.gt);
    trace
        .stage_breakdowns()
        .into_iter()
        .map(|b| BreakdownRow {
            stage: b.stage + 1,
            name: p.plan.dag.stage(StageId(b.stage)).name.clone(),
            tasks: b.tasks,
            start: b.start,
            end: b.end,
            setup: b.setup,
            read: b.read,
            compute: b.compute,
            write: b.write,
        })
        .collect()
}

/// Fig. 15 output: fixed vs elastic execution of Q95 under Zipf-0.9.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Output {
    /// JCT with fixed parallelism, seconds.
    pub fixed_jct: f64,
    /// JCT with Ditto's elastic parallelism, seconds.
    pub elastic_jct: f64,
    /// Per-stage DoP under the fixed schedule.
    pub fixed_dop: Vec<u32>,
    /// Per-stage DoP under Ditto.
    pub elastic_dop: Vec<u32>,
    /// ASCII Gantt of the fixed run.
    pub fixed_gantt: String,
    /// ASCII Gantt of the elastic run.
    pub elastic_gantt: String,
}

/// Fig. 15: execution breakdown, fixed parallelism vs Ditto's elastic
/// parallelism (Q95, Zipf-0.9).
pub fn fig15() -> Fig15Output {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = default_testbed();
    // The paper fixes DoP at 24 per stage under Zipf-0.9 (≈ C/#stages).
    let per_stage = (rm.total_free() / p.plan.dag.num_stages() as u32).max(1);
    let fixed = p.schedule(&FixedDopScheduler { dop: per_stage }, &rm, Objective::Jct);
    let elastic = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
    let (ft, fm) = simulate(&p.plan.dag, &fixed, &p.gt);
    let (et, em) = simulate(&p.plan.dag, &elastic, &p.gt);
    Fig15Output {
        fixed_jct: fm.jct,
        elastic_jct: em.jct,
        fixed_dop: fixed.dop.clone(),
        elastic_dop: elastic.dop.clone(),
        fixed_gantt: ft.ascii_gantt(60),
        elastic_gantt: et.ascii_gantt(60),
    }
}

// ---------------------------------------------------------------------
// §6.5 — overhead tables
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Extensions beyond the paper
// ---------------------------------------------------------------------

/// One multi-job policy measurement (the paper's §4.5 future work).
#[derive(Debug, Clone, Serialize)]
pub struct MultiJobRow {
    /// Allocation policy.
    pub policy: String,
    /// Mean response time (queueing + execution), seconds.
    pub mean_response: f64,
    /// Completion of the last job, seconds.
    pub makespan: f64,
    /// Total cost over all jobs, GB·s.
    pub total_cost: f64,
}

/// Multi-job queue experiment: eight jobs (two waves of the four
/// queries), whole-cluster vs static partitions, Ditto inside each job.
pub fn multi_job() -> Vec<MultiJobRow> {
    use ditto_exec::multi::{queue_stats, simulate_queue, AllocationPolicy, QueuedJob};
    let gt = GroundTruth::new(ExecConfig::default());
    let mut jobs = Vec::new();
    for wave in 0..2 {
        for (i, q) in Query::all().iter().enumerate() {
            let p = prepare(*q, Medium::S3);
            jobs.push(QueuedJob {
                name: format!("{}-{}", q.name(), wave),
                dag: p.plan.dag.clone(),
                model: p.model.clone(),
                arrival: (wave * 4 + i) as f64 * 10.0,
            });
        }
    }
    let free = [96u32; 8];
    [
        ("whole-cluster", AllocationPolicy::WholeCluster),
        ("2-partitions", AllocationPolicy::StaticPartitions(2)),
        ("4-partitions", AllocationPolicy::StaticPartitions(4)),
    ]
    .iter()
    .map(|(label, policy)| {
        let outcomes = simulate_queue(
            &free,
            &jobs,
            &DittoScheduler::new(),
            Objective::Jct,
            *policy,
            &gt,
        );
        let s = queue_stats(&outcomes);
        MultiJobRow {
            policy: label.to_string(),
            mean_response: s.mean_response,
            makespan: s.makespan,
            total_cost: s.total_cost,
        }
    })
    .collect()
}

/// One deadline-sweep measurement (extension beyond the paper).
#[derive(Debug, Clone, Serialize)]
pub struct DeadlineRow {
    /// The requested deadline, seconds.
    pub deadline: f64,
    /// `met`, `unreachable` (per the conservative prediction).
    pub outcome: String,
    /// Simulated JCT, seconds (0 when unreachable).
    pub simulated_jct: f64,
    /// Simulated total cost, GB·s (0 when unreachable).
    pub cost: f64,
}

/// Deadline-constrained sweep on Q95: cost sheds as deadlines loosen.
pub fn deadline_sweep() -> Vec<DeadlineRow> {
    use ditto_core::deadline::schedule_with_deadline;
    use ditto_core::JointOptions;
    let p = prepare(Query::Q95, Medium::S3);
    let rm = default_testbed();
    let fast = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
    let frac: Vec<f64> = fast.dop.iter().map(|&d| d as f64).collect();
    let floor = ditto_core::predicted_jct(&p.plan.dag, &p.model, &frac, &fast.colocated);
    (0..6)
        .map(|i| {
            let deadline = floor * (0.95 + 0.15 * i as f64);
            match schedule_with_deadline(&p.plan.dag, &p.model, &rm, deadline, &JointOptions::default())
            {
                Some(schedule) => {
                    let (_, m) = simulate(&p.plan.dag, &schedule, &p.gt);
                    DeadlineRow {
                        deadline,
                        outcome: "met".into(),
                        simulated_jct: m.jct,
                        cost: m.total_cost(),
                    }
                }
                None => DeadlineRow {
                    deadline,
                    outcome: "unreachable".into(),
                    simulated_jct: 0.0,
                    cost: 0.0,
                },
            }
        })
        .collect()
}

/// One Table 1 cell: scheduling time for a query at a slot usage.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Query name.
    pub query: String,
    /// Slot usage percentage.
    pub slot_usage_pct: u32,
    /// Median scheduling time, microseconds.
    pub scheduling_micros: f64,
}

/// Table 1: Ditto's scheduling time per query and slot usage (median of
/// `iters` runs).
pub fn table1(iters: usize) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for q in Query::all() {
        let p = prepare(q, Medium::S3);
        for usage in [0.25, 0.5, 0.75, 1.0] {
            let rm = testbed(&SlotDistribution::Uniform { usage });
            let mut samples: Vec<f64> = (0..iters.max(1))
                .map(|_| {
                    let t0 = Instant::now();
                    let s = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
                    let dt = t0.elapsed().as_secs_f64() * 1e6;
                    std::hint::black_box(s);
                    dt
                })
                .collect();
            samples.sort_by(f64::total_cmp);
            rows.push(OverheadRow {
                query: q.name().into(),
                slot_usage_pct: (usage * 100.0) as u32,
                scheduling_micros: samples[samples.len() / 2],
            });
        }
    }
    rows
}

/// One Table 2 row: model building time for a query.
#[derive(Debug, Clone, Serialize)]
pub struct BuildTimeRow {
    /// Query name.
    pub query: String,
    /// Least-squares model building time, milliseconds.
    pub build_millis: f64,
}

/// Table 2: execution-time-model building time per query (profiles at
/// five DoPs, least-squares fit per step).
pub fn table2() -> Vec<BuildTimeRow> {
    Query::all()
        .iter()
        .map(|&q| {
            let p = prepare(q, Medium::S3);
            BuildTimeRow {
                query: q.name().into(),
                build_millis: p.model_build_time.as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// One fault-sweep measurement: a schedule simulated under injected
/// faults, relative to its own fault-free run.
#[derive(Debug, Clone, Serialize)]
pub struct FaultSweepRow {
    /// Scheduler ("ditto" / "nimble").
    pub scheduler: String,
    /// Recovery policy ("retry" / "retry+spec").
    pub policy: String,
    /// Per-attempt crash probability == per-task straggler probability.
    pub fault_rate: f64,
    /// Simulated JCT under faults, seconds.
    pub jct_seconds: f64,
    /// JCT relative to the fault-free run of the same schedule (≥ 1).
    pub jct_degradation: f64,
    /// Total cost relative to the fault-free run.
    pub cost_overhead: f64,
    /// Failed / superseded attempts across the job.
    pub extra_attempts: u32,
    /// Billed-but-discarded work, GB·s.
    pub wasted_gb_s: f64,
}

/// Per-task crash/straggler probabilities swept by [`fault_sweep`].
pub const FAULT_SWEEP_RATES: [f64; 4] = [0.02, 0.05, 0.1, 0.2];

/// Robustness sweep (extension beyond the paper): Q95 on the §6 testbed
/// under seeded random crashes and 4× stragglers at increasing fault
/// rates, Ditto vs NIMBLE schedules, bounded-retry vs retry+speculation
/// recovery. Deterministic: one seed names one fault history per rate.
pub fn fault_sweep() -> Vec<FaultSweepRow> {
    use ditto_exec::{try_simulate_with_faults, FaultPlan, FaultRates, RecoveryPolicy};
    let p = prepare(Query::Q95, Medium::S3);
    let rm = default_testbed();
    let ditto = DittoScheduler::new();
    let nimble = NimbleScheduler::default();
    let schedulers: [(&dyn Scheduler, &str); 2] = [(&ditto, "ditto"), (&nimble, "nimble")];
    let policies = [
        (
            "retry",
            RecoveryPolicy {
                max_retries: 16,
                ..RecoveryPolicy::retry_only()
            },
        ),
        (
            "retry+spec",
            RecoveryPolicy {
                max_retries: 16,
                ..RecoveryPolicy::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (s, name) in schedulers {
        let schedule = p.schedule(s, &rm, Objective::Jct);
        let (_, base) = simulate(&p.plan.dag, &schedule, &p.gt);
        for rate in FAULT_SWEEP_RATES {
            for (policy_name, policy) in &policies {
                let plan = FaultPlan::from_rates(FaultRates {
                    crash_prob: rate,
                    straggler_prob: rate,
                    straggler_slowdown: 4.0,
                    ..FaultRates::none(17)
                });
                let (_, m) =
                    try_simulate_with_faults(&p.plan.dag, &schedule, &p.gt, &plan, policy, None)
                        .expect("bounded fault rates recover within 16 retries");
                rows.push(FaultSweepRow {
                    scheduler: name.into(),
                    policy: (*policy_name).into(),
                    fault_rate: rate,
                    jct_seconds: m.jct,
                    jct_degradation: m.jct / base.jct,
                    cost_overhead: m.total_cost() / base.total_cost(),
                    extra_attempts: m.faults.extra_attempts,
                    wasted_gb_s: m.faults.wasted_gb_s,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_elastic_beats_even_split() {
        let rows = fig1();
        assert_eq!(rows.len(), 3);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.scheduler == name)
                .unwrap()
                .jct_seconds
        };
        // Ditto's DoP ratios beat the naive even split (Fig. 1b vs 1d);
        // data-size-proportional sits in between or equal.
        assert!(get("dop-ratio (ditto)") < get("even-split"));
        assert!(get("dop-ratio (ditto)") <= get("data-size (nimble)") + 1e-9);
    }

    #[test]
    fn fig2_colocation_beats_high_dop() {
        let rows = fig2();
        assert_eq!(rows.len(), 2);
        let spread = rows.iter().find(|r| !r.colocated).unwrap();
        let colo = rows.iter().find(|r| r.colocated).unwrap();
        assert!(
            colo.jct_seconds < spread.jct_seconds,
            "low-DoP co-located ({}) must beat high-DoP remote ({})",
            colo.jct_seconds,
            spread.jct_seconds
        );
        assert!(colo.map_dop < spread.map_dop);
    }

    #[test]
    fn fig4_fig5_match_paper_numbers() {
        let f4 = fig4();
        assert!((f4[0].completion_time - 10.0).abs() < 1e-9);
        assert!((f4[1].completion_time - 9.0).abs() < 1e-9);
        let f5 = fig5();
        assert!((f5[0].completion_time - 8.0).abs() < 1e-9);
        assert!((f5[1].completion_time - 6.0).abs() < 1e-9);
    }

    #[test]
    fn fig8a_ditto_wins_every_query() {
        let rows = fig8a();
        assert_eq!(rows.len(), 8);
        for q in Query::all() {
            let d = rows
                .iter()
                .find(|r| r.setting == q.name() && r.scheduler == "ditto")
                .unwrap();
            let n = rows
                .iter()
                .find(|r| r.setting == q.name() && r.scheduler == "nimble")
                .unwrap();
            let speedup = n.jct_seconds / d.jct_seconds;
            assert!(
                speedup > 1.0,
                "{}: ditto {} vs nimble {}",
                q.name(),
                d.jct_seconds,
                n.jct_seconds
            );
            assert!(speedup < 5.0, "{}: speedup {speedup} implausibly large", q.name());
        }
    }

    #[test]
    fn table2_build_times_small() {
        for row in table2() {
            assert!(
                row.build_millis < 300.0,
                "{}: {} ms exceeds the paper's 0.3 s bound",
                row.query,
                row.build_millis
            );
        }
    }

    #[test]
    fn fault_sweep_covers_rates_and_degrades_gracefully() {
        let rows = fault_sweep();
        let rates: std::collections::HashSet<u64> =
            rows.iter().map(|r| r.fault_rate.to_bits()).collect();
        assert!(rates.len() >= 3, "sweep must cover at least 3 failure rates");
        for sys in ["ditto", "nimble"] {
            assert!(rows.iter().any(|r| r.scheduler == sys), "missing {sys}");
        }
        for r in &rows {
            assert!(
                r.jct_degradation >= 1.0 - 1e-9,
                "faults cannot speed a job up: {r:?}"
            );
            // Storage residency windows can wiggle slightly; compute-side
            // overhead dominates.
            assert!(r.cost_overhead >= 0.99, "cost dropped under faults: {r:?}");
        }
        // The highest rate must actually bite…
        assert!(rows
            .iter()
            .filter(|r| r.fault_rate >= 0.2)
            .all(|r| r.extra_attempts > 0 && r.wasted_gb_s > 0.0));
        // …and speculation can only help (per-task end never increases).
        for sys in ["ditto", "nimble"] {
            let jct = |policy: &str| {
                rows.iter()
                    .find(|r| r.scheduler == sys && r.policy == policy && r.fault_rate >= 0.2)
                    .unwrap()
                    .jct_seconds
            };
            assert!(
                jct("retry+spec") <= jct("retry") + 1e-9,
                "{sys}: speculation must not hurt"
            );
        }
    }

    #[test]
    fn table1_sub_millisecond() {
        for row in table1(3) {
            assert!(
                row.scheduling_micros < 50_000.0,
                "{} @ {}%: {} µs is far from the paper's sub-ms claim",
                row.query,
                row.slot_usage_pct,
                row.scheduling_micros
            );
        }
    }
}
