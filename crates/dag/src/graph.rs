//! The job DAG: stages, data-dependency edges, and structural queries.

use crate::error::DagError;
use crate::stage::{Stage, StageId, StageKind};
use std::collections::HashSet;
use std::fmt;

/// Identifier of an edge within a [`JobDag`]; dense index in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Communication pattern carried by a data dependency (§4.5, Fig. 7 and
/// Fig. 13 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeKind {
    /// All-to-all repartitioning: every upstream task sends a partition to
    /// every downstream task. Co-location requires the *whole* stage group
    /// on one server.
    #[default]
    Shuffle,
    /// One-to-one (or many-to-one within aligned partitions): upstream task
    /// i feeds only downstream task ⌈i·d_down/d_up⌉. Stage groups connected
    /// only by gather edges can be decomposed into fine-grained task groups
    /// (§4.5), which makes placement far easier.
    Gather,
    /// Every downstream task receives a full copy of all upstream output
    /// (the paper's all-gather, used by broadcast joins in Q95).
    AllGather,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::Shuffle => "shuffle",
            EdgeKind::Gather => "gather",
            EdgeKind::AllGather => "all-gather",
        };
        f.write_str(s)
    }
}

/// A directed data dependency: `src` produces intermediate data consumed by
/// `dst`. `bytes` is the estimated shuffle volume along this edge, used to
/// weight edges in greedy grouping and to size simulated transfers.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Dense identifier within the owning DAG.
    pub id: EdgeId,
    /// Producing (upstream) stage.
    pub src: StageId,
    /// Consuming (downstream) stage.
    pub dst: StageId,
    /// Communication pattern.
    pub kind: EdgeKind,
    /// Estimated intermediate data volume in bytes.
    pub bytes: u64,
    /// NIMBLE pipelining annotation (paper §4.5): the downstream read
    /// overlaps the upstream write, so consumers may start streaming while
    /// the producer is still emitting. Affects the time model (the read
    /// step leaves the consumer's non-overlapped time) and the simulator
    /// (the consumer starts at the producer's write *start*, finishing no
    /// earlier than the producer).
    pub pipelined: bool,
}

/// A directed acyclic graph of stages.
///
/// Invariants (enforced by [`JobDag::validate`], which every constructor in
/// this crate runs):
/// * at least one stage;
/// * no self-loops, no duplicate `(src, dst)` pairs, no cycles;
/// * stage names unique.
///
/// Terminology follows the paper: *initial stages* have no upstream
/// dependencies (the tree's leaves); the *final stage(s)* have no downstream
/// consumers (the root, depth 0). [`JobDag::depths`] measures the longest
/// distance to a final stage, which is the layer index the bottom-up DoP
/// algorithm iterates over.
#[derive(Debug, Clone)]
pub struct JobDag {
    name: String,
    stages: Vec<Stage>,
    edges: Vec<Edge>,
    /// children[s] = outgoing edge ids of stage s.
    children: Vec<Vec<EdgeId>>,
    /// parents[s] = incoming edge ids of stage s.
    parents: Vec<Vec<EdgeId>>,
}

impl JobDag {
    /// Create an empty DAG with the given job name. Prefer
    /// [`crate::DagBuilder`] for ergonomic construction.
    pub fn new(name: impl Into<String>) -> Self {
        JobDag {
            name: name.into(),
            stages: Vec::new(),
            edges: Vec::new(),
            children: Vec::new(),
            parents: Vec::new(),
        }
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a stage; returns its id. Name uniqueness is checked at
    /// [`validate`](Self::validate) time.
    pub fn add_stage(&mut self, name: impl Into<String>, kind: StageKind) -> StageId {
        let id = StageId(self.stages.len() as u32);
        self.stages.push(Stage::new(id, name, kind));
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    /// Add a data dependency `src -> dst`. Errors on unknown stages,
    /// self-loops and duplicates; cycle detection happens in
    /// [`validate`](Self::validate).
    pub fn add_edge(
        &mut self,
        src: StageId,
        dst: StageId,
        kind: EdgeKind,
        bytes: u64,
    ) -> Result<EdgeId, DagError> {
        if src.index() >= self.stages.len() {
            return Err(DagError::UnknownStage(src));
        }
        if dst.index() >= self.stages.len() {
            return Err(DagError::UnknownStage(dst));
        }
        if src == dst {
            return Err(DagError::SelfLoop(src));
        }
        if self
            .children[src.index()]
            .iter()
            .any(|&e| self.edges[e.index()].dst == dst)
        {
            return Err(DagError::DuplicateEdge(src, dst));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            id,
            src,
            dst,
            kind,
            bytes,
            pipelined: false,
        });
        self.children[src.index()].push(id);
        self.parents[dst.index()].push(id);
        Ok(id)
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All stages, indexed by `StageId::index()`.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// All edges, indexed by `EdgeId::index()`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The stage with the given id. Panics on out-of-range ids (ids are only
    /// minted by this DAG, so that indicates a cross-DAG mixup).
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.index()]
    }

    /// Mutable access to a stage (to set I/O volume estimates).
    pub fn stage_mut(&mut self, id: StageId) -> &mut Stage {
        &mut self.stages[id.index()]
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Mutable access to an edge.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id.index()]
    }

    /// Look up the edge `src -> dst`, if present.
    pub fn find_edge(&self, src: StageId, dst: StageId) -> Option<&Edge> {
        self.children[src.index()]
            .iter()
            .map(|&e| &self.edges[e.index()])
            .find(|e| e.dst == dst)
    }

    /// Outgoing edges of `s`.
    pub fn out_edges(&self, s: StageId) -> impl Iterator<Item = &Edge> + '_ {
        self.children[s.index()].iter().map(|&e| &self.edges[e.index()])
    }

    /// Incoming edges of `s`.
    pub fn in_edges(&self, s: StageId) -> impl Iterator<Item = &Edge> + '_ {
        self.parents[s.index()].iter().map(|&e| &self.edges[e.index()])
    }

    /// All edges touching `s`: incoming first, then outgoing. A self-loop
    /// cannot exist (DAG), so each edge appears at most once.
    pub fn incident_edges(&self, s: StageId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_edges(s).chain(self.out_edges(s))
    }

    /// Downstream (child) stages of `s`.
    pub fn children_of(&self, s: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.out_edges(s).map(|e| e.dst)
    }

    /// Upstream (parent) stages of `s`.
    pub fn parents_of(&self, s: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.in_edges(s).map(|e| e.src)
    }

    /// In-degree of `s` (number of upstream dependencies).
    pub fn in_degree(&self, s: StageId) -> usize {
        self.parents[s.index()].len()
    }

    /// Out-degree of `s` (number of downstream consumers).
    pub fn out_degree(&self, s: StageId) -> usize {
        self.children[s.index()].len()
    }

    /// Initial stages: no upstream dependencies (the paper's leaves).
    pub fn initial_stages(&self) -> Vec<StageId> {
        self.stages
            .iter()
            .filter(|s| self.in_degree(s.id) == 0)
            .map(|s| s.id)
            .collect()
    }

    /// Final stages: no downstream consumers (the paper's root, depth 0).
    pub fn final_stages(&self) -> Vec<StageId> {
        self.stages
            .iter()
            .filter(|s| self.out_degree(s.id) == 0)
            .map(|s| s.id)
            .collect()
    }

    /// Depth of every stage: the length (in edges) of the longest directed
    /// path from the stage to any final stage. Final stages have depth 0;
    /// upstream stages have larger depth. This matches the paper's layering
    /// in Algorithm 1 (`BOTTOM_UP_DOP` walks from `max_depth` down to 1).
    ///
    /// Returns `depths[StageId::index()]`.
    pub fn depths(&self) -> Vec<usize> {
        let order = self.topo_order().expect("depths() requires an acyclic DAG");
        let mut depth = vec![0usize; self.stages.len()];
        // Walk in reverse topological order so children are finalized first.
        for &s in order.iter().rev() {
            let d = self
                .children_of(s)
                .map(|c| depth[c.index()] + 1)
                .max()
                .unwrap_or(0);
            depth[s.index()] = d;
        }
        depth
    }

    /// Maximum stage depth (0 for a single-stage job).
    pub fn max_depth(&self) -> usize {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// `true` if every stage has at most one downstream consumer, i.e. the
    /// DAG is a forest rooted at the final stages (the "tree-like DAGs" the
    /// paper analyses first). Note the paper's trees point leaf→root, so the
    /// tree condition is on *out*-degree.
    pub fn is_tree_like(&self) -> bool {
        self.stages.iter().all(|s| self.out_degree(s.id) <= 1)
    }

    /// `true` if the DAG is a single chain (every stage ≤1 parent and ≤1
    /// child, single initial and final stage).
    pub fn is_single_path(&self) -> bool {
        self.stages
            .iter()
            .all(|s| self.out_degree(s.id) <= 1 && self.in_degree(s.id) <= 1)
            && self.initial_stages().len() == 1
            && self.final_stages().len() == 1
    }

    /// Full structural validation; see the type-level docs for the invariant
    /// list. Cheap enough to run after any construction.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.stages.is_empty() {
            return Err(DagError::Empty);
        }
        let mut names = HashSet::new();
        for s in &self.stages {
            if !names.insert(s.name.as_str()) {
                return Err(DagError::DuplicateName(s.name.clone()));
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order (Kahn's algorithm); `Err(Cycle)` when cyclic.
    /// Deterministic: among ready stages the smallest id goes first.
    pub fn topo_order(&self) -> Result<Vec<StageId>, DagError> {
        let n = self.stages.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.parents[i].len()).collect();
        // BinaryHeap would work; a sorted ready list keeps determinism simple.
        let mut ready: Vec<StageId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| StageId(i as u32))
            .collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // pop from the back = smallest
        let mut order = Vec::with_capacity(n);
        while let Some(s) = ready.pop() {
            order.push(s);
            for &e in &self.children[s.index()] {
                let c = self.edges[e.index()].dst;
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    // Insert keeping descending order so pop() yields min.
                    let pos = ready
                        .binary_search_by(|x| c.cmp(x))
                        .unwrap_or_else(|p| p);
                    ready.insert(pos, c);
                }
            }
        }
        if order.len() != n {
            let on_cycle = (0..n).find(|&i| indeg[i] > 0).unwrap();
            return Err(DagError::Cycle(StageId(on_cycle as u32)));
        }
        Ok(order)
    }

    /// Mark an edge as pipelined (§4.5): the downstream read overlaps the
    /// upstream write.
    pub fn set_pipelined(&mut self, e: EdgeId, pipelined: bool) {
        self.edges[e.index()].pipelined = pipelined;
    }

    /// Total intermediate data volume (sum of edge byte estimates).
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Render a compact one-line-per-stage description, useful in examples
    /// and trace output.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "job {:?}: {} stages, {} edges", self.name, self.num_stages(), self.num_edges());
        for s in &self.stages {
            let ins: Vec<String> = self.parents_of(s.id).map(|p| self.stage(p).name.clone()).collect();
            let _ = writeln!(
                out,
                "  {} [{}] <- [{}] in={}B out={}B",
                s.name,
                s.kind,
                ins.join(", "),
                s.input_bytes,
                s.output_bytes
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> JobDag {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = JobDag::new("diamond");
        let a = g.add_stage("a", StageKind::Map);
        let b = g.add_stage("b", StageKind::Map);
        let c = g.add_stage("c", StageKind::Map);
        let d = g.add_stage("d", StageKind::Join);
        g.add_edge(a, b, EdgeKind::Shuffle, 10).unwrap();
        g.add_edge(a, c, EdgeKind::Shuffle, 20).unwrap();
        g.add_edge(b, d, EdgeKind::Shuffle, 30).unwrap();
        g.add_edge(c, d, EdgeKind::Shuffle, 40).unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.num_stages(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.validate().is_ok());
        assert_eq!(g.initial_stages(), vec![StageId(0)]);
        assert_eq!(g.final_stages(), vec![StageId(3)]);
        assert_eq!(g.in_degree(StageId(3)), 2);
        assert_eq!(g.out_degree(StageId(0)), 2);
        assert_eq!(g.total_shuffle_bytes(), 100);
        assert!(!g.is_tree_like()); // a has two children
        assert!(!g.is_single_path());
    }

    #[test]
    fn find_edge_works() {
        let g = diamond();
        let e = g.find_edge(StageId(0), StageId(2)).unwrap();
        assert_eq!(e.bytes, 20);
        assert!(g.find_edge(StageId(1), StageId(2)).is_none());
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut g = JobDag::new("t");
        let a = g.add_stage("a", StageKind::Map);
        let b = g.add_stage("b", StageKind::Map);
        assert_eq!(g.add_edge(a, a, EdgeKind::Shuffle, 0), Err(DagError::SelfLoop(a)));
        g.add_edge(a, b, EdgeKind::Shuffle, 0).unwrap();
        assert_eq!(
            g.add_edge(a, b, EdgeKind::Gather, 0),
            Err(DagError::DuplicateEdge(a, b))
        );
        assert_eq!(
            g.add_edge(a, StageId(9), EdgeKind::Shuffle, 0),
            Err(DagError::UnknownStage(StageId(9)))
        );
    }

    #[test]
    fn detects_cycle() {
        let mut g = JobDag::new("cyc");
        let a = g.add_stage("a", StageKind::Map);
        let b = g.add_stage("b", StageKind::Map);
        let c = g.add_stage("c", StageKind::Map);
        g.add_edge(a, b, EdgeKind::Shuffle, 0).unwrap();
        g.add_edge(b, c, EdgeKind::Shuffle, 0).unwrap();
        g.add_edge(c, a, EdgeKind::Shuffle, 0).unwrap();
        assert!(matches!(g.validate(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn detects_duplicate_names() {
        let mut g = JobDag::new("dup");
        g.add_stage("x", StageKind::Map);
        g.add_stage("x", StageKind::Map);
        assert_eq!(g.validate(), Err(DagError::DuplicateName("x".into())));
    }

    #[test]
    fn empty_dag_invalid() {
        let g = JobDag::new("e");
        assert_eq!(g.validate(), Err(DagError::Empty));
    }

    #[test]
    fn topo_order_is_deterministic_and_valid() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        assert_eq!(order, vec![StageId(0), StageId(1), StageId(2), StageId(3)]);
        // Every edge goes forward in the order.
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_stages()];
            for (i, s) in order.iter().enumerate() {
                p[s.index()] = i;
            }
            p
        };
        for e in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn depths_match_paper_convention() {
        let g = diamond();
        let d = g.depths();
        // d is the final stage: depth 0; b,c feed d: depth 1; a: depth 2.
        assert_eq!(d, vec![2, 1, 1, 0]);
        assert_eq!(g.max_depth(), 2);
    }

    #[test]
    fn chain_is_single_path_and_tree_like() {
        let mut g = JobDag::new("chain");
        let a = g.add_stage("a", StageKind::Map);
        let b = g.add_stage("b", StageKind::Reduce);
        g.add_edge(a, b, EdgeKind::Shuffle, 1).unwrap();
        assert!(g.is_single_path());
        assert!(g.is_tree_like());
        assert_eq!(g.depths(), vec![1, 0]);
    }

    #[test]
    fn describe_contains_stage_names() {
        let g = diamond();
        let s = g.describe();
        assert!(s.contains("diamond"));
        assert!(s.contains("join"));
        assert!(s.contains("d ["));
    }
}
