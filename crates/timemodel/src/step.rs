//! A single modeled execution step: `t(d) = α/d + β`.

use std::fmt;

/// The class of work a step performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StepKind {
    /// Reading input (from external storage or an upstream stage).
    Read,
    /// CPU work; unaffected by placement.
    Compute,
    /// Writing output (to external storage or a downstream stage).
    Write,
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StepKind::Read => "read",
            StepKind::Compute => "compute",
            StepKind::Write => "write",
        })
    }
}

/// One step of a stage with fitted parameters: `t(d) = α/d + β`.
///
/// `α` (seconds·tasks) is the parallelizable work: the time the step takes
/// with a single task. `β` (seconds) is the inherent overhead that no
/// parallelism removes (setup, request latency, stragglers' floor).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Step {
    /// The step class (read / compute / write).
    pub kind: StepKind,
    /// Parallelizable time, seconds·tasks. Non-negative.
    pub alpha: f64,
    /// Inherent time, seconds. Non-negative.
    pub beta: f64,
}

impl Step {
    /// Construct a step; clamps tiny negative inputs (fitting noise) to 0
    /// and panics on substantially negative parameters.
    pub fn new(kind: StepKind, alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > -1e-9 && beta > -1e-9,
            "step parameters must be non-negative (alpha={alpha}, beta={beta})"
        );
        Step {
            kind,
            alpha: alpha.max(0.0),
            beta: beta.max(0.0),
        }
    }

    /// A step that contributes no time (co-located zero-copy I/O).
    pub fn zero(kind: StepKind) -> Self {
        Step {
            kind,
            alpha: 0.0,
            beta: 0.0,
        }
    }

    /// Evaluate the step time at degree of parallelism `d` (> 0, may be
    /// fractional during ratio computation).
    pub fn eval(&self, d: f64) -> f64 {
        assert!(d > 0.0, "degree of parallelism must be positive");
        self.alpha / d + self.beta
    }

    /// `true` if the step contributes no time at any parallelism.
    pub fn is_zero(&self) -> bool {
        self.alpha == 0.0 && self.beta == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_inverse_in_d() {
        let s = Step::new(StepKind::Compute, 60.0, 2.0);
        assert!((s.eval(1.0) - 62.0).abs() < 1e-12);
        assert!((s.eval(10.0) - 8.0).abs() < 1e-12);
        assert!((s.eval(60.0) - 3.0).abs() < 1e-12);
        // Monotone decreasing in d.
        assert!(s.eval(5.0) > s.eval(6.0));
    }

    #[test]
    fn zero_step() {
        let s = Step::zero(StepKind::Read);
        assert!(s.is_zero());
        assert_eq!(s.eval(3.0), 0.0);
    }

    #[test]
    fn clamps_fitting_noise() {
        let s = Step::new(StepKind::Write, -1e-12, -1e-12);
        assert_eq!(s.alpha, 0.0);
        assert_eq!(s.beta, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_alpha() {
        Step::new(StepKind::Read, -1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dop() {
        Step::new(StepKind::Read, 1.0, 0.0).eval(0.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(StepKind::Read.to_string(), "read");
        assert_eq!(StepKind::Compute.to_string(), "compute");
        assert_eq!(StepKind::Write.to_string(), "write");
    }
}
