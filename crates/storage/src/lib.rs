#![warn(missing_docs)]

//! # ditto-storage — data exchange substrates
//!
//! Serverless functions exchange intermediate data through one of three
//! media, mirroring the paper's deployment:
//!
//! * **S3-like object storage** ([`ObjectStore`] with [`Medium::S3`]):
//!   high capacity, high per-request latency, modest per-task bandwidth,
//!   priced >1000× cheaper per GB·s than memory (so its persistence cost is
//!   ignored, as in the paper §6);
//! * **Redis-like in-memory storage** ([`Medium::Redis`]): low latency,
//!   high bandwidth, bounded capacity, memory-priced;
//! * **SPRIGHT-like shared memory** ([`sharedmem::SharedMemoryBus`] /
//!   [`Medium::SharedMemory`]): zero-copy intra-server exchange with
//!   microsecond latency regardless of size — the mechanism that makes
//!   function placement matter (§2.2).
//!
//! [`DataPlane`] ties them together: a put/get surface that routes by
//!   placement (co-located → shared memory, otherwise the configured
//!   external store), simulates transfer times, and accounts persistence
//!   cost per medium — the cost source the paper charges for shared memory
//!   and Redis in §6.2/§6.3.

pub mod checksum;
pub mod commit;
pub mod dataplane;
pub mod lineage;
pub mod medium;
pub mod object_store;
pub mod sharedmem;

pub use checksum::checksum64;
pub use commit::{CommitLedger, CommitOutcome};
pub use dataplane::{partition_key, DataPlane, ReadRetryPolicy, ReadRetryStats, TransferLedger};
pub use lineage::{LineageIndex, Provenance};
pub use medium::{CostModel, Medium, TransferModel};
pub use object_store::{ObjectStore, StoreError};
pub use sharedmem::SharedMemoryBus;
