//! Negative suite: corrupted schedules are caught with exact provenance.
//!
//! Each test takes a certified joint-optimizer schedule, applies one
//! targeted corruption, and asserts that the auditor (a) flags it and
//! (b) attributes the finding to the exact stage / edge / server that
//! was corrupted — vague "something is wrong" reports would make the
//! certificates useless for debugging schedulers.

use ditto_audit::{audit, CheckId};
use ditto_cluster::{ResourceManager, ServerId};
use ditto_core::{joint_optimize, JointOptions, Objective, Schedule, TaskPlacement};
use ditto_dag::JobDag;
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;

fn setup() -> (JobDag, JobTimeModel, ResourceManager, Schedule) {
    let dag = ditto_dag::generators::q95_shape();
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let rm = ResourceManager::from_free_slots(vec![96; 8]);
    let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
    let report = audit(&dag, &model, &rm, &s);
    assert!(report.is_clean(), "precondition:\n{}", report.render());
    (dag, model, rm, s)
}

/// Stages whose group is a singleton: corrupting their placement cannot
/// trip the co-location certificate, which keeps each test's blast
/// radius to exactly the invariant under test.
fn singleton_stages(s: &Schedule) -> Vec<usize> {
    (0..s.dop.len())
        .filter(|&i| s.groups[s.group_of[i]].len() == 1)
        .collect()
}

#[test]
fn wrong_dop_ratio_is_caught_at_the_corrupted_stage() {
    let (dag, model, rm, mut s) = setup();
    // Halve the DoP of the singleton-group stage with the largest DoP
    // and rebuild its placement so coverage and capacity stay legal —
    // the *only* violated invariant is the Eq. 3/4 ratio.
    let victim = singleton_stages(&s)
        .into_iter()
        .filter(|&i| s.dop[i] >= 4)
        .max_by_key(|&i| s.dop[i])
        .expect("q95 schedule has a singleton-group stage with DoP >= 4");
    let new_dop = s.dop[victim] / 2;
    s.dop[victim] = new_dop;
    // Spread the shrunk stage across whatever per-server capacity the
    // other stages leave free, so only the ratio invariant is violated.
    let mut load = vec![0u32; rm.num_servers()];
    for (i, p) in s.placement.iter().enumerate() {
        if i == victim {
            continue;
        }
        match p {
            TaskPlacement::Single(srv) => load[srv.0 as usize] += s.dop[i],
            TaskPlacement::Spread(parts) => {
                for &(srv, c) in parts {
                    load[srv.0 as usize] += c;
                }
            }
        }
    }
    let mut chunks = Vec::new();
    let mut left = new_dop;
    for (srv, &used) in load.iter().enumerate() {
        if left == 0 {
            break;
        }
        let free = rm.free_on(ServerId(srv as u32)).saturating_sub(used);
        let take = left.min(free);
        if take > 0 {
            chunks.push((ServerId(srv as u32), take));
            left -= take;
        }
    }
    assert_eq!(left, 0, "corruption stays placeable");
    s.placement[victim] = TaskPlacement::Spread(chunks);

    let report = audit(&dag, &model, &rm, &s);
    assert!(!report.is_clean());
    let ratio_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.check == CheckId::DopRatio)
        .collect();
    assert!(
        ratio_findings
            .iter()
            .any(|f| f.stage == Some(victim as u32)),
        "DopRatio finding must name stage {victim}:\n{}",
        report.render()
    );
}

#[test]
fn oversubscribed_server_is_caught_with_server_provenance() {
    let (dag, model, rm, mut s) = setup();
    // Pile more tasks onto server 0 than it has free slots. Coverage is
    // kept consistent (dop == placed tasks) so the structural pass is
    // clean and the capacity certificate is what fires.
    let victim = *singleton_stages(&s).first().expect("singleton stage");
    let over = rm.free_on(ServerId(0)) + 17;
    s.dop[victim] = over;
    s.placement[victim] = TaskPlacement::Spread(vec![(ServerId(0), over)]);

    let report = audit(&dag, &model, &rm, &s);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == CheckId::SlotCapacity && f.server == Some(0)),
        "SlotCapacity finding must name server 0:\n{}",
        report.render()
    );
}

#[test]
fn phantom_colocation_is_caught_at_the_corrupted_edge() {
    let (dag, model, rm, mut s) = setup();
    // Claim shared-memory shuffle across an edge whose endpoints live in
    // different stage groups — physically impossible, since co-location
    // requires the group's tasks to share servers.
    let edge = (0..dag.num_edges())
        .find(|&e| {
            let ed = dag.edge(ditto_dag::EdgeId(e as u32));
            s.group_of[ed.src.index()] != s.group_of[ed.dst.index()]
        })
        .expect("q95 schedule has an inter-group edge");
    s.colocated[edge] = true;

    let report = audit(&dag, &model, &rm, &s);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == CheckId::ColocationClaim && f.edge == Some(edge as u32)),
        "ColocationClaim finding must name edge {edge}:\n{}",
        report.render()
    );
}

#[test]
fn phantom_server_is_caught() {
    let (dag, model, rm, mut s) = setup();
    let victim = *singleton_stages(&s).first().expect("singleton stage");
    s.placement[victim] = TaskPlacement::Spread(vec![(ServerId(99), s.dop[victim])]);

    let report = audit(&dag, &model, &rm, &s);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == CheckId::SlotCapacity && f.server == Some(99)),
        "finding must name phantom server 99:\n{}",
        report.render()
    );
}

#[test]
fn broken_partition_is_caught() {
    let (dag, model, rm, mut s) = setup();
    // Drop a stage from its group: the partition certificate must name it.
    let gid = s
        .groups
        .iter()
        .position(|g| !g.is_empty())
        .expect("nonempty group");
    let dropped = s.groups[gid].remove(0);

    let report = audit(&dag, &model, &rm, &s);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == CheckId::GroupPartition && f.stage == Some(dropped.0)),
        "GroupPartition finding must name stage {}:\n{}",
        dropped.0,
        report.render()
    );
}
