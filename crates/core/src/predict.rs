//! Predicted JCT and cost of a configuration under the fitted time model.
//!
//! These are the objective functions `F(Dᵢ, Pᵢ)` of the paper's Inequality
//! 6: the joint optimizer guarantees they never increase across iterations.

use ditto_dag::paths::{critical_path, DagWeights};
use ditto_dag::JobDag;
use ditto_timemodel::JobTimeModel;

/// Predicted job completion time: the critical-path length of the DAG with
/// node weights `T(s, d, P)`. Edge I/O is already folded into the stage
/// times (read steps belong to the consumer, write steps to the producer),
/// so edges carry no separate weight.
///
/// `dop` may be fractional (the optimizer reasons over real-valued DoPs;
/// Inequality 6 holds exactly there) or the rounded integers of a final
/// schedule.
pub fn predicted_jct(dag: &JobDag, model: &JobTimeModel, dop: &[f64], colocated: &[bool]) -> f64 {
    let mut w = DagWeights::zeros(dag);
    for s in dag.stages() {
        let d = dop[s.id.index()].max(1e-9);
        w.node[s.id.index()] = model.exec_time(dag, s.id, d, colocated);
    }
    critical_path(dag, &w).weight
}

/// Predicted job cost: `Σ M(s, d) · T(s, d, P)` over all stages (GB·s).
/// Storage persistence cost is an execution-time quantity and is accounted
/// by the simulator, not the predictor — the paper's scheduler likewise
/// optimizes the compute product only (§4.2).
pub fn predicted_cost(dag: &JobDag, model: &JobTimeModel, dop: &[f64], colocated: &[bool]) -> f64 {
    dag.stages()
        .iter()
        .map(|s| {
            let d = dop[s.id.index()].max(1e-9);
            model.stage_cost(dag, s.id, d, colocated)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::generators;
    use ditto_timemodel::model::RateConfig;

    #[test]
    fn jct_is_critical_path_not_sum() {
        let dag = generators::fig1_join();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let none = model.no_colocation();
        let dop = vec![10.0, 10.0, 10.0];
        let jct = predicted_jct(&dag, &model, &dop, &none);
        let t = |i: u32| model.exec_time(&dag, ditto_dag::StageId(i), 10.0, &none);
        // Two parallel maps then the join: JCT = max(map1, map2) + join.
        let expect = t(0).max(t(1)) + t(2);
        assert!((jct - expect).abs() < 1e-9);
        assert!(jct < t(0) + t(1) + t(2));
    }

    #[test]
    fn more_slots_lower_jct() {
        let dag = generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let none = model.no_colocation();
        let lo = vec![4.0; dag.num_stages()];
        let hi = vec![32.0; dag.num_stages()];
        assert!(
            predicted_jct(&dag, &model, &hi, &none) < predicted_jct(&dag, &model, &lo, &none)
        );
    }

    #[test]
    fn colocation_lowers_both_objectives() {
        let dag = generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let none = model.no_colocation();
        let all = vec![true; dag.num_edges()];
        let dop = vec![16.0; dag.num_stages()];
        assert!(predicted_jct(&dag, &model, &dop, &all) < predicted_jct(&dag, &model, &dop, &none));
        assert!(
            predicted_cost(&dag, &model, &dop, &all) < predicted_cost(&dag, &model, &dop, &none)
        );
    }

    #[test]
    fn cost_sums_all_stages() {
        let dag = generators::fig1_join();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let none = model.no_colocation();
        let dop = vec![5.0, 5.0, 5.0];
        let total = predicted_cost(&dag, &model, &dop, &none);
        let manual: f64 = (0..3)
            .map(|i| model.stage_cost(&dag, ditto_dag::StageId(i), 5.0, &none))
            .sum();
        assert!((total - manual).abs() < 1e-9);
    }
}
