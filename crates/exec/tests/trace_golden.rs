//! Golden-file test: a fixed two-stage simulation must export a
//! byte-identical Chrome trace, run after run, build after build.
//!
//! Only sim-clock spans land in the export (timestamps are integral
//! microseconds of simulated time), so the bytes are fully determined by
//! the DAG, the schedule and the ground truth. Regenerate the golden
//! file after an intentional format change with:
//!
//! ```sh
//! DITTO_UPDATE_GOLDEN=1 cargo test -p ditto-exec --test trace_golden
//! ```

use ditto_cluster::ResourceManager;
use ditto_core::baselines::EvenSplitScheduler;
use ditto_core::{Objective, Scheduler, SchedulingContext};
use ditto_exec::{simulate_traced, ExecConfig, GroundTruth};
use ditto_obs::{to_chrome_trace, validate_chrome_trace, Recorder};
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use std::path::PathBuf;

fn two_stage_chrome_trace() -> String {
    let dag = ditto_dag::generators::chain(2, 1 << 30, 0.5);
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let rm = ResourceManager::from_free_slots(vec![8, 8]);
    let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
        dag: &dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    let obs = Recorder::new();
    let (_, m) = simulate_traced(&dag, &schedule, &GroundTruth::new(ExecConfig::default()), &obs);
    assert!(m.jct > 0.0);
    to_chrome_trace(&obs.finish())
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("two_stage_trace.json")
}

#[test]
fn export_is_byte_stable() {
    let a = two_stage_chrome_trace();
    let b = two_stage_chrome_trace();
    assert_eq!(a, b, "two identical runs exported different bytes");
}

#[test]
fn export_matches_golden_file() {
    let json = two_stage_chrome_trace();
    validate_chrome_trace(&json).expect("golden trace must be schema-valid");
    let path = golden_path();
    if std::env::var_os("DITTO_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); regenerate with DITTO_UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        json, golden,
        "Chrome export drifted from the golden file; if intentional, regenerate with DITTO_UPDATE_GOLDEN=1"
    );
}
