//! Ground-truth task performance: what "actually" happens when a task runs.
//!
//! The scheduler sees a fitted `α/d + β` model; the simulator runs tasks
//! against this ground truth instead, which adds what regression smooths
//! over:
//!
//! * **per-task data skew** — tasks of a stage do not process equal shares
//!   (the paper's straggler scaling factor exists because of this);
//! * **deterministic noise** — per-(stage, task) multiplicative jitter,
//!   reproducible under a seed;
//! * **explicit media** — transfer times come from the
//!   `ditto-storage` transfer models per medium, including the all-gather
//!   amplification (every consumer task reads the *full* upstream output).

use ditto_core::Schedule;
use ditto_dag::{EdgeKind, JobDag, StageId};
use ditto_storage::{Medium, TransferModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground-truth execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// External storage backing non-co-located shuffles.
    pub external: Medium,
    /// Per-task compute throughput over processed bytes, bytes/s.
    pub compute_bw: f64,
    /// Fixed per-task setup time (container/runtime startup), seconds —
    /// the "setup" band in the paper's Fig. 14.
    pub task_overhead: f64,
    /// Data-skew intensity: task shares are `1 + skew·U(0,1)`, normalized.
    /// 0 = perfectly even.
    pub skew: f64,
    /// Probability a task is a straggler.
    pub straggler_prob: f64,
    /// Straggler slowdown multiplier (> 1).
    pub straggler_slowdown: f64,
    /// Amplitude of mild per-task jitter applied to non-stragglers
    /// (multiplier drawn from `1 ± jitter`). 0 = fully deterministic
    /// times.
    pub jitter: f64,
    /// Noise and skew seed.
    pub seed: u64,
    /// Memory GB per processed byte (resource model ρ basis).
    pub mem_gb_per_byte: f64,
    /// Per-function memory overhead, GB.
    pub mem_gb_per_function: f64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            external: Medium::S3,
            compute_bw: 150e6,
            task_overhead: 0.6,
            skew: 0.35,
            straggler_prob: 0.04,
            straggler_slowdown: 1.8,
            jitter: 0.08,
            seed: 7,
            mem_gb_per_byte: 2.0e-9,
            mem_gb_per_function: 0.125,
        }
    }
}

/// Per-task step durations, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSteps {
    /// Setup (startup) time.
    pub setup: f64,
    /// Read step (external input + upstream edges).
    pub read: f64,
    /// Compute step.
    pub compute: f64,
    /// Write step (downstream edges + external output).
    pub write: f64,
    /// Bytes this task processed.
    pub bytes_processed: u64,
}

impl TaskSteps {
    /// Total task duration.
    pub fn total(&self) -> f64 {
        self.setup + self.read + self.compute + self.write
    }
}

/// Per-task step times at component granularity (one entry per data
/// dependency), used by the profiler.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskComponents {
    /// Setup (startup) time.
    pub setup: f64,
    /// External input scan time.
    pub external_read: f64,
    /// Per-upstream-edge read times.
    pub edge_reads: Vec<(ditto_dag::EdgeId, f64)>,
    /// Compute time.
    pub compute: f64,
    /// Per-downstream-edge write times.
    pub edge_writes: Vec<(ditto_dag::EdgeId, f64)>,
    /// External output write time.
    pub external_write: f64,
    /// Bytes this task processed.
    pub bytes_processed: u64,
}

impl TaskComponents {
    /// Collapse the components into coarse read/compute/write steps.
    pub fn sum(&self) -> TaskSteps {
        TaskSteps {
            setup: self.setup,
            read: self.external_read + self.edge_reads.iter().map(|&(_, t)| t).sum::<f64>(),
            compute: self.compute,
            write: self.external_write + self.edge_writes.iter().map(|&(_, t)| t).sum::<f64>(),
            bytes_processed: self.bytes_processed,
        }
    }
}

/// The ground-truth model bound to one DAG.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    cfg: ExecConfig,
}

impl GroundTruth {
    /// Create a ground truth with the given configuration.
    pub fn new(cfg: ExecConfig) -> Self {
        GroundTruth { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Per-task data shares of a stage at DoP `d`: positive, summing to 1,
    /// deterministic per (stage, dop, seed).
    pub fn task_shares(&self, stage: StageId, d: u32) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((stage.0 as u64) << 32)
                .wrapping_add(d as u64),
        );
        let weights: Vec<f64> = (0..d).map(|_| 1.0 + self.cfg.skew * rng.gen::<f64>()).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    /// Deterministic straggler multiplier for a task.
    fn straggle(&self, stage: StageId, task: u32) -> f64 {
        let mut rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0xd1b54a32d192ed03)
                .wrapping_add((stage.0 as u64) << 24)
                .wrapping_add(task as u64),
        );
        if rng.gen_bool(self.cfg.straggler_prob) {
            self.cfg.straggler_slowdown
        } else {
            // mild jitter ±cfg.jitter
            1.0 - self.cfg.jitter + 2.0 * self.cfg.jitter * rng.gen::<f64>()
        }
    }

    /// The medium an edge's data travels through under the schedule.
    pub fn edge_medium(&self, schedule: &Schedule, edge_idx: usize) -> Medium {
        if schedule.colocated[edge_idx] {
            Medium::SharedMemory
        } else {
            self.cfg.external
        }
    }

    /// Fine-grained per-component step times for every task of `stage`:
    /// one entry per external read, upstream edge read, compute, downstream
    /// edge write and external write — what the profiler samples to fit the
    /// paper's fine-grained step model (§4.1).
    pub fn task_components(
        &self,
        dag: &JobDag,
        schedule: &Schedule,
        stage: StageId,
    ) -> Vec<TaskComponents> {
        let d = schedule.dop[stage.index()];
        let shares = self.task_shares(stage, d);
        let s = dag.stage(stage);
        let ext = TransferModel::for_medium(self.cfg.external);

        (0..d)
            .map(|t| {
                let share = shares[t as usize];
                let noise = self.straggle(stage, t);
                let mut processed = 0u64;

                let external_read = if s.input_bytes > 0 {
                    let my = (s.input_bytes as f64 * share) as u64;
                    processed += my;
                    ext.transfer_time(my) * noise
                } else {
                    0.0
                };

                let mut edge_reads = Vec::new();
                for e in dag.in_edges(stage) {
                    let medium = self.edge_medium(schedule, e.id.index());
                    let tm = TransferModel::for_medium(medium);
                    let my = match e.kind {
                        // Every consumer task reads the full upstream output.
                        EdgeKind::AllGather => e.bytes,
                        // Partitioned: this task's share.
                        EdgeKind::Shuffle | EdgeKind::Gather => (e.bytes as f64 * share) as u64,
                    };
                    processed += my;
                    edge_reads.push((e.id, tm.transfer_time(my) * noise));
                }

                let compute = processed as f64 / self.cfg.compute_bw * noise;

                let mut edge_writes = Vec::new();
                for e in dag.out_edges(stage) {
                    let medium = self.edge_medium(schedule, e.id.index());
                    let tm = TransferModel::for_medium(medium);
                    let my = (e.bytes as f64 * share) as u64;
                    edge_writes.push((e.id, tm.transfer_time(my) * noise));
                }
                let external_write = if dag.out_degree(stage) == 0 && s.output_bytes > 0 {
                    let my = (s.output_bytes as f64 * share) as u64;
                    ext.transfer_time(my) * noise
                } else {
                    0.0
                };

                TaskComponents {
                    setup: self.cfg.task_overhead,
                    external_read,
                    edge_reads,
                    compute,
                    edge_writes,
                    external_write,
                    bytes_processed: processed,
                }
            })
            .collect()
    }

    /// Ground-truth step times for every task of `stage` under `schedule`
    /// (components summed into read/compute/write).
    pub fn stage_tasks(&self, dag: &JobDag, schedule: &Schedule, stage: StageId) -> Vec<TaskSteps> {
        self.task_components(dag, schedule, stage)
            .into_iter()
            .map(|c| c.sum())
            .collect()
    }

    /// Memory footprint of one task of `stage` at DoP `d`, GB (the paper's
    /// maximum theoretical footprint: the task's data share plus runtime
    /// overhead).
    pub fn task_memory_gb(&self, dag: &JobDag, stage: StageId, d: u32) -> f64 {
        let s = dag.stage(stage);
        let in_bytes: u64 = dag
            .in_edges(stage)
            .map(|e| match e.kind {
                EdgeKind::AllGather => e.bytes * d as u64, // replicated per task
                _ => e.bytes,
            })
            .sum();
        let total = s.input_bytes + in_bytes;
        (total as f64 / d as f64) * self.cfg.mem_gb_per_byte + self.cfg.mem_gb_per_function
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_core::baselines::EvenSplitScheduler;
    use ditto_core::{Objective, Scheduler, SchedulingContext};
    use ditto_timemodel::model::RateConfig;
    use ditto_timemodel::JobTimeModel;

    fn schedule_for(dag: &JobDag, free: &[u32]) -> Schedule {
        let model = JobTimeModel::from_rates(dag, &RateConfig::default());
        let rm = ditto_cluster::ResourceManager::from_free_slots(free.to_vec());
        EvenSplitScheduler.schedule(&SchedulingContext {
            dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        })
    }

    #[test]
    fn shares_sum_to_one_and_are_deterministic() {
        let gt = GroundTruth::new(ExecConfig::default());
        let shares = gt.task_shares(StageId(0), 10);
        assert_eq!(shares.len(), 10);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(shares.iter().all(|&s| s > 0.0));
        assert_eq!(shares, gt.task_shares(StageId(0), 10));
        assert_ne!(shares, gt.task_shares(StageId(1), 10));
    }

    #[test]
    fn zero_skew_means_even_shares() {
        let gt = GroundTruth::new(ExecConfig {
            skew: 0.0,
            ..Default::default()
        });
        let shares = gt.task_shares(StageId(0), 8);
        for s in shares {
            assert!((s - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_dop_shrinks_task_time() {
        let dag = ditto_dag::generators::fig1_join();
        let gt = GroundTruth::new(ExecConfig {
            skew: 0.0,
            straggler_prob: 0.0,
            ..Default::default()
        });
        let mut s_lo = schedule_for(&dag, &[30, 30]);
        let mut s_hi = s_lo.clone();
        s_lo.dop = vec![4, 4, 4];
        s_hi.dop = vec![32, 32, 32];
        let t_lo = gt.stage_tasks(&dag, &s_lo, StageId(0))[0].total();
        let t_hi = gt.stage_tasks(&dag, &s_hi, StageId(0))[0].total();
        assert!(t_hi < t_lo);
    }

    #[test]
    fn colocated_edges_are_near_free() {
        let dag = ditto_dag::generators::fig1_join();
        let gt = GroundTruth::new(ExecConfig {
            skew: 0.0,
            straggler_prob: 0.0,
            ..Default::default()
        });
        let mut sched = schedule_for(&dag, &[60, 60]);
        sched.dop = vec![8, 8, 8];
        let remote = gt.stage_tasks(&dag, &sched, StageId(2))[0].read;
        sched.colocated = vec![true, true];
        sched.group_of = vec![0, 0, 0];
        sched.groups = vec![vec![StageId(0), StageId(1), StageId(2)]];
        let local = gt.stage_tasks(&dag, &sched, StageId(2))[0].read;
        assert!(local < remote / 100.0, "local={local} remote={remote}");
    }

    #[test]
    fn all_gather_reads_full_volume() {
        let dag = ditto_dag::generators::q95_shape();
        let gt = GroundTruth::new(ExecConfig {
            skew: 0.0,
            straggler_prob: 0.0,
            ..Default::default()
        });
        // join1 (stage id 5) has an all-gather in-edge from map3.
        let mut sched = schedule_for(&dag, &[200, 200]);
        for d in sched.dop.iter_mut() {
            *d = 10;
        }
        let tasks = gt.stage_tasks(&dag, &sched, StageId(5));
        // Every task processes at least the full all-gather volume.
        let ag_bytes = dag
            .in_edges(StageId(5))
            .find(|e| e.kind == EdgeKind::AllGather)
            .unwrap()
            .bytes;
        for t in tasks {
            assert!(t.bytes_processed >= ag_bytes);
        }
    }

    #[test]
    fn stragglers_inflate_some_tasks() {
        let dag = ditto_dag::generators::fig1_join();
        let gt = GroundTruth::new(ExecConfig {
            skew: 0.0,
            straggler_prob: 0.5,
            straggler_slowdown: 10.0,
            ..Default::default()
        });
        let mut sched = schedule_for(&dag, &[100, 100]);
        sched.dop = vec![40, 4, 4];
        let tasks = gt.stage_tasks(&dag, &sched, StageId(0));
        let min = tasks.iter().map(|t| t.compute).fold(f64::MAX, f64::min);
        let max = tasks.iter().map(|t| t.compute).fold(f64::MIN, f64::max);
        assert!(max > 5.0 * min, "straggler spread missing: {min}..{max}");
    }

    #[test]
    fn memory_shrinks_with_dop() {
        let dag = ditto_dag::generators::fig1_join();
        let gt = GroundTruth::new(ExecConfig::default());
        let m1 = gt.task_memory_gb(&dag, StageId(0), 1);
        let m8 = gt.task_memory_gb(&dag, StageId(0), 8);
        assert!(m8 < m1);
        assert!(m8 >= gt.config().mem_gb_per_function);
    }
}
