//! Profiling: generate recurring-job profiles from the ground truth.
//!
//! The paper fits each stage's step model from the profiles of about five
//! executions at different degrees of parallelism (§6.5). [`profile_job`]
//! produces exactly that: for each stage and each profiled DoP it "runs"
//! the stage against the ground truth (all shuffles remote — profiling
//! happens before any grouping decision) and records the mean and max task
//! time of every fine-grained step. Feeding the result to
//! `ditto_timemodel::JobProfile::build_model` yields the fitted model and
//! the Table 2 build time; comparing its predictions against fresh
//! ground-truth runs is the Fig. 11 experiment.

use crate::groundtruth::GroundTruth;
use ditto_core::{Schedule, TaskPlacement};
use ditto_dag::{JobDag, StageId};
use ditto_timemodel::{JobProfile, ProfileSample, StageProfile, StepTarget};

/// A placement-free schedule stub: every shuffle remote, every stage at
/// DoP `d` (profiling runs each stage in isolation, so only the profiled
/// stage's DoP matters; upstream volumes are fixed by the DAG). Public so
/// the Fig. 11 accuracy experiment can replay stages at arbitrary DoPs.
pub fn probe_schedule(dag: &JobDag, d: u32) -> Schedule {
    let n = dag.num_stages();
    Schedule {
        scheduler: "profiler".into(),
        dop: vec![d; n],
        groups: (0..n).map(|i| vec![StageId(i as u32)]).collect(),
        group_of: (0..n).collect(),
        colocated: vec![false; dag.num_edges()],
        placement: vec![
            TaskPlacement::Spread(vec![(ditto_cluster::ServerId(0), d)]);
            n
        ],
    }
}

/// Collect mean/max task times per fine-grained step at each DoP in
/// `dops`, for every stage of the DAG.
pub fn profile_job(dag: &JobDag, gt: &GroundTruth, dops: &[u32]) -> JobProfile {
    assert!(!dops.is_empty(), "need at least one profiled DoP");
    let mut profile = JobProfile::new();
    for stage in dag.stages() {
        // target -> samples across DoPs
        let mut per_target: Vec<(StepTarget, Vec<ProfileSample>)> = Vec::new();
        let mut push = |target: StepTarget, sample: ProfileSample| {
            if let Some((_, v)) = per_target.iter_mut().find(|(t, _)| *t == target) {
                v.push(sample);
            } else {
                per_target.push((target, vec![sample]));
            }
        };

        for &d in dops {
            let sched = probe_schedule(dag, d);
            let comps = gt.task_components(dag, &sched, stage.id);
            let n = comps.len() as f64;
            let agg = |vals: Vec<f64>| -> ProfileSample {
                let mean = vals.iter().sum::<f64>() / n;
                let max = vals.iter().cloned().fold(0.0, f64::max);
                ProfileSample {
                    dop: d,
                    mean_seconds: mean,
                    max_seconds: max,
                }
            };

            let ext_r: Vec<f64> = comps.iter().map(|c| c.external_read).collect();
            if ext_r.iter().any(|&t| t > 0.0) {
                push(StepTarget::ExternalRead, agg(ext_r));
            }
            push(
                StepTarget::Compute,
                agg(comps.iter().map(|c| c.compute).collect()),
            );
            let ext_w: Vec<f64> = comps.iter().map(|c| c.external_write).collect();
            if ext_w.iter().any(|&t| t > 0.0) {
                push(StepTarget::ExternalWrite, agg(ext_w));
            }
            for (i, e) in dag.in_edges(stage.id).enumerate() {
                let vals: Vec<f64> = comps.iter().map(|c| c.edge_reads[i].1).collect();
                push(StepTarget::EdgeRead(e.id), agg(vals));
            }
            for (i, e) in dag.out_edges(stage.id).enumerate() {
                let vals: Vec<f64> = comps.iter().map(|c| c.edge_writes[i].1).collect();
                push(StepTarget::EdgeWrite(e.id), agg(vals));
            }
        }

        let mut sp = StageProfile::new(stage.id);
        sp.steps = per_target;
        profile.add_stage(sp);

        // Resource model from ground-truth memory at a representative DoP:
        // M(d) = ρ/d·d ... the linear form ρ + σd is recovered from two
        // points (d smallest and largest profiled).
        let (d0, d1) = (dops[0], dops[dops.len() - 1]);
        let m0 = gt.task_memory_gb(dag, stage.id, d0) * d0 as f64;
        let m1 = gt.task_memory_gb(dag, stage.id, d1) * d1 as f64;
        // Total memory is ρ + σ·d (ρ = data, σ = per-function overhead).
        let sigma = if d1 != d0 {
            ((m1 - m0) / (d1 as f64 - d0 as f64)).max(0.0)
        } else {
            0.0
        };
        let rho = (m0 - sigma * d0 as f64).max(1e-3);
        profile
            .resources
            .push((stage.id, ditto_timemodel::ResourceModel::new(rho, sigma)));
    }
    profile
}

/// The paper's default profiling setup: five DoPs spanning 10–120.
pub fn default_profile_dops() -> [u32; 5] {
    [10, 20, 40, 80, 120]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::ExecConfig;

    fn gt_no_noise() -> GroundTruth {
        GroundTruth::new(ExecConfig {
            skew: 0.0,
            straggler_prob: 0.0,
            jitter: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn profile_then_fit_recovers_ground_truth() {
        let dag = ditto_dag::generators::q95_shape();
        let gt = gt_no_noise();
        let profile = profile_job(&dag, &gt, &default_profile_dops());
        let (model, took) = profile.build_model(&dag);
        assert!(took.as_secs_f64() < 1.0, "Table 2: model building is fast");

        // Predicted stage time ≈ ground-truth task time at an unprofiled
        // DoP (d = 60 is between the profiled points).
        let none = model.no_colocation();
        let sched = probe_schedule(&dag, 60);
        for s in dag.stages() {
            let actual = gt
                .stage_tasks(&dag, &sched, s.id)
                .iter()
                .map(|t| t.read + t.compute + t.write)
                .sum::<f64>()
                / 60.0;
            let predicted = model.exec_time(&dag, s.id, 60.0, &none);
            let rel = (predicted - actual).abs() / actual.max(1e-9);
            assert!(
                rel < 0.02,
                "stage {}: predicted {predicted} vs actual {actual} ({rel:.3})",
                s.name
            );
        }
    }

    #[test]
    fn straggler_scaling_detected_with_noise() {
        let dag = ditto_dag::generators::fig1_join();
        let gt = GroundTruth::new(ExecConfig {
            skew: 0.5,
            straggler_prob: 0.3,
            straggler_slowdown: 2.0,
            ..Default::default()
        });
        let profile = profile_job(&dag, &gt, &default_profile_dops());
        let (model, _) = profile.build_model(&dag);
        // At least one stage should carry a scaling factor > 1.
        let any_scaled = dag
            .stages()
            .iter()
            .any(|s| model.scaling(s.id) > 1.05);
        assert!(any_scaled, "straggler evidence should surface in scaling");
    }

    #[test]
    fn resource_model_recovered() {
        let dag = ditto_dag::generators::fig1_join();
        let gt = gt_no_noise();
        let profile = profile_job(&dag, &gt, &default_profile_dops());
        let (model, _) = profile.build_model(&dag);
        // Stage 0 scans 8 GB: ρ ≈ 8e9 × mem_gb_per_byte = ~16 GB.
        let rho = model.resource(StageId(0)).rho;
        let expect = (8u64 << 30) as f64 * gt.config().mem_gb_per_byte;
        assert!(
            (rho - expect).abs() / expect < 0.05,
            "rho={rho} expect≈{expect}"
        );
        let sigma = model.resource(StageId(0)).sigma;
        assert!((sigma - gt.config().mem_gb_per_function).abs() < 1e-6);
    }

    #[test]
    fn edge_steps_are_profiled_separately() {
        let dag = ditto_dag::generators::fig1_join();
        let gt = gt_no_noise();
        let profile = profile_job(&dag, &gt, &[10, 40]);
        let (model, _) = profile.build_model(&dag);
        // The map1→join edge read must be nonzero remote and zeroable.
        let e0 = ditto_dag::EdgeId(0);
        assert!(model.edge_io(e0).read.alpha > 0.0);
        let none = model.no_colocation();
        let mut colo = none.clone();
        colo[0] = true;
        let join = StageId(2);
        assert!(
            model.exec_time(&dag, join, 8.0, &colo) < model.exec_time(&dag, join, 8.0, &none)
        );
    }

    #[test]
    #[should_panic(expected = "at least one profiled DoP")]
    fn empty_dops_rejected() {
        let dag = ditto_dag::generators::fig1_join();
        profile_job(&dag, &gt_no_noise(), &[]);
    }
}
