//! Row-at-a-time reference kernels: the correctness oracle for the
//! vectorized operators.
//!
//! These are the original operator implementations, kept verbatim (boxed
//! keys, per-row allocations, index-vector partitioning, element-wise
//! codec). The vectorized kernels in [`crate::ops`] / [`crate::table`] must
//! produce **bit-identical** output — same rows, same order, same float
//! bits, same wire bytes — which the `kernel_equivalence` proptest suite
//! and the fixed-seed five-query sweep enforce.
//!
//! Everything here is intentionally slow; nothing in the runtime calls it
//! outside tests and benchmarks.

use crate::column::{Column, DataType, Value};
use crate::datagen::Database;
use crate::expr::{CmpOp, Pred};
use crate::ops::group_by::{AggFunc, AggSpec};
use crate::ops::join::JoinKind;
use crate::plan::{QueryPlan, StageOp};
use crate::table::{Field, Schema, Table};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A join key usable as a hash-map key (i64 or string columns).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    I(i64),
    S(String),
}

fn key_at(col: &Column, row: usize) -> Key {
    match col {
        Column::I64(v) => Key::I(v[row]),
        Column::Str(v) => Key::S(v[row].clone()),
        Column::F64(_) => panic!("cannot join on a float column"),
    }
}

/// The original boxed-key hash join (build right, probe left).
pub fn hash_join_reference(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    kind: JoinKind,
) -> Table {
    let lcol = left.column_req(left_key);
    let rcol = right.column_req(right_key);
    assert_eq!(
        lcol.dtype(),
        rcol.dtype(),
        "join key types differ: {left_key} vs {right_key}"
    );

    let mut build: HashMap<Key, Vec<usize>> = HashMap::new();
    for r in 0..right.num_rows() {
        build.entry(key_at(rcol, r)).or_default().push(r);
    }

    match kind {
        JoinKind::Inner => {
            let mut lidx = Vec::new();
            let mut ridx = Vec::new();
            for l in 0..left.num_rows() {
                if let Some(rs) = build.get(&key_at(lcol, l)) {
                    for &r in rs {
                        lidx.push(l);
                        ridx.push(r);
                    }
                }
            }
            let lpart = left.take(&lidx);
            let rpart = right.take(&ridx);
            let mut fields = lpart.schema.fields.clone();
            let mut cols = lpart.columns.clone();
            for (f, c) in rpart.schema.fields.iter().zip(&rpart.columns) {
                let name = if lpart.schema.index_of(&f.name).is_some() {
                    format!("{}_r", f.name)
                } else {
                    f.name.clone()
                };
                fields.push(Field {
                    name,
                    dtype: f.dtype,
                });
                cols.push(c.clone());
            }
            Table::new(Schema { fields }, cols)
        }
        JoinKind::LeftSemi | JoinKind::LeftAnti => {
            let want_match = kind == JoinKind::LeftSemi;
            let mask: Vec<bool> = (0..left.num_rows())
                .map(|l| build.contains_key(&key_at(lcol, l)) == want_match)
                .collect();
            left.filter(&mask)
        }
    }
}

/// Hashable composite group key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    I(i64),
    S(String),
}

fn key_of(cols: &[&Column], row: usize) -> Vec<KeyPart> {
    cols.iter()
        .map(|c| match c {
            Column::I64(v) => KeyPart::I(v[row]),
            Column::Str(v) => KeyPart::S(v[row].clone()),
            Column::F64(_) => panic!("cannot group by a float column"),
        })
        .collect()
}

fn numeric_at(col: &Column, row: usize) -> f64 {
    match col {
        Column::I64(v) => v[row] as f64,
        Column::F64(v) => v[row],
        Column::Str(_) => panic!("numeric aggregate over a string column"),
    }
}

fn distinct_key(col: &Column, row: usize) -> KeyPart {
    match col {
        Column::I64(v) => KeyPart::I(v[row]),
        Column::F64(v) => KeyPart::I(v[row].to_bits() as i64),
        Column::Str(v) => KeyPart::S(v[row].clone()),
    }
}

/// The original per-row-keyed group-by aggregation.
pub fn group_by_reference(
    t: &Table,
    keys: &[&str],
    aggs: &[AggSpec],
    having: Option<&Pred>,
) -> Table {
    let key_cols: Vec<&Column> = keys.iter().map(|k| t.column_req(k)).collect();
    let mut groups: HashMap<Vec<KeyPart>, Vec<usize>> = HashMap::new();
    let mut order: Vec<Vec<KeyPart>> = Vec::new();
    for row in 0..t.num_rows() {
        let k = key_of(&key_cols, row);
        groups
            .entry(k.clone())
            .or_insert_with(|| {
                order.push(k);
                Vec::new()
            })
            .push(row);
    }

    let mut fields: Vec<Field> = Vec::new();
    let mut out_cols: Vec<Column> = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        fields.push(Field {
            name: k.to_string(),
            dtype: key_cols[i].dtype(),
        });
        let col = match key_cols[i].dtype() {
            DataType::I64 => Column::I64(
                order
                    .iter()
                    .map(|key| match &key[i] {
                        KeyPart::I(v) => *v,
                        KeyPart::S(_) => unreachable!(),
                    })
                    .collect(),
            ),
            DataType::Str => Column::Str(
                order
                    .iter()
                    .map(|key| match &key[i] {
                        KeyPart::S(v) => v.clone(),
                        KeyPart::I(_) => unreachable!(),
                    })
                    .collect(),
            ),
            DataType::F64 => unreachable!("rejected above"),
        };
        out_cols.push(col);
    }

    for spec in aggs {
        let dtype = match spec.func {
            AggFunc::Count | AggFunc::CountDistinct => DataType::I64,
            _ => DataType::F64,
        };
        fields.push(Field {
            name: spec.output.clone(),
            dtype,
        });
        let col = match spec.func {
            AggFunc::Count => {
                Column::I64(order.iter().map(|k| groups[k].len() as i64).collect())
            }
            AggFunc::CountDistinct => {
                let input = t.column_req(&spec.input);
                Column::I64(
                    order
                        .iter()
                        .map(|k| {
                            let set: HashSet<KeyPart> =
                                groups[k].iter().map(|&r| distinct_key(input, r)).collect();
                            set.len() as i64
                        })
                        .collect(),
                )
            }
            AggFunc::Sum | AggFunc::Avg | AggFunc::Min | AggFunc::Max => {
                let input = t.column_req(&spec.input);
                Column::F64(
                    order
                        .iter()
                        .map(|k| {
                            let rows = &groups[k];
                            let vals = rows.iter().map(|&r| numeric_at(input, r));
                            match spec.func {
                                AggFunc::Sum => vals.sum(),
                                AggFunc::Avg => vals.sum::<f64>() / rows.len() as f64,
                                AggFunc::Min => vals.fold(f64::INFINITY, f64::min),
                                AggFunc::Max => vals.fold(f64::NEG_INFINITY, f64::max),
                                _ => unreachable!(),
                            }
                        })
                        .collect(),
                )
            }
        };
        out_cols.push(col);
    }

    let out = Table::new(Schema { fields }, out_cols);
    match having {
        Some(p) => {
            let mask = eval_reference(p, &out);
            out.filter(&mask)
        }
        None => out,
    }
}

/// The original per-row predicate evaluation (one [`Value`] per cell).
pub fn eval_reference(pred: &Pred, t: &Table) -> Vec<bool> {
    let n = t.num_rows();
    match pred {
        Pred::Cmp { col, op, value } => {
            let c = t.column_req(col);
            (0..n).map(|r| cmp_value(&c.value(r), *op, value)).collect()
        }
        Pred::InI64 { col, set } => {
            let s: HashSet<i64> = set.iter().copied().collect();
            let c = t.column_req(col).as_i64();
            c.iter().map(|v| s.contains(v)).collect()
        }
        Pred::InStr { col, set } => {
            let s: HashSet<&str> = set.iter().map(|x| x.as_str()).collect();
            let c = t.column_req(col).as_str();
            c.iter().map(|v| s.contains(v.as_str())).collect()
        }
        Pred::ColCmp {
            left,
            op,
            right,
            scale,
        } => {
            let l = t.column_req(left);
            let r = t.column_req(right);
            (0..n)
                .map(|row| {
                    let lv = numeric_value(&l.value(row));
                    let rv = numeric_value(&r.value(row)) * scale;
                    cmp_value(&Value::F64(lv), *op, &Value::F64(rv))
                })
                .collect()
        }
        Pred::And(ps) => {
            let mut mask = vec![true; n];
            for p in ps {
                for (m, x) in mask.iter_mut().zip(eval_reference(p, t)) {
                    *m = *m && x;
                }
            }
            mask
        }
        Pred::Or(ps) => {
            let mut mask = vec![false; n];
            for p in ps {
                for (m, x) in mask.iter_mut().zip(eval_reference(p, t)) {
                    *m = *m || x;
                }
            }
            mask
        }
        Pred::Not(p) => eval_reference(p, t).into_iter().map(|b| !b).collect(),
    }
}

fn numeric_value(v: &Value) -> f64 {
    match v {
        Value::I64(x) => *x as f64,
        Value::F64(x) => *x,
        Value::Str(s) => panic!("numeric comparison over string value {s:?}"),
    }
}

fn cmp_value(lhs: &Value, op: CmpOp, rhs: &Value) -> bool {
    use std::cmp::Ordering;
    let ord = match (lhs, rhs) {
        (Value::I64(a), Value::I64(b)) => a.cmp(b),
        (Value::F64(a), Value::F64(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (a, b) => panic!("type mismatch in comparison: {a:?} vs {b:?}"),
    };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// The original hash-tuple distinct (first-appearance order).
pub fn distinct_reference(t: &Table, cols: &[&str]) -> Table {
    let projected = t.project(cols);
    let key_cols: Vec<&Column> = cols.iter().map(|c| projected.column_req(c)).collect();
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    let mut keep = Vec::new();
    for row in 0..projected.num_rows() {
        let key: Vec<u64> = key_cols.iter().map(|c| c.hash_row(row)).collect();
        if seen.insert(key) {
            keep.push(row);
        }
    }
    projected.take(&keep)
}

/// The original index-vector hash partitioner (bucket lists + `take`).
pub fn hash_partition_reference(t: &Table, key: &str, n: usize) -> Vec<Table> {
    assert!(n > 0);
    let col = t.column_req(key);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
    for row in 0..t.num_rows() {
        let b = (col.hash_row(row) % n as u64) as usize;
        buckets[b].push(row);
    }
    buckets.into_iter().map(|idx| t.take(&idx)).collect()
}

/// The original index-vector split (`(start..start+len)` + `take`).
pub fn split_reference(t: &Table, n: usize) -> Vec<Table> {
    assert!(n > 0);
    let rows = t.num_rows();
    let base = rows / n;
    let rem = rows % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0usize;
    for i in 0..n {
        let len = base + usize::from(i < rem);
        let idx: Vec<usize> = (start..start + len).collect();
        out.push(t.take(&idx));
        start += len;
    }
    out
}

/// The original element-at-a-time wire encoding (v1: strings inline,
/// numerics pushed one word at a time). [`Table::decode`] still accepts
/// this format (tag 2), so round-trips through it remain valid.
pub fn encode_reference(t: &Table) -> Bytes {
    let mut buf = BytesMut::with_capacity(t.byte_size() as usize + 64);
    buf.put_u32_le(t.num_columns() as u32);
    for (f, c) in t.schema.fields.iter().zip(&t.columns) {
        buf.put_u32_le(f.name.len() as u32);
        buf.put_slice(f.name.as_bytes());
        match c {
            Column::I64(v) => {
                buf.put_u8(0);
                buf.put_u64_le(v.len() as u64);
                for x in v {
                    buf.put_i64_le(*x);
                }
            }
            Column::F64(v) => {
                buf.put_u8(1);
                buf.put_u64_le(v.len() as u64);
                for x in v {
                    buf.put_f64_le(*x);
                }
            }
            Column::Str(v) => {
                buf.put_u8(2);
                buf.put_u64_le(v.len() as u64);
                for s in v {
                    buf.put_u32_le(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
            }
        }
    }
    buf.freeze()
}

/// Execute a whole plan with the reference operators only — the oracle the
/// fixed-seed five-query sweep compares [`QueryPlan::execute_reference`]
/// (which runs the vectorized kernels) against.
pub fn execute_plan_reference(plan: &QueryPlan, db: &Database) -> Table {
    let order = plan.dag.topo_order().expect("plan DAG is valid");
    let mut outputs: BTreeMap<ditto_dag::StageId, Table> = BTreeMap::new();
    for s in order {
        let inputs: BTreeMap<String, Table> = plan
            .dag
            .parents_of(s)
            .map(|p| (plan.dag.stage(p).name.clone(), outputs[&p].clone()))
            .collect();
        let out = execute_stage_reference(plan, s, db, &inputs);
        outputs.insert(s, out);
    }
    let sink = plan.dag.final_stages()[0];
    outputs.remove(&sink).expect("sink executed")
}

fn execute_stage_reference(
    plan: &QueryPlan,
    stage: ditto_dag::StageId,
    db: &Database,
    inputs: &BTreeMap<String, Table>,
) -> Table {
    let input_req = |name: &str| -> &Table {
        inputs
            .get(name)
            .unwrap_or_else(|| panic!("{}: missing input from stage {name:?}", plan.name))
    };
    match &plan.stages[stage.index()].op {
        StageOp::Scan {
            table,
            projection,
            predicate,
        } => {
            let src = db.table(table);
            let filtered = match predicate {
                Some(p) => src.filter(&eval_reference(p, src)),
                None => src.clone(),
            };
            let cols: Vec<&str> = projection.iter().map(|s| s.as_str()).collect();
            filtered.project(&cols)
        }
        StageOp::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
        } => hash_join_reference(input_req(left), input_req(right), left_key, right_key, *kind),
        StageOp::GroupBy {
            input,
            keys,
            aggs,
            having,
        } => {
            let key_refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
            group_by_reference(input_req(input), &key_refs, aggs, having.as_ref())
        }
        StageOp::Filter {
            input,
            predicate,
            projection,
        } => {
            let t = input_req(input);
            let filtered = t.filter(&eval_reference(predicate, t));
            match projection {
                Some(cols) => {
                    let refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
                    filtered.project(&refs)
                }
                None => filtered,
            }
        }
        StageOp::SortLimit {
            input,
            col,
            desc,
            limit,
        } => {
            let t = input_req(input);
            let c = t.column_req(col);
            let mut idx: Vec<usize> = (0..t.num_rows()).collect();
            match c {
                Column::I64(v) => idx.sort_by(|&a, &b| v[a].cmp(&v[b])),
                Column::F64(v) => idx.sort_by(|&a, &b| v[a].total_cmp(&v[b])),
                Column::Str(v) => idx.sort_by(|&a, &b| v[a].cmp(&v[b])),
            }
            if *desc {
                idx.reverse();
            }
            idx.truncate(*limit);
            t.take(&idx)
        }
    }
}
