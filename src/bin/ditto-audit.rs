//! `ditto-audit` — schedule a JSON job spec and certify the result.
//!
//! ```sh
//! ditto-audit job.json                    # schedule + audit, human report
//! cat job.json | ditto-audit              # spec on stdin
//! ditto-audit --json job.json             # machine-readable report
//! ditto-audit --deadline 120 job.json     # also check a JCT deadline
//! ditto-audit --cost-budget 5e6 job.json  # also check a GB·s budget
//! ditto-audit race trace.jsonl            # race-check a trace artifact
//! ditto-audit race --json --capacities 12,10 trace.json
//! ditto-audit journal run.wal             # certify a crash-recovery journal
//! ditto-audit journal --trace trace.json run.wal   # + cross-check vs trace
//! ```
//!
//! Runs the full certificate chain of `ditto_audit` on the schedule the
//! joint optimizer produces for the spec: structural sanity, stage-group
//! well-formedness, placement feasibility, colocation claims, DoP-ratio
//! optimality (Eqs. 3–4) and, with the flags above, objective adherence.
//! Exits 0 iff the schedule is certified (no error-severity findings),
//! 1 on audit errors, 2 on a malformed spec or bad flags.
//!
//! The `race` subcommand instead re-imports a recorded `--trace-out`
//! artifact (JSONL or Chrome JSON, auto-detected), rebuilds the
//! happens-before graph from its `hb.*` events, and reports ordering
//! violations — same exit-code contract.
//!
//! The `journal` subcommand decodes a control-plane write-ahead journal
//! (`DITTOWAL`), reports its record census and any torn tail with exact
//! record-index provenance, runs the structural invariants
//! (single admission, exactly-once commits, monotonic decision sequence),
//! and with `--trace` cross-checks journaled commits and decisions
//! against a recorded trace artifact. Exits 0 iff the journal certifies
//! clean, 1 on findings, 2 on undecodable input.

use ditto::jobspec::JobSpec;
use ditto_audit::{AuditOptions, RaceOptions};
use std::io::Read as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("race") {
        args.remove(0);
        race_main(args);
    }
    if args.first().map(String::as_str) == Some("journal") {
        args.remove(0);
        journal_main(args);
    }
    let json = take_flag(&mut args, "--json");
    let deadline = take_value(&mut args, "--deadline");
    let cost_budget = take_value(&mut args, "--cost-budget");

    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: ditto-audit [--json] [--deadline SECS] [--cost-budget GBS] <job.json>"
        );
        std::process::exit(2);
    }
    let text = match args.first().map(|s| s.as_str()) {
        Some(path) if path != "-" => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ditto-audit: cannot read {path:?}: {e}");
                std::process::exit(2);
            }
        },
        _ => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("ditto-audit: failed to read stdin");
                std::process::exit(2);
            }
            buf
        }
    };

    let spec = match JobSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ditto-audit: {e}");
            std::process::exit(2);
        }
    };
    let (dag, model, rm, objective) = match spec.lower() {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("ditto-audit: {e}");
            std::process::exit(2);
        }
    };
    let schedule = ditto_core::joint_optimize(
        &dag,
        &model,
        &rm,
        objective,
        &ditto_core::JointOptions::default(),
    );
    let opts = AuditOptions {
        deadline,
        cost_budget,
        ..Default::default()
    };
    let report = ditto_audit::audit_with(&dag, &model, &rm, &schedule, &opts);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

/// `ditto-audit race [--json] [--capacities N,N,..] [--eps SECS] <trace>`
/// — never returns.
fn race_main(mut args: Vec<String>) -> ! {
    let json = take_flag(&mut args, "--json");
    let capacities = take_raw(&mut args, "--capacities").map(|raw| {
        raw.split(',')
            .map(|s| match s.trim().parse::<u32>() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("ditto-audit race: bad --capacities entry {s:?}");
                    std::process::exit(2);
                }
            })
            .collect::<Vec<u32>>()
    });
    let eps = take_value(&mut args, "--eps");
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: ditto-audit race [--json] [--capacities N,N,..] [--eps SECS] <trace.jsonl|trace.json>"
        );
        std::process::exit(2);
    }
    let text = match args.first().map(|s| s.as_str()) {
        Some(path) if path != "-" => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ditto-audit race: cannot read {path:?}: {e}");
                std::process::exit(2);
            }
        },
        _ => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("ditto-audit race: failed to read stdin");
                std::process::exit(2);
            }
            buf
        }
    };
    // Chrome exports are a single object with `traceEvents`; everything
    // else is treated as JSONL (one object per line).
    let chrome = text.trim_start().starts_with('{') && text.contains("\"traceEvents\"");
    let imported = if chrome {
        ditto_obs::events_from_chrome(&text)
    } else {
        ditto_obs::events_from_jsonl(&text)
    };
    let (trace, stats) = match imported {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("ditto-audit race: {e}");
            std::process::exit(2);
        }
    };
    let mut opts = RaceOptions {
        capacities,
        ..Default::default()
    };
    if let Some(e) = eps {
        opts.eps = e;
    }
    let report = ditto_audit::check_trace(&trace, &opts);
    if json {
        println!("{}", report.to_json());
    } else {
        if stats.skipped_events > 0 || stats.skipped_attrs > 0 {
            eprintln!(
                "ditto-audit race: skipped {} unknown events, {} unknown attrs on import",
                stats.skipped_events, stats.skipped_attrs
            );
        }
        print!("{}", report.render());
    }
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

/// `ditto-audit journal [--json] [--trace FILE] <journal.wal>` — never
/// returns. Certifies a control-plane write-ahead journal: decode +
/// torn-tail provenance, structural invariants, and (with `--trace`) the
/// journal ↔ trace cross-check.
fn journal_main(mut args: Vec<String>) -> ! {
    let json = take_flag(&mut args, "--json");
    let trace_path = take_raw(&mut args, "--trace");
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: ditto-audit journal [--json] [--trace trace.jsonl|trace.json] <journal.wal>");
        std::process::exit(2);
    }
    let Some(path) = args.first() else {
        eprintln!("ditto-audit journal: need a journal file");
        std::process::exit(2);
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ditto-audit journal: cannot read {path:?}: {e}");
            std::process::exit(2);
        }
    };
    let decoded = match ditto_exec::decode_journal(&bytes) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ditto-audit journal: {e}");
            std::process::exit(2);
        }
    };
    let mut findings = ditto_exec::validate_journal(&decoded.records);
    let mut census: std::collections::BTreeMap<&'static str, u64> = std::collections::BTreeMap::new();
    for rec in &decoded.records {
        use ditto_exec::JournalRecord as R;
        let kind = match rec {
            R::JobAdmit { .. } => "job_admit",
            R::ScheduleCommit { .. } => "schedule_commit",
            R::ObjectCommit { .. } => "object_commit",
            R::StageComplete(_) => "stage_complete",
            R::Replan { .. } => "replan",
            R::Failover { .. } => "failover",
            R::TaskAttempt { .. } => "task_attempt",
            R::JobComplete { .. } => "job_complete",
            R::Snapshot(_) => "snapshot",
        };
        *census.entry(kind).or_insert(0) += 1;
    }
    if let Some(tp) = &trace_path {
        let text = match std::fs::read_to_string(tp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ditto-audit journal: cannot read {tp:?}: {e}");
                std::process::exit(2);
            }
        };
        let chrome = text.trim_start().starts_with('{') && text.contains("\"traceEvents\"");
        let imported = if chrome {
            ditto_obs::events_from_chrome(&text)
        } else {
            ditto_obs::events_from_jsonl(&text)
        };
        match imported {
            Ok((trace, _)) => {
                findings.extend(ditto_exec::cross_check(&decoded.records, &trace));
            }
            Err(e) => {
                eprintln!("ditto-audit journal: {e}");
                std::process::exit(2);
            }
        }
    }
    let clean = findings.is_empty();
    if json {
        use serde_json::{Map, Number, Value};
        let uint = |v: u64| Value::Number(Number::PosInt(v));
        let mut out = Map::new();
        out.insert("records".into(), uint(decoded.records.len() as u64));
        out.insert("durable_bytes".into(), uint(decoded.durable_len as u64));
        let mut c = Map::new();
        for (kind, n) in &census {
            c.insert((*kind).into(), uint(*n));
        }
        out.insert("census".into(), Value::Object(c));
        out.insert(
            "torn".into(),
            match decoded.torn {
                Some(t) => {
                    let mut tm = Map::new();
                    tm.insert("at_record".into(), uint(t.at_record));
                    tm.insert("byte_offset".into(), uint(t.byte_offset as u64));
                    tm.insert("reason".into(), Value::String(t.reason.label().into()));
                    Value::Object(tm)
                }
                None => Value::Null,
            },
        );
        out.insert("cross_checked".into(), Value::Bool(trace_path.is_some()));
        out.insert(
            "findings".into(),
            Value::Array(findings.iter().cloned().map(Value::String).collect()),
        );
        out.insert("clean".into(), Value::Bool(clean));
        println!("{}", Value::Object(out));
    } else {
        println!(
            "journal: {} records, {} durable bytes",
            decoded.records.len(),
            decoded.durable_len
        );
        for (kind, n) in &census {
            println!("  {kind:<16} {n}");
        }
        match decoded.torn {
            Some(t) => println!(
                "torn tail: record {} at byte {} ({})",
                t.at_record,
                t.byte_offset,
                t.reason.label()
            ),
            None => println!("torn tail: none"),
        }
        if clean {
            println!("journal certified clean");
        } else {
            for f in &findings {
                println!("FINDING: {f}");
            }
        }
    }
    std::process::exit(if clean { 0 } else { 1 });
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let had = args.iter().any(|a| a == name);
    args.retain(|a| a != name);
    had
}

fn take_raw(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    args.remove(i);
    if i >= args.len() {
        eprintln!("ditto-audit: {name} needs an argument");
        std::process::exit(2);
    }
    Some(args.remove(i))
}

fn take_value(args: &mut Vec<String>, name: &str) -> Option<f64> {
    let raw = take_raw(args, name)?;
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Some(v),
        _ => {
            eprintln!("ditto-audit: {name} needs a positive number, got {raw:?}");
            std::process::exit(2);
        }
    }
}
