//! Shared experiment pipeline: data → plan → profile → fitted model.

use ditto_cluster::{Cluster, ResourceManager, SlotDistribution};
use ditto_core::{Objective, Schedule, Scheduler, SchedulingContext};
use ditto_exec::{profile_job, simulate, ExecConfig, GroundTruth, JobMetrics};
use ditto_sql::queries::Query;
use ditto_sql::{Database, QueryPlan, ScaleConfig};
use ditto_storage::Medium;
use ditto_timemodel::JobTimeModel;
use std::time::Duration;

/// Scale factor for experiment databases: small enough to generate in
/// tens of milliseconds, large enough that every query returns rows.
pub const EXPERIMENT_SF: f64 = 0.5;

/// Byte-volume multiplier bridging laptop-scale generated data to the
/// paper's TB-scale inputs: measured intermediate volumes are multiplied
/// by this before profiling/scheduling/simulation, putting query input
/// sizes in the paper's 33–312 GB range and JCTs at hundreds of seconds.
pub const VOLUME_SCALE: f64 = 40_000.0;

/// The profiled DoPs (the paper fits from five parallelism degrees).
pub const PROFILE_DOPS: [u32; 5] = [10, 20, 40, 80, 120];

/// A query ready for scheduling experiments.
pub struct PreparedQuery {
    /// Which query.
    pub query: Query,
    /// Plan with measured + scaled volumes.
    pub plan: QueryPlan,
    /// Ground truth the simulator runs against.
    pub gt: GroundTruth,
    /// The honest fitted model the schedulers consume.
    pub model: JobTimeModel,
    /// How long the least-squares fit took (Table 2).
    pub model_build_time: Duration,
}

/// Run the full pipeline for one query against the given external medium.
pub fn prepare(query: Query, external: Medium) -> PreparedQuery {
    prepare_with_sf(query, external, EXPERIMENT_SF, VOLUME_SCALE)
}

/// [`prepare`] with explicit scale factor and volume multiplier (the
/// Redis experiment of §6.3 scales the benchmark down to fit the cache).
pub fn prepare_with_sf(query: Query, external: Medium, sf: f64, volume_scale: f64) -> PreparedQuery {
    let db = Database::generate(ScaleConfig::with_sf(sf));
    let mut plan = query.prepared_plan(&db);
    plan.scale_volumes(volume_scale);
    let gt = GroundTruth::new(ExecConfig {
        external,
        ..Default::default()
    });
    let profile = profile_job(&plan.dag, &gt, &PROFILE_DOPS);
    let (model, model_build_time) = profile.build_model(&plan.dag);
    PreparedQuery {
        query,
        plan,
        gt,
        model,
        model_build_time,
    }
}

impl PreparedQuery {
    /// Schedule with the given scheduler on the given cluster.
    pub fn schedule(
        &self,
        scheduler: &dyn Scheduler,
        rm: &ResourceManager,
        objective: Objective,
    ) -> Schedule {
        let schedule = scheduler.schedule(&SchedulingContext {
            dag: &self.plan.dag,
            model: &self.model,
            resources: rm,
            objective,
        });
        // Debug builds re-derive the paper's invariants (DoP ratios,
        // placement feasibility, colocation claims) on every schedule the
        // harness produces; release figure runs skip the cost.
        #[cfg(debug_assertions)]
        {
            let report = ditto_audit::audit(&self.plan.dag, &self.model, rm, &schedule);
            assert!(
                report.is_clean(),
                "schedule for {:?} failed audit:\n{}",
                self.query,
                report.render()
            );
        }
        schedule
    }

    /// Schedule and simulate; returns the metrics the figures plot.
    pub fn run(
        &self,
        scheduler: &dyn Scheduler,
        rm: &ResourceManager,
        objective: Objective,
    ) -> JobMetrics {
        let schedule = self.schedule(scheduler, rm, objective);
        let (_, metrics) = simulate(&self.plan.dag, &schedule, &self.gt);
        metrics
    }
}

/// The paper's testbed under a slot distribution: 8 servers × 96 slots.
pub fn testbed(dist: &SlotDistribution) -> ResourceManager {
    ResourceManager::snapshot(&Cluster::paper_testbed(dist))
}

/// The §6 default: Zipf-0.9.
pub fn default_testbed() -> ResourceManager {
    testbed(&SlotDistribution::zipf_09())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_core::DittoScheduler;

    #[test]
    fn prepare_produces_consistent_artifacts() {
        let p = prepare(Query::Q95, Medium::S3);
        assert_eq!(p.plan.dag.num_stages(), 9);
        // Scaled volumes put the fact scans in the tens of GB.
        let map1 = p.plan.dag.stages().iter().find(|s| s.name == "map1").unwrap();
        assert!(
            map1.input_bytes > 10 << 30,
            "scaled input = {} bytes",
            map1.input_bytes
        );
        assert!(p.model_build_time.as_secs_f64() < 0.5);
    }

    #[test]
    fn end_to_end_run_yields_metrics() {
        let p = prepare(Query::Q1, Medium::S3);
        let rm = default_testbed();
        let m = p.run(&DittoScheduler::new(), &rm, Objective::Jct);
        assert!(m.jct > 1.0, "paper-scale JCT should be seconds+: {}", m.jct);
        assert!(m.compute_cost > 0.0);
    }
}
