//! JSON job specifications: drive the scheduler without writing Rust.
//!
//! A *job spec* describes everything the scheduler needs — the stage DAG,
//! the fitted step model per stage and edge, the resource model, the free
//! slots at arrival and the objective — as a single JSON document. The
//! `ditto-sched` binary turns a spec into a schedule:
//!
//! ```sh
//! cargo run --bin ditto-sched -- job.json
//! cat job.json | cargo run --bin ditto-sched
//! ```
//!
//! ```json
//! {
//!   "name": "wordcount",
//!   "objective": "jct",
//!   "cluster": { "free_slots": [48, 24, 12] },
//!   "stages": [
//!     { "name": "map",    "kind": "map",    "compute": {"alpha": 120, "beta": 0.5},
//!       "external_read":  {"alpha": 200, "beta": 1.0}, "rho": 16.0, "sigma": 0.125 },
//!     { "name": "reduce", "kind": "reduce", "compute": {"alpha": 30, "beta": 0.2},
//!       "external_write": {"alpha": 10, "beta": 0.5} }
//!   ],
//!   "edges": [
//!     { "src": "map", "dst": "reduce", "kind": "shuffle", "bytes": 20000000000,
//!       "write": {"alpha": 50, "beta": 0.5}, "read": {"alpha": 50, "beta": 0.5} }
//!   ]
//! }
//! ```

use ditto_cluster::ResourceManager;
use ditto_core::{joint_optimize, JointOptions, Objective, Schedule, TaskPlacement};
use ditto_dag::{DagBuilder, EdgeKind, JobDag, StageKind};
use ditto_timemodel::model::{EdgeIo, StageSteps};
use ditto_timemodel::{JobTimeModel, ResourceModel, Step, StepKind};
use serde::{Deserialize, Serialize};

/// A fitted step: `t(d) = alpha/d + beta`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct StepSpec {
    /// Parallelizable seconds·tasks.
    pub alpha: f64,
    /// Inherent seconds.
    pub beta: f64,
}

impl StepSpec {
    fn to_step(self, kind: StepKind) -> Step {
        Step::new(kind, self.alpha, self.beta)
    }
}

/// One stage of the job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageSpecJson {
    /// Unique stage name.
    pub name: String,
    /// `map`, `join`, `groupby`, `reduce` or `custom` (default `custom`).
    #[serde(default)]
    pub kind: Option<String>,
    /// External input bytes (for the NIMBLE baseline; default 0).
    #[serde(default)]
    pub input_bytes: u64,
    /// External output bytes (default 0).
    #[serde(default)]
    pub output_bytes: u64,
    /// The compute step.
    #[serde(default)]
    pub compute: StepSpec,
    /// External-read step (scanning job input).
    #[serde(default)]
    pub external_read: StepSpec,
    /// External-write step (final output).
    #[serde(default)]
    pub external_write: StepSpec,
    /// Resource model ρ in GB (default 1.0).
    #[serde(default = "default_rho")]
    pub rho: f64,
    /// Resource model σ in GB/function (default 0).
    #[serde(default)]
    pub sigma: f64,
    /// Straggler scaling factor ≥ 1 (default 1.0).
    #[serde(default = "default_scaling")]
    pub scaling: f64,
}

fn default_rho() -> f64 {
    1.0
}
fn default_scaling() -> f64 {
    1.0
}

/// One data dependency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeSpecJson {
    /// Producer stage name.
    pub src: String,
    /// Consumer stage name.
    pub dst: String,
    /// `shuffle` (default), `gather` or `all_gather`.
    #[serde(default)]
    pub kind: Option<String>,
    /// Intermediate bytes (default 0).
    #[serde(default)]
    pub bytes: u64,
    /// The producer-side write step.
    #[serde(default)]
    pub write: StepSpec,
    /// The consumer-side read step.
    #[serde(default)]
    pub read: StepSpec,
    /// Pipelining annotation (§4.5).
    #[serde(default)]
    pub pipelined: bool,
}

/// Free slots per server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpecJson {
    /// Free function slots per server, in server order.
    pub free_slots: Vec<u32>,
}

/// The full job specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name.
    pub name: String,
    /// `jct` (default) or `cost`.
    #[serde(default)]
    pub objective: Option<String>,
    /// The cluster's availability.
    pub cluster: ClusterSpecJson,
    /// Stages.
    pub stages: Vec<StageSpecJson>,
    /// Data dependencies.
    pub edges: Vec<EdgeSpecJson>,
}

/// Errors from parsing or validating a job spec.
#[derive(Debug)]
pub enum SpecError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Structurally invalid (unknown names, cycles, bad enums, …).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Invalid(m) => write!(f, "invalid job spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<serde_json::Error> for SpecError {
    fn from(e: serde_json::Error) -> Self {
        SpecError::Json(e)
    }
}

fn parse_kind(s: &Option<String>) -> Result<StageKind, SpecError> {
    Ok(match s.as_deref() {
        None | Some("custom") => StageKind::Custom,
        Some("map") => StageKind::Map,
        Some("join") => StageKind::Join,
        Some("groupby") => StageKind::GroupBy,
        Some("reduce") => StageKind::Reduce,
        Some(other) => return Err(SpecError::Invalid(format!("unknown stage kind {other:?}"))),
    })
}

fn parse_edge_kind(s: &Option<String>) -> Result<EdgeKind, SpecError> {
    Ok(match s.as_deref() {
        None | Some("shuffle") => EdgeKind::Shuffle,
        Some("gather") => EdgeKind::Gather,
        Some("all_gather") | Some("all-gather") => EdgeKind::AllGather,
        Some(other) => return Err(SpecError::Invalid(format!("unknown edge kind {other:?}"))),
    })
}

impl JobSpec {
    /// Parse a spec from JSON text.
    pub fn from_json(text: &str) -> Result<JobSpec, SpecError> {
        Ok(serde_json::from_str(text)?)
    }

    /// Lower the spec into the scheduler's inputs.
    pub fn lower(&self) -> Result<(JobDag, JobTimeModel, ResourceManager, Objective), SpecError> {
        if self.cluster.free_slots.is_empty() {
            return Err(SpecError::Invalid("cluster has no servers".into()));
        }
        let objective = match self.objective.as_deref() {
            None | Some("jct") => Objective::Jct,
            Some("cost") => Objective::Cost,
            Some(other) => {
                return Err(SpecError::Invalid(format!("unknown objective {other:?}")))
            }
        };
        let mut builder = DagBuilder::new(self.name.clone());
        for s in &self.stages {
            builder = builder.stage(&s.name, parse_kind(&s.kind)?, s.input_bytes, s.output_bytes);
        }
        for e in &self.edges {
            builder = builder.edge(&e.src, &e.dst, parse_edge_kind(&e.kind)?, e.bytes);
        }
        let mut dag = builder
            .build()
            .map_err(|e| SpecError::Invalid(e.to_string()))?;
        for (i, e) in self.edges.iter().enumerate() {
            if e.pipelined {
                dag.set_pipelined(ditto_dag::EdgeId(i as u32), true);
            }
        }

        let stages: Vec<StageSteps> = self
            .stages
            .iter()
            .map(|s| StageSteps {
                compute: s.compute.to_step(StepKind::Compute),
                external_read: s.external_read.to_step(StepKind::Read),
                external_write: s.external_write.to_step(StepKind::Write),
            })
            .collect();
        let edges: Vec<EdgeIo> = self
            .edges
            .iter()
            .map(|e| EdgeIo {
                write: e.write.to_step(StepKind::Write),
                read: e.read.to_step(StepKind::Read),
                pipelined: e.pipelined,
            })
            .collect();
        let resources: Vec<ResourceModel> = self
            .stages
            .iter()
            .map(|s| ResourceModel::new(s.rho, s.sigma))
            .collect();
        let mut model = JobTimeModel::new(&dag, stages, edges, resources);
        for (i, s) in self.stages.iter().enumerate() {
            if s.scaling < 1.0 {
                return Err(SpecError::Invalid(format!(
                    "stage {:?}: scaling must be >= 1",
                    s.name
                )));
            }
            model.set_scaling(ditto_dag::StageId(i as u32), s.scaling);
        }
        let rm = ResourceManager::from_free_slots(self.cluster.free_slots.clone());
        Ok((dag, model, rm, objective))
    }

    /// Parse, lower and schedule with Ditto; returns the schedule and the
    /// rendering-ready JSON output (including model-predicted JCT/cost).
    pub fn schedule(&self) -> Result<(Schedule, ScheduleJson), SpecError> {
        let (dag, model, rm, objective) = self.lower()?;
        let schedule = joint_optimize(&dag, &model, &rm, objective, &JointOptions::default());
        // Debug builds certify every spec-driven schedule against the
        // paper invariants before emitting it (release keeps the CLI
        // latency profile unchanged; `ditto-audit` checks explicitly).
        #[cfg(debug_assertions)]
        {
            let report = ditto_audit::audit(&dag, &model, &rm, &schedule);
            assert!(
                report.is_clean(),
                "spec {:?}: schedule failed audit:\n{}",
                self.name,
                report.render()
            );
        }
        let mut json = ScheduleJson::from_schedule(&dag, &schedule);
        let frac: Vec<f64> = schedule.dop.iter().map(|&d| d as f64).collect();
        json.predicted_jct_seconds =
            ditto_core::predicted_jct(&dag, &model, &frac, &schedule.colocated);
        json.predicted_cost_gb_s =
            ditto_core::predicted_cost(&dag, &model, &frac, &schedule.colocated);
        Ok((schedule, json))
    }
}

impl JobSpec {
    /// Schedule and then *simulate* the job against a default ground-truth
    /// execution model driven by the spec's byte volumes (`ditto-sched
    /// --simulate`). Returns the schedule JSON plus the simulated
    /// `(jct_seconds, total_cost_gb_s)`.
    pub fn simulate(&self) -> Result<(ScheduleJson, f64, f64), SpecError> {
        let (dag, _, _, _) = self.lower()?;
        let (schedule, json) = self.schedule()?;
        let gt = ditto_exec::GroundTruth::new(ditto_exec::ExecConfig::default());
        let (_, metrics) = ditto_exec::simulate(&dag, &schedule, &gt);
        Ok((json, metrics.jct, metrics.total_cost()))
    }
}

/// The schedule as emitted by `ditto-sched`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleJson {
    /// Scheduler that produced it.
    pub scheduler: String,
    /// Per-stage decisions.
    pub stages: Vec<StageScheduleJson>,
    /// Stage groups by name.
    pub groups: Vec<Vec<String>>,
    /// Model-predicted job completion time, seconds.
    #[serde(default)]
    pub predicted_jct_seconds: f64,
    /// Model-predicted cost, GB·s.
    #[serde(default)]
    pub predicted_cost_gb_s: f64,
}

/// One stage's scheduling outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageScheduleJson {
    /// Stage name.
    pub name: String,
    /// Chosen degree of parallelism.
    pub dop: u32,
    /// Tasks per server: `(server index, task count)` in task order.
    pub placement: Vec<(u32, u32)>,
}

impl ScheduleJson {
    /// Convert an in-memory schedule.
    pub fn from_schedule(dag: &JobDag, s: &Schedule) -> ScheduleJson {
        ScheduleJson {
            scheduler: s.scheduler.clone(),
            stages: dag
                .stages()
                .iter()
                .map(|st| {
                    let d = s.dop[st.id.index()];
                    let placement = match &s.placement[st.id.index()] {
                        TaskPlacement::Single(srv) => vec![(srv.0, d)],
                        TaskPlacement::Spread(parts) => {
                            parts.iter().map(|&(srv, c)| (srv.0, c)).collect()
                        }
                    };
                    StageScheduleJson {
                        name: st.name.clone(),
                        dop: d,
                        placement,
                    }
                })
                .collect(),
            groups: s
                .groups
                .iter()
                .map(|g| g.iter().map(|&id| dag.stage(id).name.clone()).collect())
                .collect(),
            predicted_jct_seconds: 0.0,
            predicted_cost_gb_s: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> &'static str {
        r#"{
            "name": "wordcount",
            "objective": "jct",
            "cluster": { "free_slots": [24, 12] },
            "stages": [
                { "name": "map", "kind": "map", "input_bytes": 10000000000,
                  "compute": {"alpha": 120.0, "beta": 0.5},
                  "external_read": {"alpha": 200.0, "beta": 1.0},
                  "rho": 16.0, "sigma": 0.125, "scaling": 1.1 },
                { "name": "reduce", "kind": "reduce",
                  "compute": {"alpha": 30.0, "beta": 0.2},
                  "external_write": {"alpha": 10.0, "beta": 0.5} }
            ],
            "edges": [
                { "src": "map", "dst": "reduce", "kind": "shuffle",
                  "bytes": 2000000000,
                  "write": {"alpha": 50.0, "beta": 0.5},
                  "read": {"alpha": 50.0, "beta": 0.5} }
            ]
        }"#
    }

    #[test]
    fn parses_and_lowers() {
        let spec = JobSpec::from_json(sample_spec()).unwrap();
        let (dag, model, rm, obj) = spec.lower().unwrap();
        assert_eq!(dag.num_stages(), 2);
        assert_eq!(rm.total_free(), 36);
        assert_eq!(obj, Objective::Jct);
        let none = model.no_colocation();
        // map: (120 + 200 + 50) × 1.1 scaling.
        let a = model.stage_alpha(&dag, ditto_dag::StageId(0), &none);
        assert!((a - 370.0 * 1.1).abs() < 1e-9, "alpha={a}");
    }

    #[test]
    fn schedules_end_to_end() {
        let spec = JobSpec::from_json(sample_spec()).unwrap();
        let (schedule, json) = spec.schedule().unwrap();
        assert_eq!(json.stages.len(), 2);
        assert!(json.stages.iter().all(|s| s.dop >= 1));
        assert!(schedule.total_slots() <= 36);
        assert!(json.predicted_jct_seconds > 0.0);
        assert!(json.predicted_cost_gb_s > 0.0);
        // The emitted JSON is itself valid JSON.
        let text = serde_json::to_string_pretty(&json).unwrap();
        let back: ScheduleJson = serde_json::from_str(&text).unwrap();
        assert_eq!(back.stages[0].name, "map");
    }

    #[test]
    fn rejects_unknown_kind() {
        let bad = sample_spec().replace("\"map\", \"kind\": \"map\"", "\"map\", \"kind\": \"mapper\"");
        let spec = JobSpec::from_json(&bad).unwrap();
        assert!(matches!(spec.lower(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn rejects_cycle() {
        let spec = JobSpec::from_json(
            r#"{
                "name": "cyc", "cluster": {"free_slots": [4]},
                "stages": [{"name": "a"}, {"name": "b"}],
                "edges": [{"src": "a", "dst": "b"}, {"src": "b", "dst": "a"}]
            }"#,
        )
        .unwrap();
        assert!(spec.lower().is_err());
    }

    #[test]
    fn rejects_bad_objective_and_scaling() {
        let spec = JobSpec::from_json(
            &sample_spec().replace("\"jct\"", "\"latency\""),
        )
        .unwrap();
        assert!(matches!(spec.lower(), Err(SpecError::Invalid(_))));

        let spec = JobSpec::from_json(&sample_spec().replace("\"scaling\": 1.1", "\"scaling\": 0.5"))
            .unwrap();
        assert!(spec.lower().is_err());
    }

    #[test]
    fn simulate_produces_metrics() {
        let spec = JobSpec::from_json(sample_spec()).unwrap();
        let (_, jct, cost) = spec.simulate().unwrap();
        assert!(jct > 0.0);
        assert!(cost > 0.0);
    }

    #[test]
    fn defaults_are_permissive() {
        let spec = JobSpec::from_json(
            r#"{
                "name": "minimal", "cluster": {"free_slots": [8]},
                "stages": [{"name": "only", "compute": {"alpha": 10.0, "beta": 0.0}}],
                "edges": []
            }"#,
        )
        .unwrap();
        let (schedule, _) = spec.schedule().unwrap();
        assert_eq!(schedule.dop.len(), 1);
    }
}
