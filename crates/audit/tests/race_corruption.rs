//! Corruption suite for the happens-before race checker: take a real
//! executor trace (which certifies clean), apply one targeted corruption
//! per case — delete a write, swap a read before its write, double-book
//! a slot, forge a cross-server shared-memory edge — and pin the exact
//! finding each corruption must produce, down to its (stage, task,
//! server, edge) provenance. This is the negative half of the checker's
//! contract: the property tests prove clean runs certify clean; this
//! file proves corrupted runs do not, and that the report names the
//! culprit rather than merely going red.

use ditto_audit::{check_trace, RaceOptions, RaceRule};
use ditto_cluster::ResourceManager;
use ditto_core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
use ditto_exec::{
    try_simulate_with_faults_traced, ExecConfig, FaultPlan, GroundTruth, RecoveryPolicy,
};
use ditto_obs::{AttrValue, EventRecord, Recorder, TraceData};
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;

const SLOTS: [u32; 2] = [8, 8];

/// One clean traced run of a diamond DAG (0 → {1, 2} → 3).
fn traced_run() -> TraceData {
    let dag = ditto_dag::generators::diamond(1 << 30);
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let rm = ResourceManager::from_free_slots(SLOTS.to_vec());
    let schedule = DittoScheduler::new().schedule(&SchedulingContext {
        dag: &dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    let gt = GroundTruth::new(ExecConfig::default());
    let obs = Recorder::new();
    try_simulate_with_faults_traced(
        &dag,
        &schedule,
        &gt,
        &FaultPlan::none(),
        &RecoveryPolicy::default(),
        None,
        &obs,
    )
    .expect("fault-free run cannot fail");
    obs.finish()
}

fn opts() -> RaceOptions {
    RaceOptions {
        capacities: Some(SLOTS.to_vec()),
        ..RaceOptions::default()
    }
}

fn attr_u64(ev: &EventRecord, key: &str) -> Option<u64> {
    match ev.attr(key) {
        Some(AttrValue::U64(v)) => Some(*v),
        _ => None,
    }
}

fn set_attr(ev: &mut EventRecord, key: &str, value: AttrValue) {
    let slot = ev
        .attrs
        .iter_mut()
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("event {} has no attr {key}", ev.name));
    slot.1 = value;
}

#[test]
fn uncorrupted_baseline_certifies_clean() {
    let report = check_trace(&traced_run(), &opts());
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.ops > 0 && report.hb_edges > 0);
}

/// Case 1: delete the committed write of stage 0, task 0. The write
/// roster must flag the launched-but-never-committed task on every edge
/// that consumes stage 0 — not any other rule, not any other task.
#[test]
fn deleting_a_write_pins_missing_write_at_stage_and_task() {
    let mut trace = traced_run();
    let idx = trace
        .events
        .iter()
        .position(|e| {
            e.name == "hb.write" && attr_u64(e, "stage") == Some(0) && attr_u64(e, "task") == Some(0)
        })
        .expect("stage 0 task 0 committed a write");
    trace.events.remove(idx);

    let report = check_trace(&trace, &opts());
    assert!(!report.is_clean());
    let missing: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RaceRule::MissingWrite)
        .collect();
    assert!(
        !missing.is_empty(),
        "deleted write must surface as missing-write:\n{}",
        report.render()
    );
    for f in &missing {
        assert_eq!(f.stage, Some(0), "wrong stage pinned: {f}");
        assert_eq!(f.task, Some(0), "wrong task pinned: {f}");
        assert!(f.edge.is_some(), "consuming edge must be named: {f}");
    }
}

/// Case 2: move one read of stage 0's output to before every commit of
/// stage 0. The commit→read rule must flag exactly that reader, with
/// the edge it read over.
#[test]
fn swapping_a_read_before_its_write_pins_read_before_write() {
    let mut trace = traced_run();
    let earliest_commit = trace
        .events
        .iter()
        .filter(|e| e.name == "hb.write" && attr_u64(e, "stage") == Some(0))
        .map(|e| e.ts)
        .fold(f64::INFINITY, f64::min);
    assert!(earliest_commit.is_finite(), "stage 0 committed writes");
    let idx = trace
        .events
        .iter()
        .position(|e| e.name == "hb.read" && attr_u64(e, "src_stage") == Some(0))
        .expect("something reads stage 0");
    let (stage, task, edge) = {
        let ev = &mut trace.events[idx];
        ev.ts = earliest_commit - 1.0;
        // Keep the op internally consistent: compute follows the read.
        set_attr(ev, "compute_start", AttrValue::F64(earliest_commit - 0.5));
        (
            attr_u64(ev, "stage").unwrap(),
            attr_u64(ev, "task").unwrap(),
            attr_u64(ev, "edge").unwrap(),
        )
    };

    let report = check_trace(&trace, &opts());
    assert!(!report.is_clean());
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == RaceRule::ReadBeforeWrite)
        .unwrap_or_else(|| panic!("swapped read must surface:\n{}", report.render()));
    assert_eq!(hit.stage, Some(stage as u32), "wrong reader stage: {hit}");
    assert_eq!(hit.task, Some(task as u32), "wrong reader task: {hit}");
    assert_eq!(hit.edge, Some(edge as u32), "wrong edge: {hit}");
}

/// Case 3: double-book server 0 by cloning one sink-stage slot interval
/// until occupancy exceeds capacity. The sweep must flag server 0 as an
/// error (no failover or replan happened, so no grace applies), naming
/// the acquire that tipped it over.
#[test]
fn double_booking_a_slot_pins_oversubscription_at_the_server() {
    let mut trace = traced_run();
    // The diamond's sink (stage 3) is consumed by nobody, so cloned
    // holds cannot trip the write roster — the oversubscription must be
    // the only finding. Book against whichever server ran sink task 0.
    let template = trace
        .events
        .iter()
        .find(|e| {
            e.name == "hb.slot_acquire"
                && attr_u64(e, "stage") == Some(3)
                && attr_u64(e, "task") == Some(0)
        })
        .expect("sink task 0 acquired a slot")
        .clone();
    let server = attr_u64(&template, "server").unwrap() as u32;
    let pair: Vec<EventRecord> = trace
        .events
        .iter()
        .filter(|e| {
            (e.name == "hb.slot_acquire" || e.name == "hb.slot_release")
                && attr_u64(e, "stage") == Some(3)
                && attr_u64(e, "task") == Some(0)
        })
        .cloned()
        .collect();
    assert_eq!(pair.len(), 2, "sink task 0 holds one slot interval");
    for k in 0..u64::from(SLOTS[server as usize]) {
        for ev in &pair {
            let mut clone = ev.clone();
            set_attr(&mut clone, "task", AttrValue::U64(1000 + k));
            trace.events.push(clone);
        }
    }

    let report = check_trace(&trace, &opts());
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == RaceRule::SlotOversubscription)
        .unwrap_or_else(|| panic!("double-booked slot must surface:\n{}", report.render()));
    assert!(report.error_count() >= 1, "no grace applies on a clean run");
    assert_eq!(hit.server, Some(server), "wrong server pinned: {hit}");
    assert_eq!(hit.stage, Some(3), "tipping acquire's stage: {hit}");
}

/// Case 4: forge a shared-memory read placed on a server where the
/// producer stage never wrote. The cross-server rule must flag exactly
/// that server and edge as an error — shared memory does not travel.
#[test]
fn forging_a_cross_server_shm_read_pins_the_foreign_server() {
    let mut trace = traced_run();
    let idx = trace
        .events
        .iter()
        .position(|e| e.name == "hb.read" && attr_u64(e, "src_stage") == Some(0))
        .expect("something reads stage 0");
    let edge = {
        let ev = &mut trace.events[idx];
        set_attr(ev, "medium", AttrValue::Str("shared-memory"));
        set_attr(ev, "server", AttrValue::U64(7));
        attr_u64(ev, "edge").unwrap()
    };

    let report = check_trace(&trace, &opts());
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == RaceRule::CrossServerShm)
        .unwrap_or_else(|| panic!("forged shm edge must surface:\n{}", report.render()));
    assert_eq!(hit.severity, ditto_audit::Severity::Error, "{hit}");
    assert_eq!(hit.server, Some(7), "foreign server pinned: {hit}");
    assert_eq!(hit.edge, Some(edge as u32), "edge pinned: {hit}");
}
