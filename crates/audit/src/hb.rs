//! Happens-before graph over a `ditto-obs` event stream.
//!
//! The executor (and the storage dataplane) emit `hb.*` instant events
//! alongside the regular telemetry: one `hb.write` per surviving task
//! output, one `hb.read` per (consumer task, in-edge), matched
//! `hb.slot_acquire`/`hb.slot_release` pairs per slot-occupancy
//! interval, `hb.seam` markers at applied replan splices, and
//! `hb.object_commit`/`hb.object_fetch` for dataplane objects. Lineage
//! recovery reuses the existing `fault.object_lost`/`fault.object_corrupt`
//! (detection) and `recovery.lineage_reexec` (heal) events.
//!
//! [`HbGraph::build`] parses those events out of a [`TraceData`] —
//! anyone's `--trace-out` artifact, not just an in-process run — into
//! typed [`Op`]s and connects them with the *intended* ordering edges of
//! the execution model ([`EdgeRule`]). Edges are added whether or not
//! the recorded timestamps respect them: the race checker
//! ([`crate::race`]) walks the edges and turns each violated one into a
//! typed finding, so "hazard → hb edge rule → finding" is a straight
//! table (DESIGN.md §6j).
//!
//! Every op gets a vector clock over the dense actor set (one actor per
//! (stage, task), plus the scheduler and storage tracks), assigned in
//! Kahn topological order. [`HbGraph::happens_before`] answers
//! reachability from the clocks; a cyclic graph (only possible on a
//! corrupted or hand-forged trace) is reported via [`HbGraph::cycle`].

use ditto_obs::{AttrValue, EventRecord, TraceData};
use std::collections::BTreeMap;

/// Which ordering rule an hb edge encodes. One variant per hazard class
/// the checker knows; DESIGN.md §6j maps each to its finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeRule {
    /// Consecutive ops of one actor, in timestamp order.
    ProgramOrder,
    /// Non-pipelined shuffle: every producer commit precedes the read.
    CommitToRead,
    /// Pipelined shuffle: the earliest producer write-start precedes the
    /// consumer's read-start (streaming may begin then, not before).
    StreamStartToRead,
    /// Pipelined shuffle: every producer commit precedes the consumer's
    /// *compute* start — the consumer cannot finish ingesting bytes that
    /// have not been emitted.
    CommitToCompute,
    /// A fault's detection precedes its lineage heal.
    DetectToHeal,
    /// A healed object's regeneration precedes every externally-stored
    /// read of the producing stage's outputs.
    HealToRead,
    /// A slot acquire precedes its matched release.
    AcquireToRelease,
    /// An applied replan's seam precedes every read over a seam edge.
    SeamToRead,
    /// A dataplane object's commit precedes each fetch of its key.
    CommitToFetch,
}

impl EdgeRule {
    /// Stable kebab-case name (used in JSON and rendered reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            EdgeRule::ProgramOrder => "program-order",
            EdgeRule::CommitToRead => "commit-to-read",
            EdgeRule::StreamStartToRead => "stream-start-to-read",
            EdgeRule::CommitToCompute => "commit-to-compute",
            EdgeRule::DetectToHeal => "detect-to-heal",
            EdgeRule::HealToRead => "heal-to-read",
            EdgeRule::AcquireToRelease => "acquire-to-release",
            EdgeRule::SeamToRead => "seam-to-read",
            EdgeRule::CommitToFetch => "commit-to-fetch",
        }
    }
}

/// What kind of event an [`Op`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `hb.write` — a task's surviving output commits (ts = commit).
    Write,
    /// `hb.read` — a task starts reading one in-edge (ts = read start).
    Read,
    /// `hb.slot_acquire` — a slot-occupancy interval opens.
    Acquire,
    /// `hb.slot_release` — a slot-occupancy interval closes.
    Release,
    /// `fault.object_lost` / `fault.object_corrupt` — first reader
    /// detects a damaged upstream object.
    Detect,
    /// `recovery.lineage_reexec` — the re-executed producer republishes.
    Heal,
    /// `hb.seam` — an applied replan splice crosses this DAG edge.
    Seam,
    /// `hb.object_commit` — dataplane object becomes durable.
    Commit,
    /// `hb.object_fetch` — dataplane object is fetched.
    Fetch,
}

/// One parsed `hb.*` (or lineage) event: the node type of the hb graph.
#[derive(Debug, Clone)]
pub struct Op {
    /// Node type.
    pub kind: OpKind,
    /// Event timestamp (commit instant for writes, read start for reads,
    /// interval endpoints for acquire/release, splice instant for seams).
    pub ts: f64,
    /// Stage the op belongs to (producer stage for detect/heal).
    pub stage: Option<u32>,
    /// Task within the stage.
    pub task: Option<u32>,
    /// Server the op ran on.
    pub server: Option<u32>,
    /// DAG edge index (reads and seams).
    pub edge: Option<u32>,
    /// Producing stage of the edge being read.
    pub src_stage: Option<u32>,
    /// Write-start instant carried by `hb.write` (streaming begins here).
    pub write_start: Option<f64>,
    /// Compute-start instant carried by `hb.read`.
    pub compute_start: Option<f64>,
    /// Whether the read's edge is pipelined.
    pub pipelined: bool,
    /// Transfer medium label of the read's edge (`"shared-memory"`,
    /// `"redis"`, `"s3"`).
    pub medium: Option<String>,
    /// Slot kind: `true` for speculative copies (run without reserving).
    pub speculative: bool,
    /// Dataplane object key (commit/fetch).
    pub key: Option<String>,
}

impl Op {
    fn blank(kind: OpKind, ts: f64) -> Self {
        Op {
            kind,
            ts,
            stage: None,
            task: None,
            server: None,
            edge: None,
            src_stage: None,
            write_start: None,
            compute_start: None,
            pipelined: false,
            medium: None,
            speculative: false,
            key: None,
        }
    }
}

/// A directed happens-before edge between two ops, tagged with the rule
/// that demands the ordering.
#[derive(Debug, Clone, Copy)]
pub struct HbEdge {
    /// Index into [`HbGraph::ops`] of the earlier op.
    pub from: usize,
    /// Index into [`HbGraph::ops`] of the later op.
    pub to: usize,
    /// Why `from` must precede `to`.
    pub rule: EdgeRule,
}

/// The happens-before graph: parsed ops, intended edges, vector clocks.
#[derive(Debug, Clone, Default)]
pub struct HbGraph {
    /// All parsed ops, in trace emission order.
    pub ops: Vec<Op>,
    /// All intended ordering edges (violations included — the race
    /// checker grades them).
    pub edges: Vec<HbEdge>,
    /// Vector clock per op over the dense actor set; empty if the graph
    /// is cyclic.
    pub clocks: Vec<Vec<u32>>,
    /// Actor index and 1-based sequence number per op (parallel to
    /// `ops`); empty if the graph is cyclic.
    pub actor_seq: Vec<(usize, u32)>,
    /// Number of distinct actors.
    pub actors: usize,
    /// Op indices left unsorted by Kahn's algorithm — non-empty iff the
    /// graph has a cycle (every listed op sits on or behind one).
    pub cycle: Vec<usize>,
    /// Count of `hb.*`-named events that failed to parse (missing or
    /// mistyped attributes).
    pub malformed: usize,
}

/// Actor identity for vector clocks: every (stage, task) pair is an
/// actor, the scheduler track is one, the storage track is one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Actor {
    Task(u32, u32),
    Scheduler,
    Storage,
}

fn attr_u64(ev: &EventRecord, key: &str) -> Option<u64> {
    match ev.attr(key)? {
        AttrValue::U64(v) => Some(*v),
        _ => None,
    }
}

fn attr_f64(ev: &EventRecord, key: &str) -> Option<f64> {
    match ev.attr(key)? {
        AttrValue::F64(v) => Some(*v),
        AttrValue::U64(v) => Some(*v as f64),
        _ => None,
    }
}

fn attr_str<'a>(ev: &'a EventRecord, key: &str) -> Option<&'a str> {
    match ev.attr(key)? {
        AttrValue::Str(s) => Some(s),
        AttrValue::Text(s) => Some(s.as_str()),
        _ => None,
    }
}

fn parse_op(ev: &EventRecord) -> Result<Option<Op>, ()> {
    let op = match ev.name {
        "hb.write" => {
            let mut op = Op::blank(OpKind::Write, ev.ts);
            op.stage = Some(attr_u64(ev, "stage").ok_or(())? as u32);
            op.task = Some(attr_u64(ev, "task").ok_or(())? as u32);
            op.server = Some(attr_u64(ev, "server").ok_or(())? as u32);
            op.write_start = Some(attr_f64(ev, "write_start").ok_or(())?);
            op
        }
        "hb.read" => {
            let mut op = Op::blank(OpKind::Read, ev.ts);
            op.stage = Some(attr_u64(ev, "stage").ok_or(())? as u32);
            op.task = Some(attr_u64(ev, "task").ok_or(())? as u32);
            op.server = Some(attr_u64(ev, "server").ok_or(())? as u32);
            op.edge = Some(attr_u64(ev, "edge").ok_or(())? as u32);
            op.src_stage = Some(attr_u64(ev, "src_stage").ok_or(())? as u32);
            op.pipelined = attr_u64(ev, "pipelined").ok_or(())? != 0;
            op.medium = Some(attr_str(ev, "medium").ok_or(())?.to_string());
            op.compute_start = Some(attr_f64(ev, "compute_start").ok_or(())?);
            op
        }
        "hb.slot_acquire" | "hb.slot_release" => {
            let kind = if ev.name == "hb.slot_acquire" {
                OpKind::Acquire
            } else {
                OpKind::Release
            };
            let mut op = Op::blank(kind, ev.ts);
            op.stage = Some(attr_u64(ev, "stage").ok_or(())? as u32);
            op.task = Some(attr_u64(ev, "task").ok_or(())? as u32);
            op.server = Some(attr_u64(ev, "server").ok_or(())? as u32);
            op.speculative = attr_str(ev, "kind").ok_or(())? == "spec";
            op
        }
        "hb.seam" => {
            let mut op = Op::blank(OpKind::Seam, ev.ts);
            op.edge = Some(attr_u64(ev, "edge").ok_or(())? as u32);
            op.src_stage = Some(attr_u64(ev, "src_stage").ok_or(())? as u32);
            op.stage = Some(attr_u64(ev, "dst_stage").ok_or(())? as u32);
            op
        }
        "fault.object_lost" | "fault.object_corrupt" => {
            let mut op = Op::blank(OpKind::Detect, ev.ts);
            op.stage = Some(attr_u64(ev, "stage").ok_or(())? as u32);
            op.task = Some(attr_u64(ev, "task").ok_or(())? as u32);
            op
        }
        "recovery.lineage_reexec" => {
            let mut op = Op::blank(OpKind::Heal, ev.ts);
            op.stage = Some(attr_u64(ev, "stage").ok_or(())? as u32);
            op.task = Some(attr_u64(ev, "task").ok_or(())? as u32);
            op
        }
        "hb.object_commit" | "hb.object_fetch" => {
            let kind = if ev.name == "hb.object_commit" {
                OpKind::Commit
            } else {
                OpKind::Fetch
            };
            let mut op = Op::blank(kind, ev.ts);
            op.key = Some(attr_str(ev, "key").ok_or(())?.to_string());
            op
        }
        _ => return Ok(None),
    };
    Ok(Some(op))
}

fn actor_of(op: &Op) -> Actor {
    match op.kind {
        OpKind::Seam => Actor::Scheduler,
        OpKind::Detect | OpKind::Heal | OpKind::Commit | OpKind::Fetch => Actor::Storage,
        _ => Actor::Task(op.stage.unwrap_or(0), op.task.unwrap_or(0)),
    }
}

impl HbGraph {
    /// Parse a trace's event stream and build the full hb graph.
    pub fn build(trace: &TraceData) -> HbGraph {
        let mut g = HbGraph::default();
        for ev in &trace.events {
            match parse_op(ev) {
                Ok(Some(op)) => g.ops.push(op),
                Ok(None) => {}
                Err(()) => g.malformed += 1,
            }
        }
        g.connect();
        g.assign_clocks();
        g
    }

    /// Add every intended ordering edge between the parsed ops.
    fn connect(&mut self) {
        /// Acquire/release op indexes of one slot, keyed by
        /// (stage, task, server, speculative).
        type SlotIntervals = BTreeMap<(u32, u32, u32, bool), (Vec<usize>, Vec<usize>)>;
        // Category indexes, all keyed deterministically.
        let mut writes_by_stage: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        let mut reads: Vec<usize> = Vec::new();
        let mut seams: Vec<usize> = Vec::new();
        let mut detects: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        let mut heals: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        let mut commits: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut fetches: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut intervals: SlotIntervals = BTreeMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            match op.kind {
                OpKind::Write => writes_by_stage
                    .entry(op.stage.unwrap_or(0))
                    .or_default()
                    .push(i),
                OpKind::Read => reads.push(i),
                OpKind::Seam => seams.push(i),
                OpKind::Detect => detects
                    .entry((op.stage.unwrap_or(0), op.task.unwrap_or(0)))
                    .or_default()
                    .push(i),
                OpKind::Heal => heals
                    .entry((op.stage.unwrap_or(0), op.task.unwrap_or(0)))
                    .or_default()
                    .push(i),
                OpKind::Commit => commits.entry(op.key.as_deref().unwrap_or("")).or_default().push(i),
                OpKind::Fetch => fetches.entry(op.key.as_deref().unwrap_or("")).or_default().push(i),
                OpKind::Acquire | OpKind::Release => {
                    let slot = intervals
                        .entry((
                            op.stage.unwrap_or(0),
                            op.task.unwrap_or(0),
                            op.server.unwrap_or(0),
                            op.speculative,
                        ))
                        .or_default();
                    if op.kind == OpKind::Acquire {
                        slot.0.push(i);
                    } else {
                        slot.1.push(i);
                    }
                }
            }
        }

        // Program order: each actor's ops chained by (ts, emission index).
        let mut per_actor: BTreeMap<Actor, Vec<usize>> = BTreeMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            per_actor.entry(actor_of(op)).or_default().push(i);
        }
        for ops in per_actor.values_mut() {
            ops.sort_by(|&a, &b| {
                self.ops[a]
                    .ts
                    .partial_cmp(&self.ops[b].ts)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for pair in ops.windows(2) {
                self.edges.push(HbEdge {
                    from: pair[0],
                    to: pair[1],
                    rule: EdgeRule::ProgramOrder,
                });
            }
        }

        // Shuffle-ordering rules, per read.
        for &r in &reads {
            let src = self.ops[r].src_stage.unwrap_or(0);
            let Some(ws) = writes_by_stage.get(&src) else {
                continue; // missing writes are the race checker's roster job
            };
            if self.ops[r].pipelined {
                // Streaming begins at the earliest producer write-start...
                if let Some(&w_first) = ws.iter().min_by(|&&a, &&b| {
                    let ka = self.ops[a].write_start.unwrap_or(f64::INFINITY);
                    let kb = self.ops[b].write_start.unwrap_or(f64::INFINITY);
                    ka.partial_cmp(&kb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                }) {
                    self.edges.push(HbEdge {
                        from: w_first,
                        to: r,
                        rule: EdgeRule::StreamStartToRead,
                    });
                }
                // ...but ingestion cannot outrun any producer's commit.
                for &w in ws {
                    self.edges.push(HbEdge {
                        from: w,
                        to: r,
                        rule: EdgeRule::CommitToCompute,
                    });
                }
            } else {
                for &w in ws {
                    self.edges.push(HbEdge {
                        from: w,
                        to: r,
                        rule: EdgeRule::CommitToRead,
                    });
                }
            }
        }

        // Lineage: detection precedes heal (paired in emission order);
        // heal precedes every externally-stored read of that stage.
        for (key, ds) in &detects {
            if let Some(hs) = heals.get(key) {
                for (&d, &h) in ds.iter().zip(hs.iter()) {
                    self.edges.push(HbEdge {
                        from: d,
                        to: h,
                        rule: EdgeRule::DetectToHeal,
                    });
                }
            }
        }
        for ((src, _task), hs) in &heals {
            for &h in hs {
                for &r in &reads {
                    let rd = &self.ops[r];
                    if rd.src_stage == Some(*src)
                        && rd.medium.as_deref() != Some("shared-memory")
                    {
                        self.edges.push(HbEdge {
                            from: h,
                            to: r,
                            rule: EdgeRule::HealToRead,
                        });
                    }
                }
            }
        }

        // Slot intervals: acquire precedes its matched release.
        for (acqs, rels) in intervals.values() {
            for (&a, &rel) in acqs.iter().zip(rels.iter()) {
                self.edges.push(HbEdge {
                    from: a,
                    to: rel,
                    rule: EdgeRule::AcquireToRelease,
                });
            }
        }

        // Replan seams: the splice precedes every read over a seam edge.
        for &sm in &seams {
            let e = self.ops[sm].edge;
            for &r in &reads {
                if self.ops[r].edge == e {
                    self.edges.push(HbEdge {
                        from: sm,
                        to: r,
                        rule: EdgeRule::SeamToRead,
                    });
                }
            }
        }

        // Dataplane objects: commit precedes each fetch of the same key.
        for (key, cs) in &commits {
            if let Some(fs) = fetches.get(key) {
                for &c in cs {
                    for &f in fs {
                        self.edges.push(HbEdge {
                            from: c,
                            to: f,
                            rule: EdgeRule::CommitToFetch,
                        });
                    }
                }
            }
        }
    }

    /// Kahn topological sort + vector-clock assignment. On a cycle,
    /// `cycle` lists the unsortable ops and clocks stay empty.
    fn assign_clocks(&mut self) {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            indeg[e.to] += 1;
            out[e.from].push(e.to);
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(i);
            for &j in &out[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if order.len() != n {
            self.cycle = (0..n).filter(|&i| indeg[i] > 0).collect();
            return;
        }

        // Dense actor ids, then clocks in topo order: join predecessors,
        // tick own component.
        let mut actor_ids: BTreeMap<Actor, usize> = BTreeMap::new();
        for op in &self.ops {
            let next = actor_ids.len();
            actor_ids.entry(actor_of(op)).or_insert(next);
        }
        self.actors = actor_ids.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            preds[e.to].push(e.from);
        }
        self.clocks = vec![Vec::new(); n];
        self.actor_seq = vec![(0, 0); n];
        for &i in &order {
            let mut clock = vec![0u32; self.actors];
            for &p in &preds[i] {
                for (c, &pc) in clock.iter_mut().zip(self.clocks[p].iter()) {
                    *c = (*c).max(pc);
                }
            }
            let a = actor_ids[&actor_of(&self.ops[i])];
            clock[a] += 1;
            self.actor_seq[i] = (a, clock[a]);
            self.clocks[i] = clock;
        }
    }

    /// Whether op `a` happens before op `b` under the intended edges
    /// (transitive). Meaningless (always `false`) on a cyclic graph.
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        if a == b || self.clocks.is_empty() {
            return false;
        }
        let (actor, seq) = self.actor_seq[a];
        self.clocks[b].get(actor).is_some_and(|&c| c >= seq)
    }

    /// Count of edges per rule, in declaration order — the report's
    /// one-line summary of what was actually constrained.
    pub fn edge_counts(&self) -> Vec<(EdgeRule, usize)> {
        let rules = [
            EdgeRule::ProgramOrder,
            EdgeRule::CommitToRead,
            EdgeRule::StreamStartToRead,
            EdgeRule::CommitToCompute,
            EdgeRule::DetectToHeal,
            EdgeRule::HealToRead,
            EdgeRule::AcquireToRelease,
            EdgeRule::SeamToRead,
            EdgeRule::CommitToFetch,
        ];
        rules
            .iter()
            .map(|&r| (r, self.edges.iter().filter(|e| e.rule == r).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_obs::{Recorder, Track};

    fn tiny_trace() -> TraceData {
        let rec = Recorder::new();
        // Producer stage 0 task 0 writes at t=2 (write started at 1.5).
        rec.event(
            "hb.write",
            Track::server(0, 0),
            2.0,
            vec![
                ("stage", 0u32.into()),
                ("task", 0u32.into()),
                ("server", 0u32.into()),
                ("write_start", 1.5f64.into()),
            ],
        );
        // Consumer stage 1 task 0 reads the edge at t=2 (non-pipelined).
        rec.event(
            "hb.read",
            Track::server(0, 1),
            2.0,
            vec![
                ("stage", 1u32.into()),
                ("task", 0u32.into()),
                ("server", 0u32.into()),
                ("edge", 0u32.into()),
                ("src_stage", 0u32.into()),
                ("pipelined", 0u32.into()),
                ("medium", "s3".into()),
                ("compute_start", 2.5f64.into()),
            ],
        );
        rec.finish()
    }

    #[test]
    fn builds_commit_to_read_edge_and_clocks() {
        let g = HbGraph::build(&tiny_trace());
        assert_eq!(g.ops.len(), 2);
        assert_eq!(g.malformed, 0);
        assert!(g.cycle.is_empty());
        assert!(g
            .edges
            .iter()
            .any(|e| e.rule == EdgeRule::CommitToRead && e.from == 0 && e.to == 1));
        // Write and read are different actors; the edge orders them.
        assert_eq!(g.actors, 2);
        assert!(g.happens_before(0, 1));
        assert!(!g.happens_before(1, 0));
    }

    #[test]
    fn malformed_hb_events_are_counted_not_fatal() {
        let rec = Recorder::new();
        rec.event("hb.write", Track::server(0, 0), 1.0, vec![("stage", 0u32.into())]);
        rec.event("sched.merge", Track::scheduler(0), 0.0, vec![]);
        let g = HbGraph::build(&rec.finish());
        assert_eq!(g.ops.len(), 0);
        assert_eq!(g.malformed, 1);
    }

    #[test]
    fn vector_clocks_agree_with_reachability() {
        // Diamond over four actors: w -> r1, w -> r2, r1/r2 unordered.
        let rec = Recorder::new();
        rec.event(
            "hb.write",
            Track::server(0, 0),
            1.0,
            vec![
                ("stage", 0u32.into()),
                ("task", 0u32.into()),
                ("server", 0u32.into()),
                ("write_start", 0.5f64.into()),
            ],
        );
        for task in 0..2u32 {
            rec.event(
                "hb.read",
                Track::server(0, 1),
                1.0,
                vec![
                    ("stage", 1u32.into()),
                    ("task", task.into()),
                    ("server", 0u32.into()),
                    ("edge", 0u32.into()),
                    ("src_stage", 0u32.into()),
                    ("pipelined", 0u32.into()),
                    ("medium", "redis".into()),
                    ("compute_start", 1.5f64.into()),
                ],
            );
        }
        let g = HbGraph::build(&rec.finish());
        assert!(g.happens_before(0, 1));
        assert!(g.happens_before(0, 2));
        assert!(!g.happens_before(1, 2));
        assert!(!g.happens_before(2, 1));
    }
}
