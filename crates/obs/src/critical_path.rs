//! Critical-path attribution: explain JCT from the event stream.
//!
//! Walks a finished trace backwards from the last task completion,
//! always following the task span that covers the instant in question,
//! and charges every second of the job completion time to a
//! `(stage, step)` pair — or to *wait* (scheduling / dependency gaps
//! where no task on the critical chain was running). The attribution
//! sums to the JCT exactly by construction, reproducing the paper's
//! Fig. 14 step breakdown from telemetry instead of bespoke trace code.

use crate::span::{SpanRecord, TraceData};
use crate::timings::StepTimings;

const EPS: f64 = 1e-9;

/// JCT attributed to one stage on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAttribution {
    /// Stage index.
    pub stage: u32,
    /// Seconds charged to each step of this stage.
    pub steps: StepTimings,
    /// Seconds of critical-path wait immediately before this stage's
    /// tasks (dependency stalls, scheduling gaps).
    pub wait: f64,
}

impl StageAttribution {
    /// Total seconds this stage contributes to the JCT.
    pub fn total(&self) -> f64 {
        self.steps.total() + self.wait
    }
}

/// Result of [`critical_path`].
#[derive(Debug, Clone, Default)]
pub struct CriticalPathReport {
    /// Job completion time (latest task end), seconds.
    pub jct: f64,
    /// Per-stage attribution, ordered by stage index.
    pub stages: Vec<StageAttribution>,
    /// Leading wait before the first critical task (JIT launch delay, …).
    pub lead_wait: f64,
}

impl CriticalPathReport {
    /// Sum of all attributed seconds; equals [`jct`](Self::jct) up to
    /// floating-point error.
    pub fn attributed(&self) -> f64 {
        self.lead_wait + self.stages.iter().map(StageAttribution::total).sum::<f64>()
    }

    /// Human-readable breakdown table (fractions of JCT per stage/step).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("critical path: jct = {:.4}s\n", self.jct));
        out.push_str(&format!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}\n",
            "stage", "setup", "read", "compute", "write", "wait", "% jct"
        ));
        if self.lead_wait > EPS {
            out.push_str(&format!(
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10.4} {:>7.1}%\n",
                "-", "-", "-", "-", "-", self.lead_wait,
                100.0 * self.lead_wait / self.jct.max(EPS)
            ));
        }
        for s in &self.stages {
            out.push_str(&format!(
                "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>7.1}%\n",
                s.stage,
                s.steps.setup,
                s.steps.read,
                s.steps.compute,
                s.steps.write,
                s.wait,
                100.0 * s.total() / self.jct.max(EPS)
            ));
        }
        out
    }
}

/// Step boundaries of a task span, falling back to all-compute when the
/// phase attrs are absent or inconsistent.
fn bounds(span: &SpanRecord) -> [f64; 5] {
    if let (Some(r), Some(c), Some(w)) = (
        span.attr_f64("read_start"),
        span.attr_f64("compute_start"),
        span.attr_f64("write_start"),
    ) {
        let b = [span.start, r, c, w, span.end];
        if b.windows(2).all(|p| p[1] >= p[0]) {
            return b;
        }
    }
    [span.start, span.start, span.start, span.end, span.end]
}

/// Attribute the JCT of a finished trace to stages and steps along the
/// critical path. Only spans named `task` (the per-task outcome
/// timelines) participate; returns an empty report when there are none.
pub fn critical_path(data: &TraceData) -> CriticalPathReport {
    let tasks: Vec<&SpanRecord> = data
        .spans
        .iter()
        .filter(|s| s.name == "task" && s.end.is_finite() && s.attr_u64("stage").is_some())
        .collect();
    if tasks.is_empty() {
        return CriticalPathReport::default();
    }

    let jct = tasks.iter().map(|s| s.end).fold(0.0, f64::max);
    let mut per_stage: std::collections::BTreeMap<u32, StageAttribution> = Default::default();
    let mut lead_wait = 0.0;

    let mut t = jct;
    let mut next_stage: Option<u32> = None;
    while t > EPS {
        // The covering task that started latest — the tightest link of
        // the dependency chain ending at `t`.
        let cover = tasks
            .iter()
            .filter(|s| s.start < t - EPS && s.end >= t - EPS)
            .max_by(|a, b| a.start.total_cmp(&b.start));
        match cover {
            Some(span) => {
                let stage = span.attr_u64("stage").unwrap() as u32;
                let seg_start = span.start.max(0.0);
                let b = bounds(span);
                let entry = per_stage.entry(stage).or_insert(StageAttribution {
                    stage,
                    steps: StepTimings::zero(),
                    wait: 0.0,
                });
                let slots = [
                    &mut entry.steps.setup,
                    &mut entry.steps.read,
                    &mut entry.steps.compute,
                    &mut entry.steps.write,
                ];
                for (i, slot) in slots.into_iter().enumerate() {
                    let overlap = (t.min(b[i + 1]) - seg_start.max(b[i])).max(0.0);
                    *slot += overlap;
                }
                next_stage = Some(stage);
                t = seg_start;
            }
            None => {
                // Gap: no task runs at `t`. Charge it as wait before the
                // stage we just walked out of, then jump to the previous
                // task end (or time zero).
                let prev_end = tasks
                    .iter()
                    .map(|s| s.end)
                    .filter(|e| *e < t - EPS)
                    .fold(0.0, f64::max);
                let gap = t - prev_end;
                match next_stage.and_then(|s| per_stage.get_mut(&s)) {
                    Some(entry) => entry.wait += gap,
                    None => lead_wait += gap,
                }
                t = prev_end;
            }
        }
    }

    CriticalPathReport {
        jct,
        stages: per_stage.into_values().collect(),
        lead_wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Track};

    fn task(rec: &Recorder, stage: u32, start: f64, r: f64, c: f64, w: f64, end: f64) {
        rec.span(
            "task",
            Track::server(0, stage),
            start,
            end,
            vec![
                ("stage", stage.into()),
                ("read_start", r.into()),
                ("compute_start", c.into()),
                ("write_start", w.into()),
            ],
        );
    }

    #[test]
    fn chain_attribution_sums_to_jct() {
        let rec = Recorder::new();
        // stage 0: 0..4 (read 0..1, compute 1..3, write 3..4)
        task(&rec, 0, 0.0, 0.0, 1.0, 3.0, 4.0);
        // gap 4..5, then stage 1: 5..9
        task(&rec, 1, 5.0, 5.5, 6.0, 8.0, 9.0);
        // a short off-path task that must not matter
        task(&rec, 0, 0.0, 0.0, 0.5, 1.0, 1.5);
        let report = critical_path(&rec.finish());
        assert!((report.jct - 9.0).abs() < 1e-9);
        assert!((report.attributed() - report.jct).abs() < 1e-9);
        assert_eq!(report.stages.len(), 2);
        let s1 = &report.stages[1];
        assert!((s1.wait - 1.0).abs() < 1e-9, "gap charged as stage-1 wait");
        assert!((s1.steps.setup - 0.5).abs() < 1e-9);
        assert!((s1.steps.compute - 2.0).abs() < 1e-9);
        let s0 = &report.stages[0];
        assert!((s0.steps.read - 1.0).abs() < 1e-9);
        assert!((s0.steps.write - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gap_before_first_task_charged_as_its_wait() {
        let rec = Recorder::new();
        task(&rec, 0, 2.0, 2.0, 2.5, 3.5, 4.0);
        let report = critical_path(&rec.finish());
        assert!((report.stages[0].wait - 2.0).abs() < 1e-9);
        assert!((report.attributed() - 4.0).abs() < 1e-9);
        assert!(report.render().contains("% jct"));
    }

    #[test]
    fn overlapping_tasks_follow_latest_start() {
        let rec = Recorder::new();
        task(&rec, 0, 0.0, 0.0, 0.0, 5.0, 5.0); // long compute
        task(&rec, 1, 3.0, 3.0, 3.5, 5.5, 6.0); // overlaps, ends last
        let report = critical_path(&rec.finish());
        assert!((report.jct - 6.0).abs() < 1e-9);
        assert!((report.attributed() - 6.0).abs() < 1e-9);
        // stage 1 charged 3..6, stage 0 charged 0..3.
        let s1 = report.stages.iter().find(|s| s.stage == 1).unwrap();
        assert!((s1.total() - 3.0).abs() < 1e-9);
        let s0 = report.stages.iter().find(|s| s.stage == 0).unwrap();
        assert!((s0.total() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let report = critical_path(&Recorder::new().finish());
        assert_eq!(report.jct, 0.0);
        assert!(report.stages.is_empty());
    }

    #[test]
    fn tasks_without_step_attrs_count_as_compute() {
        let rec = Recorder::new();
        rec.span(
            "task",
            Track::server(0, 0),
            0.0,
            3.0,
            vec![("stage", 0u32.into())],
        );
        let report = critical_path(&rec.finish());
        assert!((report.stages[0].steps.compute - 3.0).abs() < 1e-9);
        assert!((report.attributed() - 3.0).abs() < 1e-9);
    }
}
