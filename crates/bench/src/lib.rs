#![warn(missing_docs)]

//! # ditto-bench — the evaluation harness
//!
//! One function per table and figure of the paper's §6, all built on the
//! same pipeline ([`setup`]):
//!
//! 1. generate the synthetic TPC-DS-like database,
//! 2. lower and *measure* the query plan (laptop-scale volumes), then
//!    scale volumes to paper magnitudes,
//! 3. profile the job against the ground truth at five DoPs and fit the
//!    execution-time model (the scheduler never sees the ground truth
//!    directly — only this honest fit, as in the paper),
//! 4. schedule with Ditto and the baselines, simulate, and report.
//!
//! The `figures` binary renders any experiment as an ASCII table and JSON;
//! the Criterion benches measure scheduling and model-building overhead
//! (Tables 1 and 2).

pub mod ablations;
pub mod adapt;
pub mod audit_sweep;
pub mod crash;
pub mod experiments;
pub mod history;
pub mod race_sweep;
pub mod report;
pub mod sched_bench;
pub mod setup;
pub mod sql_bench;
pub mod telemetry;

pub use ablations::all_ablations;
pub use adapt::{adapt_sweep, adapt_sweep_grid, adapt_sweep_smoke, traced_adapt_pair, AdaptSweepRow};
pub use audit_sweep::{
    audit_sweep, audit_sweep_traced, sweep_is_clean, AuditSweepRow, AUDIT_SWEEP_SEEDS,
};
pub use crash::{crash_sweep, crash_sweep_smoke, traced_crash_recovery, CrashSweepRow};
pub use history::{
    append_history, check_regression, history_path, load_history, HistoryRecord, MetricStatus,
    MetricVerdict, RegressOptions, RegressReport,
};
pub use experiments::*;
pub use race_sweep::{race_certify, race_explore, RaceExploreRow, RaceSweepRow};
pub use report::{render_rows, write_json};
pub use sched_bench::{sched_bench, sched_bench_sizes, sched_bench_smoke, SchedBenchRow};
pub use setup::{prepare, PreparedQuery, VOLUME_SCALE};
pub use sql_bench::{sql_bench, sql_bench_smoke, sql_bench_with, SqlBenchRow};
pub use telemetry::{telemetry_overhead, traced_fault_run, TelemetryOverheadRow, TracedRun};
