//! Selection vectors: deferred row selection for filter/project chains.
//!
//! A [`SelVec`] names the surviving rows of a table without materializing
//! them. Predicate evaluation produces a `SelVec` from a boolean mask;
//! gathering through it builds the output columns in one pass, with the
//! all-rows and contiguous-run cases degrading to plain slice copies
//! instead of per-element index chasing.

use crate::column::Column;
use crate::table::{Field, Schema, Table};

/// A set of selected row indices, in ascending order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelVec {
    /// The contiguous run `start .. start + len` (covers "all rows" and
    /// prefix/suffix selections without storing indices).
    Range {
        /// First selected row.
        start: usize,
        /// Number of selected rows.
        len: usize,
    },
    /// Explicit ascending row indices.
    Rows(Vec<u32>),
}

impl SelVec {
    /// Select every row of an `n`-row table.
    pub fn all(n: usize) -> SelVec {
        SelVec::Range { start: 0, len: n }
    }

    /// The rows where `mask` is `true`. Detects contiguous selections
    /// (including all-true and all-false) and represents them as a
    /// [`SelVec::Range`] so gathering stays a block copy.
    pub fn from_mask(mask: &[bool]) -> SelVec {
        let n = mask.iter().filter(|&&m| m).count();
        let first = mask.iter().position(|&m| m).unwrap_or(0);
        // Contiguous iff the n selected rows start at `first` and run
        // without a gap.
        if mask[first..].iter().take(n).all(|&m| m) {
            return SelVec::Range { start: first, len: n };
        }
        let mut rows = Vec::with_capacity(n);
        for (i, &m) in mask.iter().enumerate() {
            if m {
                rows.push(i as u32);
            }
        }
        SelVec::Rows(rows)
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            SelVec::Range { len, .. } => *len,
            SelVec::Rows(r) => r.len(),
        }
    }

    /// `true` when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Column {
    /// Gather the selected rows into a new column. Contiguous selections
    /// copy the underlying slice in one block.
    pub fn gather(&self, sel: &SelVec) -> Column {
        match sel {
            SelVec::Range { start, len } => self.slice(*start, *len),
            SelVec::Rows(rows) => match self {
                Column::I64(v) => {
                    Column::I64(rows.iter().map(|&i| v[i as usize]).collect())
                }
                Column::F64(v) => {
                    Column::F64(rows.iter().map(|&i| v[i as usize]).collect())
                }
                Column::Str(v) => {
                    Column::Str(rows.iter().map(|&i| v[i as usize].clone()).collect())
                }
            },
        }
    }
}

impl Table {
    /// Gather the selected rows of every column.
    pub fn gather(&self, sel: &SelVec) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(sel)).collect(),
        }
    }

    /// Gather the selected rows of the named columns only — a fused
    /// filter+project that never materializes the unprojected filtered
    /// table.
    ///
    /// # Panics
    /// Panics like [`Table::project`] when a name is missing.
    pub fn gather_project(&self, sel: &SelVec, names: &[&str]) -> Table {
        let mut fields = Vec::with_capacity(names.len());
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let i = self
                .schema
                .index_of(n)
                .unwrap_or_else(|| panic!("no column {n:?} to project"));
            fields.push(Field {
                name: self.schema.fields[i].name.clone(),
                dtype: self.schema.fields[i].dtype,
            });
            cols.push(self.columns[i].gather(sel));
        }
        Table::new(Schema { fields }, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;

    fn t() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("s", DataType::Str)]),
            vec![
                Column::I64(vec![1, 2, 3, 4, 5]),
                Column::Str(vec![
                    "a".into(),
                    "b".into(),
                    "c".into(),
                    "d".into(),
                    "e".into(),
                ]),
            ],
        )
    }

    #[test]
    fn from_mask_detects_ranges() {
        assert_eq!(
            SelVec::from_mask(&[true, true, true]),
            SelVec::Range { start: 0, len: 3 }
        );
        assert_eq!(
            SelVec::from_mask(&[false, true, true, false]),
            SelVec::Range { start: 1, len: 2 }
        );
        assert_eq!(
            SelVec::from_mask(&[false, false]),
            SelVec::Range { start: 0, len: 0 }
        );
        assert_eq!(
            SelVec::from_mask(&[true, false, true]),
            SelVec::Rows(vec![0, 2])
        );
        assert_eq!(SelVec::from_mask(&[]), SelVec::Range { start: 0, len: 0 });
    }

    #[test]
    fn gather_equals_filter() {
        let t = t();
        for mask in [
            vec![true, false, true, false, true],
            vec![false; 5],
            vec![true; 5],
            vec![false, true, true, true, false],
        ] {
            let sel = SelVec::from_mask(&mask);
            assert_eq!(t.gather(&sel), t.filter(&mask));
        }
    }

    #[test]
    fn gather_project_fuses() {
        let t = t();
        let mask = vec![true, false, false, true, true];
        let sel = SelVec::from_mask(&mask);
        let fused = t.gather_project(&sel, &["s"]);
        let two_step = t.filter(&mask).project(&["s"]);
        assert_eq!(fused, two_step);
    }

    #[test]
    #[should_panic(expected = "to project")]
    fn gather_project_missing_column_panics() {
        t().gather_project(&SelVec::all(5), &["zzz"]);
    }

    #[test]
    fn selvec_len() {
        assert_eq!(SelVec::all(7).len(), 7);
        assert!(SelVec::all(0).is_empty());
        assert_eq!(SelVec::Rows(vec![3, 9]).len(), 2);
    }
}
