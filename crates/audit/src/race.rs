//! Race checker over a recorded trace's happens-before graph.
//!
//! [`check_trace`] rebuilds the [`crate::hb::HbGraph`] from any
//! [`TraceData`] (an in-process run or a re-imported `--trace-out`
//! artifact) and grades every intended ordering edge against the
//! recorded timestamps, plus three whole-trace checks the edge walk
//! cannot express: a write roster (every launched task of a consumed
//! stage must have committed an output), a per-server slot-occupancy
//! sweep against capacities, and cross-server shared-memory use.
//!
//! Every violation is a typed [`RaceFinding`] with (stage, task,
//! server, edge, object) provenance, mirroring the schedule auditor's
//! [`crate::AuditFinding`]. `Error` findings break an invariant the
//! executor guarantees; `Warning` marks legal-but-suspicious states
//! (speculative copies over-committing a server, best-effort packing
//! after a failover). DESIGN.md §6j maps each hazard to its hb edge
//! rule and finding.

use crate::hb::{EdgeRule, HbGraph, Op, OpKind};
use crate::report::{json_escape, Severity};
use ditto_obs::{AttrValue, TraceData};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which race hazard a finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceRule {
    /// A consumer's read (or pipelined ingest) starts before a producer
    /// commit / stream start it depends on.
    ReadBeforeWrite,
    /// A launched task of a consumed stage never committed an output,
    /// or a fetched dataplane key was never committed.
    MissingWrite,
    /// More concurrent slot holds on a server than it has capacity for.
    SlotOversubscription,
    /// A shared-memory read whose producer wrote on a different server.
    CrossServerShm,
    /// A read over a replan seam edge that started before the splice —
    /// it consumed the pre-replan placement the scheduler masked out.
    SeamBypassRead,
    /// A read of a faulted object before its lineage heal completed.
    StaleObjectRead,
    /// The happens-before graph itself is cyclic (corrupt trace).
    HbCycle,
}

impl RaceRule {
    /// Stable kebab-case name (used in JSON and the rendered report).
    pub fn as_str(&self) -> &'static str {
        match self {
            RaceRule::ReadBeforeWrite => "read-before-write",
            RaceRule::MissingWrite => "missing-write",
            RaceRule::SlotOversubscription => "slot-oversubscription",
            RaceRule::CrossServerShm => "cross-server-shm",
            RaceRule::SeamBypassRead => "seam-bypass-read",
            RaceRule::StaleObjectRead => "stale-object-read",
            RaceRule::HbCycle => "hb-cycle",
        }
    }
}

impl fmt::Display for RaceRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning knobs for [`check_trace`].
#[derive(Debug, Clone)]
pub struct RaceOptions {
    /// Per-server slot capacities. `None` skips the oversubscription
    /// sweep (the trace alone does not know the cluster size).
    pub capacities: Option<Vec<u32>>,
    /// Timestamp slop in seconds. Chrome export rounds to integral
    /// microseconds, so re-imported traces need at least 1 µs; the
    /// default 5 µs also absorbs the executor's own 1e-9 batch slop.
    pub eps: f64,
}

impl Default for RaceOptions {
    fn default() -> Self {
        RaceOptions {
            capacities: None,
            eps: 5e-6,
        }
    }
}

/// One detected (or suspicious) race, with provenance.
#[derive(Debug, Clone)]
pub struct RaceFinding {
    /// The hazard class.
    pub rule: RaceRule,
    /// Error (broken ordering invariant) or warning (legal but worth a
    /// look).
    pub severity: Severity,
    /// Consumer-side stage, if stage-anchored.
    pub stage: Option<u32>,
    /// Task within the stage.
    pub task: Option<u32>,
    /// Server the hazard is anchored at.
    pub server: Option<u32>,
    /// DAG edge index, if edge-anchored.
    pub edge: Option<u32>,
    /// Dataplane object key, if object-anchored.
    pub object: Option<String>,
    /// Human-readable explanation with the measured instants.
    pub detail: String,
}

impl RaceFinding {
    /// An error finding with no provenance (filled in by builders).
    pub fn error(rule: RaceRule, detail: impl Into<String>) -> Self {
        RaceFinding {
            rule,
            severity: Severity::Error,
            stage: None,
            task: None,
            server: None,
            edge: None,
            object: None,
            detail: detail.into(),
        }
    }

    /// A warning finding with no provenance.
    pub fn warning(rule: RaceRule, detail: impl Into<String>) -> Self {
        RaceFinding {
            severity: Severity::Warning,
            ..RaceFinding::error(rule, detail)
        }
    }

    /// Anchor at a stage.
    pub fn at_stage(mut self, stage: u32) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Anchor at a task.
    pub fn at_task(mut self, task: u32) -> Self {
        self.task = Some(task);
        self
    }

    /// Anchor at a server.
    pub fn at_server(mut self, server: u32) -> Self {
        self.server = Some(server);
        self
    }

    /// Anchor at a DAG edge.
    pub fn at_edge(mut self, edge: u32) -> Self {
        self.edge = Some(edge);
        self
    }

    /// Anchor at a dataplane object key.
    pub fn at_object(mut self, key: impl Into<String>) -> Self {
        self.object = Some(key.into());
        self
    }
}

impl fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.severity.as_str(), self.rule)?;
        if let Some(s) = self.stage {
            write!(f, " stage={s}")?;
        }
        if let Some(t) = self.task {
            write!(f, " task={t}")?;
        }
        if let Some(srv) = self.server {
            write!(f, " server={srv}")?;
        }
        if let Some(e) = self.edge {
            write!(f, " edge={e}")?;
        }
        if let Some(k) = &self.object {
            write!(f, " object={k}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The race checker's output.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Every finding, in deterministic discovery order.
    pub findings: Vec<RaceFinding>,
    /// Parsed hb ops (graph nodes).
    pub ops: usize,
    /// Intended ordering edges checked.
    pub hb_edges: usize,
    /// `hb.*` events that failed to parse.
    pub malformed: usize,
}

impl RaceReport {
    /// No error-severity findings (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "race: {} ops, {} hb edges, {} malformed, {} errors, {} warnings",
            self.ops,
            self.hb_edges,
            self.malformed,
            self.error_count(),
            self.warning_count()
        );
        for fnd in &self.findings {
            let _ = writeln!(out, "  {fnd}");
        }
        out
    }

    /// The report as a JSON document (stable field order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"ops\":{},\"hb_edges\":{},\"malformed\":{},\"errors\":{},\"warnings\":{},\"findings\":[",
            self.ops,
            self.hb_edges,
            self.malformed,
            self.error_count(),
            self.warning_count()
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"severity\":\"{}\"",
                f.rule.as_str(),
                f.severity.as_str()
            );
            if let Some(s) = f.stage {
                let _ = write!(out, ",\"stage\":{s}");
            }
            if let Some(t) = f.task {
                let _ = write!(out, ",\"task\":{t}");
            }
            if let Some(srv) = f.server {
                let _ = write!(out, ",\"server\":{srv}");
            }
            if let Some(e) = f.edge {
                let _ = write!(out, ",\"edge\":{e}");
            }
            if let Some(k) = &f.object {
                let _ = write!(out, ",\"object\":\"{}\"", json_escape(k));
            }
            let _ = write!(out, ",\"detail\":\"{}\"}}", json_escape(&f.detail));
        }
        out.push_str("]}");
        out
    }
}

fn anchor_read(f: RaceFinding, r: &Op) -> RaceFinding {
    let mut f = f;
    if let Some(s) = r.stage {
        f = f.at_stage(s);
    }
    if let Some(t) = r.task {
        f = f.at_task(t);
    }
    if let Some(srv) = r.server {
        f = f.at_server(srv);
    }
    if let Some(e) = r.edge {
        f = f.at_edge(e);
    }
    f
}

/// Check one recorded trace for races. Pure function of the trace and
/// the options; deterministic finding order.
pub fn check_trace(trace: &TraceData, opts: &RaceOptions) -> RaceReport {
    let g = HbGraph::build(trace);
    let eps = opts.eps;
    let mut report = RaceReport {
        ops: g.ops.len(),
        hb_edges: g.edges.len(),
        malformed: g.malformed,
        ..Default::default()
    };

    // A cyclic graph means the trace itself is inconsistent; the edge
    // walk below still runs (timestamps are edge-local).
    if !g.cycle.is_empty() {
        let mut sample: Vec<String> = Vec::new();
        for &i in g.cycle.iter().take(6) {
            sample.push(format!("op#{i}({:?}@{:.6})", g.ops[i].kind, g.ops[i].ts));
        }
        report.findings.push(RaceFinding::error(
            RaceRule::HbCycle,
            format!(
                "{} ops on or behind a happens-before cycle: {}",
                g.cycle.len(),
                sample.join(", ")
            ),
        ));
    }

    // Edge walk: grade each intended ordering edge against timestamps.
    for e in &g.edges {
        let from = &g.ops[e.from];
        let to = &g.ops[e.to];
        match e.rule {
            EdgeRule::CommitToRead => {
                if from.ts > to.ts + eps {
                    report.findings.push(anchor_read(
                        RaceFinding::error(
                            RaceRule::ReadBeforeWrite,
                            format!(
                                "read at t={:.6} precedes producer stage {} task {} commit at t={:.6}",
                                to.ts,
                                from.stage.unwrap_or(0),
                                from.task.unwrap_or(0),
                                from.ts
                            ),
                        ),
                        to,
                    ));
                }
            }
            EdgeRule::StreamStartToRead => {
                let ws = from.write_start.unwrap_or(from.ts);
                if ws > to.ts + eps {
                    report.findings.push(anchor_read(
                        RaceFinding::error(
                            RaceRule::ReadBeforeWrite,
                            format!(
                                "pipelined read at t={:.6} precedes earliest producer write-start t={:.6} (stage {} task {})",
                                to.ts,
                                ws,
                                from.stage.unwrap_or(0),
                                from.task.unwrap_or(0)
                            ),
                        ),
                        to,
                    ));
                }
            }
            EdgeRule::CommitToCompute => {
                let cs = to.compute_start.unwrap_or(to.ts);
                if from.ts > cs + eps {
                    report.findings.push(anchor_read(
                        RaceFinding::error(
                            RaceRule::ReadBeforeWrite,
                            format!(
                                "pipelined ingest finishes at t={:.6} before producer stage {} task {} commit at t={:.6}",
                                cs,
                                from.stage.unwrap_or(0),
                                from.task.unwrap_or(0),
                                from.ts
                            ),
                        ),
                        to,
                    ));
                }
            }
            EdgeRule::DetectToHeal => {
                if from.ts > to.ts + eps {
                    report.findings.push(
                        RaceFinding::error(
                            RaceRule::StaleObjectRead,
                            format!(
                                "lineage heal at t={:.6} precedes its fault detection at t={:.6}",
                                to.ts, from.ts
                            ),
                        )
                        .at_stage(from.stage.unwrap_or(0))
                        .at_task(from.task.unwrap_or(0)),
                    );
                }
            }
            EdgeRule::HealToRead => {
                if from.ts > to.ts + eps {
                    report.findings.push(anchor_read(
                        RaceFinding::error(
                            RaceRule::StaleObjectRead,
                            format!(
                                "read at t={:.6} consumes stage {} task {}'s object before its heal at t={:.6} — the checksum already rejected the stored copy",
                                to.ts,
                                from.stage.unwrap_or(0),
                                from.task.unwrap_or(0),
                                from.ts
                            ),
                        ),
                        to,
                    ));
                }
            }
            EdgeRule::AcquireToRelease => {
                if from.ts > to.ts + eps {
                    report.findings.push(
                        RaceFinding::warning(
                            RaceRule::SlotOversubscription,
                            format!(
                                "negative slot-occupancy interval: acquire t={:.6} after release t={:.6}",
                                from.ts, to.ts
                            ),
                        )
                        .at_stage(from.stage.unwrap_or(0))
                        .at_task(from.task.unwrap_or(0))
                        .at_server(from.server.unwrap_or(0)),
                    );
                }
            }
            EdgeRule::SeamToRead => {
                if from.ts > to.ts + eps {
                    report.findings.push(anchor_read(
                        RaceFinding::error(
                            RaceRule::SeamBypassRead,
                            format!(
                                "read at t={:.6} crosses replan seam spliced at t={:.6} — it consumed the masked pre-replan placement",
                                to.ts, from.ts
                            ),
                        ),
                        to,
                    ));
                }
            }
            EdgeRule::CommitToFetch => {
                if from.ts > to.ts + eps {
                    report.findings.push(
                        RaceFinding::error(
                            RaceRule::ReadBeforeWrite,
                            format!(
                                "object fetched at t={:.6} before its commit at t={:.6}",
                                to.ts, from.ts
                            ),
                        )
                        .at_object(to.key.clone().unwrap_or_default()),
                    );
                }
            }
            EdgeRule::ProgramOrder => {} // holds by construction (sorted)
        }
    }

    // Write roster: every launched (non-speculative) task of a consumed
    // stage must have committed exactly one surviving output.
    let mut roster: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut writes: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut consumed: BTreeMap<u32, u32> = BTreeMap::new(); // src stage -> an edge id
    let mut commits: BTreeSet<&str> = BTreeSet::new();
    let mut fetches: BTreeMap<&str, f64> = BTreeMap::new();
    for op in &g.ops {
        match op.kind {
            OpKind::Acquire if !op.speculative => {
                roster
                    .entry(op.stage.unwrap_or(0))
                    .or_default()
                    .insert(op.task.unwrap_or(0));
            }
            OpKind::Write => {
                writes
                    .entry(op.stage.unwrap_or(0))
                    .or_default()
                    .insert(op.task.unwrap_or(0));
            }
            OpKind::Read => {
                consumed
                    .entry(op.src_stage.unwrap_or(0))
                    .or_insert(op.edge.unwrap_or(0));
            }
            OpKind::Commit => {
                commits.insert(op.key.as_deref().unwrap_or(""));
            }
            OpKind::Fetch => {
                fetches.entry(op.key.as_deref().unwrap_or("")).or_insert(op.ts);
            }
            _ => {}
        }
    }
    for (&src, &edge) in &consumed {
        let have = writes.get(&src);
        match roster.get(&src) {
            Some(tasks) => {
                for &t in tasks {
                    if !have.is_some_and(|w| w.contains(&t)) {
                        report.findings.push(
                            RaceFinding::error(
                                RaceRule::MissingWrite,
                                format!(
                                    "stage {src} task {t} held a slot but never committed an output consumed via edge {edge}"
                                ),
                            )
                            .at_stage(src)
                            .at_task(t)
                            .at_edge(edge),
                        );
                    }
                }
            }
            None => {
                if have.is_none() {
                    report.findings.push(
                        RaceFinding::error(
                            RaceRule::MissingWrite,
                            format!(
                                "stage {src} is consumed via edge {edge} but recorded no writes and no slot holds"
                            ),
                        )
                        .at_stage(src)
                        .at_edge(edge),
                    );
                }
            }
        }
    }
    for (key, &ts) in &fetches {
        if !commits.contains(key) {
            report.findings.push(
                RaceFinding::error(
                    RaceRule::MissingWrite,
                    format!("object fetched at t={ts:.6} was never committed"),
                )
                .at_object(*key),
            );
        }
    }

    // Cross-server shared memory: a shm read needs the producer's
    // partitions resident on the reader's own server — shared memory does
    // not span machines. A colocated group legally spread over several
    // servers is a known model simplification (the remote share of an
    // all-to-all shuffle is priced as local): one warning per edge. A
    // reader on a server where the producing stage never wrote at all has
    // *nothing* resident to map, which no placement can excuse: error.
    let mut writes_srv: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new(); // stage -> servers
    for op in &g.ops {
        if op.kind == OpKind::Write {
            writes_srv
                .entry(op.stage.unwrap_or(0))
                .or_default()
                .insert(op.server.unwrap_or(0));
        }
    }
    let mut spanned: BTreeSet<u32> = BTreeSet::new(); // edges already warned
    for op in &g.ops {
        if op.kind != OpKind::Read || op.medium.as_deref() != Some("shared-memory") {
            continue;
        }
        let reader_srv = op.server.unwrap_or(0);
        let src = op.src_stage.unwrap_or(0);
        let Some(servers) = writes_srv.get(&src) else {
            continue; // no writes at all: the roster check reports it
        };
        if !servers.contains(&reader_srv) {
            report.findings.push(anchor_read(
                RaceFinding::error(
                    RaceRule::CrossServerShm,
                    format!(
                        "shared-memory read on server {reader_srv} but producer stage {src} wrote only on servers {servers:?}"
                    ),
                ),
                op,
            ));
        } else if servers.len() > 1 && spanned.insert(op.edge.unwrap_or(0)) {
            report.findings.push(anchor_read(
                RaceFinding::warning(
                    RaceRule::CrossServerShm,
                    format!(
                        "shared-memory edge spans {} servers {servers:?}; the remote partition share is modeled as local",
                        servers.len()
                    ),
                ),
                op,
            ));
        }
    }

    // Slot-occupancy sweep per server, if capacities are known.
    if let Some(caps) = &opts.capacities {
        sweep_slots(&g, caps, trace, eps, &mut report);
    }

    report
}

/// Earliest instant the original placement stopped being authoritative:
/// a server failure (failover repacking is best-effort) or an applied
/// adaptive replan (the spliced suffix is optimized against the full
/// snapshot while prefix attempts drain, so transient overlap is a model
/// simplification, not an executor race). Oversubscription after this
/// instant downgrades to a warning; before it, it is an error.
///
/// A replan's reach extends *before* its detection instant: the splice
/// re-simulates the suffix from ready times, and a pipelined seam
/// consumer launches at its prefix producer's stream start. The grace
/// bound for an applied replan is therefore the earliest instant the
/// splice can retroactively affect — over all seam edges, the producer
/// stage's earliest stream start (pipelined edge) or commit (blocking).
fn grace_instant(g: &HbGraph, trace: &TraceData) -> (f64, &'static str) {
    let mut at = (f64::INFINITY, "failover");
    let mut replan_at = f64::INFINITY;
    for ev in &trace.events {
        if ev.name == "fault.server_lost" && ev.ts < at.0 {
            at = (ev.ts, "failover");
        } else if ev.name == "sched.failover" {
            let t = match ev.attr("at_time") {
                Some(AttrValue::F64(v)) => *v,
                Some(AttrValue::U64(v)) => *v as f64,
                _ => ev.ts,
            };
            if t < at.0 {
                at = (t, "failover");
            }
        } else if ev.name == "sched.replan"
            && matches!(ev.attr("applied"), Some(AttrValue::U64(1)))
        {
            replan_at = replan_at.min(ev.ts);
        }
    }
    if replan_at.is_finite() {
        let mut retro = replan_at;
        for seam in g.ops.iter().filter(|o| o.kind == OpKind::Seam) {
            let Some(edge) = seam.edge else { continue };
            for r in g
                .ops
                .iter()
                .filter(|o| o.kind == OpKind::Read && o.edge == Some(edge))
            {
                let Some(src) = r.src_stage else { continue };
                for w in g
                    .ops
                    .iter()
                    .filter(|o| o.kind == OpKind::Write && o.stage == Some(src))
                {
                    let t = if r.pipelined {
                        w.write_start.unwrap_or(w.ts)
                    } else {
                        w.ts
                    };
                    retro = retro.min(t);
                }
            }
        }
        if retro < at.0 {
            at = (retro, "replan splice");
        }
    }
    at
}

fn sweep_slots(g: &HbGraph, caps: &[u32], trace: &TraceData, eps: f64, report: &mut RaceReport) {
    let (grace_at, grace_why) = grace_instant(g, trace);
    // Per server: (ts, delta, speculative, stage, task), releases before
    // acquires at equal instants.
    type SlotPoint = (f64, i32, bool, u32, u32);
    let mut per_server: BTreeMap<u32, Vec<SlotPoint>> = BTreeMap::new();
    for op in &g.ops {
        let delta = match op.kind {
            OpKind::Acquire => 1,
            OpKind::Release => -1,
            _ => continue,
        };
        per_server.entry(op.server.unwrap_or(0)).or_default().push((
            op.ts,
            delta,
            op.speculative,
            op.stage.unwrap_or(0),
            op.task.unwrap_or(0),
        ));
    }
    for (&srv, points) in per_server.iter_mut() {
        let Some(&cap) = caps.get(srv as usize) else {
            report.findings.push(
                RaceFinding::warning(
                    RaceRule::SlotOversubscription,
                    format!("server {srv} holds slots but has no known capacity; sweep skipped"),
                )
                .at_server(srv),
            );
            continue;
        };
        points.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let (mut held, mut total) = (0i64, 0i64);
        let (mut hard, mut soft) = (false, false); // first finding per server
        for &(ts, delta, spec, stage, task) in points.iter() {
            if spec {
                total += i64::from(delta);
            } else {
                held += i64::from(delta);
                total += i64::from(delta);
            }
            if delta < 0 {
                continue;
            }
            if !spec && held > i64::from(cap) && !hard {
                hard = true;
                let post_grace = ts >= grace_at - eps;
                let f = if post_grace {
                    RaceFinding::warning(
                        RaceRule::SlotOversubscription,
                        format!(
                            "server {srv} holds {held} task slots of {cap} at t={ts:.6} — best-effort packing after {grace_why} at t={grace_at:.6}"
                        ),
                    )
                } else {
                    RaceFinding::error(
                        RaceRule::SlotOversubscription,
                        format!("server {srv} holds {held} task slots of {cap} at t={ts:.6}"),
                    )
                };
                report
                    .findings
                    .push(f.at_server(srv).at_stage(stage).at_task(task));
            } else if total > i64::from(cap) && held <= i64::from(cap) && !soft {
                soft = true;
                report.findings.push(
                    RaceFinding::warning(
                        RaceRule::SlotOversubscription,
                        format!(
                            "server {srv} holds {total} slots incl. speculative copies of {cap} at t={ts:.6}"
                        ),
                    )
                    .at_server(srv)
                    .at_stage(stage)
                    .at_task(task),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_obs::{Recorder, Track};

    fn write_ev(rec: &Recorder, stage: u32, task: u32, server: u32, ws: f64, commit: f64) {
        rec.event(
            "hb.write",
            Track::server(server, 0),
            commit,
            vec![
                ("stage", stage.into()),
                ("task", task.into()),
                ("server", server.into()),
                ("write_start", ws.into()),
            ],
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn read_ev(
        rec: &Recorder,
        stage: u32,
        task: u32,
        server: u32,
        edge: u32,
        src: u32,
        medium: &'static str,
        ts: f64,
    ) {
        rec.event(
            "hb.read",
            Track::server(server, 1),
            ts,
            vec![
                ("stage", stage.into()),
                ("task", task.into()),
                ("server", server.into()),
                ("edge", edge.into()),
                ("src_stage", src.into()),
                ("pipelined", 0u32.into()),
                ("medium", medium.into()),
                ("compute_start", (ts + 0.5).into()),
            ],
        );
    }

    fn slot_evs(rec: &Recorder, stage: u32, task: u32, server: u32, start: f64, end: f64) {
        for (name, ts) in [("hb.slot_acquire", start), ("hb.slot_release", end)] {
            rec.event(
                name,
                Track::server(server, 0),
                ts,
                vec![
                    ("stage", stage.into()),
                    ("task", task.into()),
                    ("server", server.into()),
                    ("kind", "task".into()),
                ],
            );
        }
    }

    #[test]
    fn clean_trace_certifies_clean() {
        let rec = Recorder::new();
        write_ev(&rec, 0, 0, 0, 1.5, 2.0);
        slot_evs(&rec, 0, 0, 0, 0.0, 2.0);
        read_ev(&rec, 1, 0, 0, 0, 0, "s3", 2.0);
        slot_evs(&rec, 1, 0, 0, 2.0, 4.0);
        let report = check_trace(
            &rec.finish(),
            &RaceOptions {
                capacities: Some(vec![4]),
                ..Default::default()
            },
        );
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.malformed, 0);
        assert!(report.hb_edges > 0);
    }

    #[test]
    fn read_before_write_is_flagged_with_provenance() {
        let rec = Recorder::new();
        write_ev(&rec, 0, 0, 0, 1.5, 2.0);
        read_ev(&rec, 1, 3, 0, 7, 0, "s3", 1.0); // 1.0 < commit 2.0
        let report = check_trace(&rec.finish(), &RaceOptions::default());
        assert!(!report.is_clean());
        let f = &report.findings[0];
        assert_eq!(f.rule, RaceRule::ReadBeforeWrite);
        assert_eq!(f.stage, Some(1));
        assert_eq!(f.task, Some(3));
        assert_eq!(f.edge, Some(7));
    }

    #[test]
    fn oversubscription_severity_depends_on_kind_and_failover() {
        let rec = Recorder::new();
        slot_evs(&rec, 0, 0, 0, 0.0, 5.0);
        slot_evs(&rec, 0, 1, 0, 1.0, 5.0);
        slot_evs(&rec, 0, 2, 0, 2.0, 5.0); // 3 concurrent, cap 2
        let report = check_trace(
            &rec.finish(),
            &RaceOptions {
                capacities: Some(vec![2]),
                ..Default::default()
            },
        );
        assert_eq!(report.error_count(), 1, "{}", report.render());
        assert_eq!(report.findings[0].server, Some(0));

        // Same holds, but a failover precedes the over-cap instant.
        let rec = Recorder::new();
        slot_evs(&rec, 0, 0, 0, 0.0, 5.0);
        slot_evs(&rec, 0, 1, 0, 1.0, 5.0);
        slot_evs(&rec, 0, 2, 0, 2.0, 5.0);
        rec.event("fault.server_lost", Track::server(1, 0), 1.5, vec![]);
        let report = check_trace(
            &rec.finish(),
            &RaceOptions {
                capacities: Some(vec![2, 2]),
                ..Default::default()
            },
        );
        assert_eq!(report.error_count(), 0, "{}", report.render());
        assert_eq!(report.warning_count(), 1);
    }

    #[test]
    fn cross_server_shm_read_is_an_error() {
        let rec = Recorder::new();
        write_ev(&rec, 0, 0, 1, 0.5, 1.0); // producer on server 1 only
        read_ev(&rec, 1, 0, 0, 0, 0, "shared-memory", 1.0); // reader on 0
        let report = check_trace(&rec.finish(), &RaceOptions::default());
        assert!(!report.is_clean());
        assert_eq!(report.findings[0].rule, RaceRule::CrossServerShm);
        assert_eq!(report.findings[0].server, Some(0));
    }

    #[test]
    fn spanning_shm_placement_is_a_single_warning_per_edge() {
        let rec = Recorder::new();
        write_ev(&rec, 0, 0, 0, 0.2, 0.8); // producer partitions on both
        write_ev(&rec, 0, 1, 1, 0.3, 0.9); // servers: resident locally,
        read_ev(&rec, 1, 0, 0, 0, 0, "shared-memory", 1.0); // remote share
        read_ev(&rec, 1, 1, 1, 0, 0, "shared-memory", 1.0); // modeled local
        let report = check_trace(&rec.finish(), &RaceOptions::default());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.warning_count(), 1);
        assert_eq!(report.findings[0].rule, RaceRule::CrossServerShm);
    }

    #[test]
    fn json_has_stable_shape() {
        let rec = Recorder::new();
        write_ev(&rec, 0, 0, 0, 1.5, 2.0);
        read_ev(&rec, 1, 0, 0, 0, 0, "s3", 1.0);
        let report = check_trace(&rec.finish(), &RaceOptions::default());
        let j = report.to_json();
        assert!(j.starts_with("{\"ops\":"), "{j}");
        assert!(j.contains("\"rule\":\"read-before-write\""), "{j}");
        assert!(j.contains("\"errors\":1"), "{j}");
    }
}
