//! Joint iterative optimization of parallelism and placement (Algorithm 3).
//!
//! Starting from singleton groups and the DoP-ratio configuration, each
//! iteration re-derives the greedy grouping order under the current DoPs,
//! then walks it: tentatively group an edge's endpoint stages, recompute
//! the optimal DoPs for the new co-location mask, and run the best-fit
//! placement check. The first edge that places commits; a failed edge is
//! rolled back and the next one tried. Iterations stop when a full pass
//! commits nothing. The predicted objective is non-increasing throughout
//! (paper Inequality 6): grouping only removes modeled I/O, and DoP ratio
//! computing is optimal for each mask.

use crate::dop::compute_dop;
use crate::grouping::{greedy_group_order, StageGroups};
use crate::objective::Objective;
use crate::placement::{can_place_with};
use crate::schedule::Schedule;
use ditto_cluster::ResourceManager;
use ditto_dag::{EdgeId, JobDag};
use ditto_obs::{Recorder, SpanId, Track};
use ditto_timemodel::JobTimeModel;

/// How the joint optimizer orders candidate edges each iteration
/// (ablation knob; Ditto's choice is [`GroupOrderPolicy::Greedy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupOrderPolicy {
    /// The paper's greedy order: heaviest edge on the current critical
    /// path for JCT, globally heaviest for cost (§4.3).
    Greedy,
    /// Globally descending edge weight regardless of objective.
    GlobalDescending,
    /// A fixed random permutation (seeded).
    Random(u64),
}

/// Options for the joint optimizer.
#[derive(Debug, Clone)]
pub struct JointOptions {
    /// Allow decomposing gather-only stage groups into task groups when a
    /// whole group fits no single server (§4.5). On by default.
    pub gather_decomposition: bool,
    /// Upper bound on commit iterations (defensive; the loop naturally
    /// terminates after at most `|E|` commits).
    pub max_iterations: usize,
    /// Edge-ordering policy (ablation knob).
    pub order_policy: GroupOrderPolicy,
    /// Server-fit strategy for the placement check (ablation knob; Ditto
    /// uses best fit, §4.4).
    pub fit_strategy: crate::placement::FitStrategy,
}

impl Default for JointOptions {
    fn default() -> Self {
        JointOptions {
            gather_decomposition: true,
            max_iterations: 4096,
            order_policy: GroupOrderPolicy::Greedy,
            fit_strategy: crate::placement::FitStrategy::BestFit,
        }
    }
}

/// Run Algorithm 3 and return the final schedule.
///
/// ```
/// use ditto_core::{joint_optimize, JointOptions, Objective};
/// use ditto_cluster::ResourceManager;
/// use ditto_timemodel::{model::RateConfig, JobTimeModel};
///
/// let dag = ditto_dag::generators::q95_shape();
/// let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
/// let rm = ResourceManager::from_free_slots(vec![96, 48, 24]);
/// let schedule = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
/// schedule.validate(&dag).unwrap();
/// assert!(schedule.total_slots() <= rm.total_free());
/// // On a roomy cluster some shuffle is co-located onto shared memory.
/// assert!(schedule.colocated.iter().any(|&c| c));
/// ```
///
/// # Panics
/// Panics if even the fully ungrouped configuration cannot be placed —
/// impossible when the rounded DoPs respect `Σd ≤ C` and `C ≥ #stages`,
/// which [`crate::dop::compute_dop`] guarantees for any
/// cluster with at least one slot per stage.
pub fn joint_optimize(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    objective: Objective,
    opts: &JointOptions,
) -> Schedule {
    joint_optimize_traced(dag, model, rm, objective, opts, &Recorder::disabled())
}

/// [`joint_optimize`] with telemetry: every scheduler decision lands on
/// the recorder's scheduler track (wall-clock timestamps). Emits a
/// `sched.joint` span over the whole run, a `sched.dop_ratio` span for
/// the initial parallelism configuration, one `sched.round` span per
/// commit iteration, a `sched.merge` event per candidate edge (with the
/// trial α/β of both endpoint stages and an accept/reject verdict), and
/// a `sched.placement` span for the final placement check. A disabled
/// recorder makes this identical to [`joint_optimize`].
pub fn joint_optimize_traced(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    objective: Objective,
    opts: &JointOptions,
    obs: &Recorder,
) -> Schedule {
    let c = rm.total_free();
    let n = dag.num_stages();

    obs.name_track(Track::SCHEDULER_GROUP, "scheduler");
    let run_span = obs.begin(
        "sched.joint",
        Track::scheduler(0),
        obs.wall_now(),
        SpanId::NONE,
        vec![
            ("objective", objective.to_string().into()),
            ("stages", (n as u64).into()),
            ("edges", (dag.edges().len() as u64).into()),
            ("free_slots", (c as u64).into()),
        ],
    );

    let mut groups = StageGroups::singletons(n);
    let mut colocated = groups.colocation_mask(dag);
    let dop_span = obs.begin(
        "sched.dop_ratio",
        Track::scheduler(1),
        obs.wall_now(),
        run_span,
        vec![],
    );
    let mut assignment = compute_dop(dag, model, &colocated, objective, c.max(1));
    obs.end(dop_span, obs.wall_now());
    assert!(
        can_place_with(dag, &assignment.dop, &groups, rm, opts.gather_decomposition, opts.fit_strategy).is_some(),
        "ungrouped baseline configuration must be placeable (C={c}, stages={n})"
    );

    let mut ungrouped: Vec<EdgeId> = dag.edges().iter().map(|e| e.id).collect();
    let mut iterations = 0usize;
    while !ungrouped.is_empty() && iterations < opts.max_iterations {
        iterations += 1;
        let round_span = obs.begin(
            "sched.round",
            Track::scheduler(1),
            obs.wall_now(),
            run_span,
            vec![
                ("iteration", (iterations as u64).into()),
                ("ungrouped", (ungrouped.len() as u64).into()),
            ],
        );
        // Re-derive the edge order under the current DoPs and mask, then
        // keep only still-ungrouped edges (ω of grouped edges is 0 anyway).
        let raw_order: Vec<EdgeId> = match opts.order_policy {
            GroupOrderPolicy::Greedy => {
                greedy_group_order(dag, model, &assignment.dop, &colocated, objective)
            }
            GroupOrderPolicy::GlobalDescending => {
                // Descending by the objective's edge weight, ignoring the
                // critical path.
                let w = crate::grouping::grouping_weights(
                    dag,
                    model,
                    &assignment.dop,
                    &colocated,
                    objective,
                );
                let mut v: Vec<EdgeId> = dag.edges().iter().map(|e| e.id).collect();
                v.sort_by(|&a, &b| {
                    w.edge[b.index()]
                        .partial_cmp(&w.edge[a.index()])
                        .unwrap()
                        .then(a.cmp(&b))
                });
                v
            }
            GroupOrderPolicy::Random(seed) => {
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut v: Vec<EdgeId> = dag.edges().iter().map(|e| e.id).collect();
                v.shuffle(&mut rng);
                v
            }
        };
        let order: Vec<EdgeId> = raw_order
            .into_iter()
            .filter(|e| ungrouped.contains(e))
            .collect();

        let mut committed = None;
        for e in order {
            let edge = dag.edge(e);
            // Tentatively group sᵢ and sⱼ (merging their whole groups).
            let mut trial_groups = groups.clone();
            trial_groups.union(edge.src, edge.dst);
            let trial_mask = trial_groups.colocation_mask(dag);
            let trial_assignment = compute_dop(dag, model, &trial_mask, objective, c.max(1));
            let placeable = can_place_with(
                dag,
                &trial_assignment.dop,
                &trial_groups,
                rm,
                opts.gather_decomposition,
                opts.fit_strategy,
            )
            .is_some();
            if obs.is_enabled() {
                obs.event(
                    "sched.merge",
                    Track::scheduler(1),
                    obs.wall_now(),
                    vec![
                        ("edge", (e.index() as u64).into()),
                        ("src", (edge.src.index() as u64).into()),
                        ("dst", (edge.dst.index() as u64).into()),
                        ("src_alpha", model.stage_alpha(dag, edge.src, &trial_mask).into()),
                        ("src_beta", model.stage_beta(dag, edge.src, &trial_mask).into()),
                        ("dst_alpha", model.stage_alpha(dag, edge.dst, &trial_mask).into()),
                        ("dst_beta", model.stage_beta(dag, edge.dst, &trial_mask).into()),
                        ("verdict", if placeable { "accept" } else { "reject" }.into()),
                    ],
                );
            }
            if placeable {
                groups = trial_groups;
                colocated = trial_mask;
                assignment = trial_assignment;
                committed = Some(e);
                break;
            }
            // else: undo (nothing was mutated) and try the next edge.
        }
        obs.end(round_span, obs.wall_now());
        match committed {
            Some(e) => {
                ungrouped.retain(|&x| x != e);
                obs.event(
                    "sched.commit",
                    Track::scheduler(0),
                    obs.wall_now(),
                    vec![
                        ("iteration", (iterations as u64).into()),
                        ("edge", (e.index() as u64).into()),
                    ],
                );
            }
            None => break, // no edge in E_u groupable → done
        }
    }

    let place_span = obs.begin(
        "sched.placement",
        Track::scheduler(1),
        obs.wall_now(),
        run_span,
        vec![],
    );
    let plan = can_place_with(
        dag,
        &assignment.dop,
        &groups,
        rm,
        opts.gather_decomposition,
        opts.fit_strategy,
    )
    .expect("committed configuration was verified placeable");
    obs.end(place_span, obs.wall_now());
    // An edge is effectively colocated only when both endpoints ended on
    // the same server set; group membership is exactly that by
    // construction (groups place wholly on one server, or into aligned
    // gather chunks).
    let schedule = Schedule {
        scheduler: format!("ditto-{objective}"),
        dop: assignment.dop,
        group_of: groups.group_of(n),
        groups: groups.groups(n),
        colocated,
        placement: plan.stage_placement,
    };
    if obs.is_enabled() {
        obs.gauge_set("sched.groups", "", schedule.groups.len() as f64);
        obs.gauge_set("sched.slots", "", schedule.total_slots() as f64);
        obs.gauge_set("sched.iterations", "", iterations as f64);
    }
    obs.end(run_span, obs.wall_now());
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{predicted_cost, predicted_jct};
    use ditto_dag::generators;
    use ditto_timemodel::model::RateConfig;

    fn setup(free: &[u32]) -> (JobDag, JobTimeModel, ResourceManager) {
        let dag = generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        (dag, model, rm)
    }

    use ditto_dag::JobDag;

    #[test]
    fn produces_valid_schedule() {
        let (dag, model, rm) = setup(&[96, 50, 30, 20, 12, 8, 6, 4]);
        let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        s.validate(&dag).unwrap();
        assert!(s.total_slots() <= rm.total_free());
        assert!(s.groups.len() <= dag.num_stages());
    }

    #[test]
    fn groups_heavy_edges_when_room() {
        // A roomy cluster lets Ditto group aggressively.
        let (dag, model, rm) = setup(&[96; 8]);
        let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        let grouped_edges = s.colocated.iter().filter(|&&c| c).count();
        assert!(grouped_edges > 0, "roomy cluster should co-locate something");
    }

    #[test]
    fn tight_cluster_groups_less() {
        let (dag, model, roomy) = setup(&[96; 8]);
        let tight = ResourceManager::from_free_slots(vec![10; 8]);
        let s_roomy = joint_optimize(&dag, &model, &roomy, Objective::Jct, &JointOptions::default());
        let s_tight = joint_optimize(&dag, &model, &tight, Objective::Jct, &JointOptions::default());
        let g_roomy = s_roomy.colocated.iter().filter(|&&c| c).count();
        let g_tight = s_tight.colocated.iter().filter(|&&c| c).count();
        assert!(g_tight <= g_roomy);
        s_tight.validate(&dag).unwrap();
    }

    /// Inequality 6: the predicted objective after joint optimization is no
    /// worse than the ungrouped DoP-ratio baseline.
    #[test]
    fn objective_non_increasing_vs_baseline() {
        for obj in [Objective::Jct, Objective::Cost] {
            let (dag, model, rm) = setup(&[96, 50, 30, 20, 12, 8, 6, 4]);
            let c = rm.total_free();
            let base = compute_dop(&dag, &model, &model.no_colocation(), obj, c);
            let s = joint_optimize(&dag, &model, &rm, obj, &JointOptions::default());
            let frac: Vec<f64> = s.dop.iter().map(|&d| d as f64).collect();
            let base_frac = base.fractional.clone();
            let (before, after) = match obj {
                Objective::Jct => (
                    predicted_jct(&dag, &model, &base_frac, &model.no_colocation()),
                    predicted_jct(&dag, &model, &frac, &s.colocated),
                ),
                Objective::Cost => (
                    predicted_cost(&dag, &model, &base_frac, &model.no_colocation()),
                    predicted_cost(&dag, &model, &frac, &s.colocated),
                ),
            };
            // Allow rounding slack: integer DoPs vs fractional baseline.
            assert!(
                after <= before * 1.10,
                "{obj}: after={after} before={before}"
            );
        }
    }

    #[test]
    fn works_on_every_generator_shape() {
        let shapes: Vec<JobDag> = vec![
            generators::fig1_join(),
            generators::q95_shape(),
            generators::chain(6, 1 << 30, 0.5),
            generators::fan_in(&[1 << 30, 2 << 30, 3 << 30], 0.1),
            generators::diamond(1 << 30),
        ];
        for dag in shapes {
            let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
            let rm = ResourceManager::from_free_slots(vec![48, 24, 12, 6]);
            for obj in [Objective::Jct, Objective::Cost] {
                let s = joint_optimize(&dag, &model, &rm, obj, &JointOptions::default());
                s.validate(&dag).unwrap_or_else(|e| panic!("{}: {e}", dag.name()));
            }
        }
    }

    #[test]
    fn deterministic() {
        let (dag, model, rm) = setup(&[96, 50, 30, 20, 12, 8, 6, 4]);
        let a = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        let b = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        assert_eq!(a.dop, b.dop);
        assert_eq!(a.group_of, b.group_of);
    }
}
