//! Adaptive execution: online drift detection + elastic suffix
//! re-optimization.
//!
//! The paper's scheduler (§4) plans once, against a model fitted offline
//! (§4.2), and the plan is frozen for the run. This module closes the
//! loop at runtime:
//!
//! 1. after every completed stage, a [`DriftDetector`] compares the
//!    realized mean step timings against the expected ones and maintains
//!    per-stage / job-global EWMA correction factors;
//! 2. when a stage's smoothed ratio leaves the configured band, the
//!    fitted [`JobTimeModel`](ditto_timemodel::JobTimeModel) is
//!    re-corrected with the learned per-step factors
//!    ([`ModelCorrections`]), the *not-yet-started suffix* of the DAG is
//!    re-optimized by [`ditto_core::joint_optimize`] against the current
//!    free-slot snapshot (in-flight prefix work deducted), and the new
//!    suffix is spliced into the running schedule via
//!    [`Schedule::splice`];
//! 3. every spliced schedule must pass the `ditto-audit` feasibility
//!    certificate ([`ditto_audit::audit_splice`]) before it replaces the
//!    current plan — a replan that cannot prove itself feasible is a
//!    hard [`ExecError::InvalidSchedule`], not a silent fallback;
//! 4. each accepted or rejected replan is recorded as a [`ReplanRecord`]
//!    on the [`ExecutionTrace`].
//!
//! The adaptive engine drives the exact same per-stage simulator
//! ([`sim_stage`](crate::faults)) as the frozen fault engine, so with no
//! drift and no object faults it is **bit-identical** to
//! [`try_simulate_with_faults`](crate::faults::try_simulate_with_faults)
//! — the property the `adaptive_properties` suite pins down.
//!
//! Escalation ladder (DESIGN.md §6g): storage read retry → lineage
//! re-execution of the producing task (both inside `sim_stage`; the
//! recovery wait inflates the stage's observed *read* step) → suffix
//! replan (this module, when the inflation leaves the band) → typed
//! failure.

use crate::error::ExecError;
use crate::faults::{
    finish_pass, ready_time, sim_stage, FaultPlan, RecoveryPolicy, ReschedulingContext, SimState,
};
use crate::groundtruth::GroundTruth;
use crate::metrics::JobMetrics;
use crate::queue::{ReadyQueue, TieBreak};
use crate::trace::ExecutionTrace;
use ditto_cluster::{DriftConfig, DriftDetector, ServerId};
use ditto_core::{joint_optimize_traced, predicted_jct, Schedule};
use ditto_dag::{JobDag, StageId};
use ditto_obs::{Recorder, StepTimings, Track};
use ditto_timemodel::{ModelCorrections, StepCorrections};

/// Configuration of the adaptive execution loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Drift-detector band and smoothing. The adaptive default lowers
    /// `min_samples` to 1: the detector is fed one observation per
    /// *stage* (the mean over its tasks), and each stage runs once.
    pub drift: DriftConfig,
    /// Maximum suffix replans per run (each one re-runs the joint
    /// optimizer; unbounded replanning on a noisy signal would thrash).
    pub max_replans: u32,
    /// Re-arm threshold: after a replan decision, the next one requires
    /// the smoothed drift factor to have moved by at least this relative
    /// amount *or* further stages to have completed since — a constant
    /// drift must not re-trigger on every task of the same front, but
    /// job progress at a flat factor is still new information (the last
    /// evaluation priced a splice over stages that are now pinned).
    pub re_arm: f64,
    /// Minimum *relative* predicted-JCT improvement before a replan is
    /// applied. The corrected model is still a model: its own error under
    /// drift is easily a few percent, so a predicted gain inside that
    /// noise floor is as likely to hurt as help once splice costs (the
    /// conservatively-externalized seam edges) are realized. Replans
    /// below the margin are recorded but not applied.
    pub min_gain: f64,
    /// Run the `ditto-audit` feasibility certificate on every spliced
    /// schedule and fail the run if it is not clean.
    pub audit_splices: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            drift: DriftConfig {
                min_samples: 1,
                ..Default::default()
            },
            max_replans: 4,
            re_arm: 0.15,
            min_gain: 0.1,
            audit_splices: true,
        }
    }
}

/// Why a replan fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum ReplanTrigger {
    /// Sustained deviation of realized step times from the expectation
    /// (environmental drift, stragglers).
    Drift,
    /// Deviation dominated by read-step inflation from lineage recovery
    /// of lost or corrupt intermediate objects — data-plane trouble
    /// escalated to the planner.
    ObjectRecovery,
}

/// One suffix re-optimization, recorded on the [`ExecutionTrace`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ReplanRecord {
    /// What tripped the detector.
    pub trigger: ReplanTrigger,
    /// Stage whose completion fired the drift event.
    pub at_stage: u32,
    /// Simulated time of the replan decision (the firing stage's end).
    pub sim_time: f64,
    /// Smoothed observed/expected total-time factor at the decision.
    pub factor: f64,
    /// Job-global per-step correction factors applied to the model.
    pub corrections: StepCorrections,
    /// Stages in the re-optimized suffix.
    pub suffix_stages: u32,
    /// Predicted JCT of the *current* schedule under the corrected model.
    pub old_predicted_jct: f64,
    /// Predicted JCT of the spliced schedule under the corrected model.
    pub new_predicted_jct: f64,
    /// Risk adjustment added to the comparison, seconds: the spliced
    /// plan's expected lineage-recovery delay minus the incumbent's,
    /// under the object-loss rate observed so far in this run. Zero when
    /// no losses have been observed.
    pub risk_penalty: f64,
    /// Whether the feasibility certificate on the spliced schedule came
    /// back clean (always true for applied replans when auditing is on).
    pub audit_clean: bool,
    /// Whether the splice replaced the running schedule (a replan whose
    /// corrected-model prediction does not beat the current plan is
    /// recorded but not applied).
    pub applied: bool,
    /// Monotonic control-plane decision sequence number, shared with the
    /// write-ahead journal: the schedule commit is decision 0 and every
    /// replan / failover increments from there, so trace diffing can
    /// align crashed and recovered runs decision by decision.
    pub decision_seq: u64,
}

/// Simulate `schedule` on `dag` adaptively: same fault semantics as
/// [`try_simulate_with_faults`](crate::faults::try_simulate_with_faults),
/// plus online drift detection and elastic suffix re-optimization through
/// `ctx`. See the module docs for the loop.
pub fn try_simulate_adaptive(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    ctx: &ReschedulingContext<'_>,
    cfg: &AdaptiveConfig,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    // Debug builds run traced and gate the event stream through the race
    // checker: replan splices and lineage recoveries are exactly where
    // ordering hazards would creep in. Same fidelity either way — the
    // telemetry tests pin traced and untraced runs to identical metrics.
    #[cfg(debug_assertions)]
    {
        let obs = Recorder::new();
        let out = try_simulate_adaptive_traced(dag, schedule, gt, plan, policy, ctx, cfg, &obs)?;
        let race =
            ditto_audit::check_trace(&obs.finish(), &ditto_audit::RaceOptions::default());
        debug_assert!(
            race.is_clean(),
            "race checker rejected try_simulate_adaptive's own trace:\n{}",
            race.render()
        );
        Ok(out)
    }
    #[cfg(not(debug_assertions))]
    try_simulate_adaptive_traced(dag, schedule, gt, plan, policy, ctx, cfg, &Recorder::disabled())
}

/// [`try_simulate_adaptive`] with telemetry: replan decisions land on the
/// scheduler track (`sched.replan` events) alongside the usual task/stage
/// spans and fault events.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_adaptive_traced(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    ctx: &ReschedulingContext<'_>,
    cfg: &AdaptiveConfig,
    obs: &Recorder,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    try_simulate_adaptive_tie(
        dag,
        schedule,
        gt,
        plan,
        policy,
        ctx,
        cfg,
        obs,
        &mut TieBreak::canonical(),
        None,
    )
}

/// [`try_simulate_adaptive_traced`] under an explicit tie-break
/// controller. Stages simulate in (ready time, controller choice) order;
/// drift observation and replan decisions run at **batch boundaries** —
/// only after every member of a simultaneous-event batch has simulated,
/// and then in stage-id order — so the decision sequence sees an
/// order-invariant simulation state no matter how the controller
/// sequenced the batch. The model checker relies on exactly this.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_simulate_adaptive_tie(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    ctx: &ReschedulingContext<'_>,
    cfg: &AdaptiveConfig,
    obs: &Recorder,
    tie: &mut TieBreak,
    mut jr: Option<&mut crate::journal::JournalSession>,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    schedule.validate(dag).map_err(ExecError::InvalidSchedule)?;
    let n = dag.num_stages();
    let order = dag.topo_order().map_err(|_| ExecError::CyclicDag)?;
    let mut state = SimState::new(dag, plan, schedule);
    state.announce(obs);
    // The detector's class layer keys EWMAs by stage *type* (the ISSUE's
    // per-stage-type corrections): drift learned from a completed map
    // stage transfers to maps that have not started — per-stage estimates
    // alone can only correct stages that already ran, which the suffix
    // replan no longer cares about.
    let class_of: Vec<u32> = dag.stages().iter().map(|st| st.kind as u32).collect();
    let mut detector = DriftDetector::with_classes(&class_of, cfg.drift);
    let mut cur = schedule.clone();
    let mut replans: Vec<ReplanRecord> = Vec::new();
    let mut last_decision: Option<(f64, usize)> = None;
    let mut reexecs_seen = 0u32;
    let mut simulated = vec![false; n];

    // Ready-queue execution: pop stages in (ready time, tie) order; a run
    // of bit-equal ready times is one simultaneous-event batch. The batch
    // simulates in the controller's order, then drift observation and
    // replan decisions flush in stage-id order over the completed batch.
    let mut queue = ReadyQueue::new(dag);
    let mut pending = queue.pop(tie);
    while let Some((batch_ready, first)) = pending {
        let mut batch: Vec<StageId> = Vec::new();
        let mut next = Some((batch_ready, first));
        loop {
            match next {
                Some((r, s)) if r == batch_ready => {
                    let restored = match jr.as_deref_mut() {
                        Some(j) => j.try_restore(s, &mut state, dag, obs),
                        None => false,
                    };
                    if !restored {
                        sim_stage(&mut state, dag, &cur, gt, plan, policy, obs, s)?;
                        if let Some(j) = jr.as_deref_mut() {
                            j.record_stage(s, &state, dag)?;
                        }
                    }
                    queue.complete(dag, s, |c| ready_time(&state, dag, c));
                    batch.push(s);
                    next = queue.pop(tie);
                }
                other => {
                    pending = other;
                    break;
                }
            }
        }
        batch.sort_unstable();
        for &s in &batch {
            simulated[s.index()] = true;
        }
        for &s in &batch {
        let event = detector.observe(
            s.0,
            &state.stage_observed[s.index()],
            &state.stage_clean[s.index()],
        );
        let totals = state.total_stats();
        let new_reexecs = totals.lineage_reexecs - reexecs_seen;
        reexecs_seen = totals.lineage_reexecs;
        let Some(ev) = event else { continue };
        // Every band exceedance is recorded — including ones the budget
        // or re-arm gates below swallow — so the scorecard can annotate
        // post-drift predictor samples even when no replan fired.
        ev.record(obs, state.stage_end[s.index()]);
        // Gates: replan budget (each decision below re-runs the joint
        // optimizer; unbounded replanning on a noisy signal would
        // thrash), then re-arm. A constant drift level must not
        // re-trigger the optimizer after every stage — but only while the
        // *decision state* is also unchanged. Stages completing in
        // ready-time order report similar factors back to back (all the
        // scans, then all the joins), and job progress is new information
        // even at a flat factor: the last evaluation priced a splice over
        // stages that have since launched or pinned. Swallow the event
        // only when neither the smoothed factor nor the unsimulated
        // remainder has moved since the last decision — the remainder is
        // batch-constant and order-invariant, so the model checker's
        // tie-break permutations see the same gate outcomes.
        if replans.len() >= cfg.max_replans as usize {
            continue;
        }
        let remaining = simulated.iter().filter(|&&b| !b).count();
        if let Some((lf, ln)) = last_decision {
            if ((ev.factor - lf) / lf).abs() < cfg.re_arm && remaining == ln {
                continue;
            }
        }
        let now = state.stage_end[s.index()];
        // The elastic suffix: stages that cannot have *launched* yet.
        // Not-yet-simulated is not enough — a source stage still queued
        // (a second table scan) launched at t=0 and may already be
        // finished by `now`; re-doping it would be time travel, and
        // splicing it out of its group externalizes edges whose data
        // already moved through shared memory. A stage is replannable iff
        // its JIT launch is gated behind `now`: some producer is itself
        // replannable, or already simulated with its end at/after `now`
        // (still in flight counts). Everything else is frozen at its
        // incumbent DoP and placement. (Iterated in topo order so a
        // producer's suffix membership is settled before its consumers'.)
        let mut suffix = vec![false; n];
        for &t in &order {
            if simulated[t.index()] {
                continue;
            }
            suffix[t.index()] = dag.in_edges(t).any(|e| {
                let p = e.src.index();
                suffix[p] || (simulated[p] && state.stage_end[p] >= now - 1e-9)
            });
        }
        let n_suffix = suffix.iter().filter(|&&b| b).count();
        if n_suffix == 0 {
            continue; // nothing downstream is still movable
        }
        // Journal replay: the gates above re-ran deterministically over
        // restored state, so a gate-passing decision point on a resumed
        // run either matches the journaled decision made here before the
        // crash (substitute it — no re-optimization, which is what bounds
        // recovery work) or the run has diverged (hard error). Once the
        // replay queue drains, decisions fall through to the live path
        // below and journal as usual.
        if let Some(j) = jr.as_deref_mut() {
            if let Some((rec, j_suffix, j_sched)) = j.next_replan_for(s.0, now) {
                if j_suffix != suffix {
                    return Err(ExecError::Journal(format!(
                        "resumed run diverged: replan at stage {} recomputed a different suffix than the journal",
                        s.0
                    )));
                }
                if obs.is_enabled() {
                    obs.event(
                        "sched.replan",
                        Track::scheduler(0),
                        now,
                        vec![
                            ("trigger", match rec.trigger {
                                ReplanTrigger::Drift => "drift",
                                ReplanTrigger::ObjectRecovery => "object-recovery",
                            }
                            .into()),
                            ("at_stage", rec.at_stage.into()),
                            ("factor", rec.factor.into()),
                            ("suffix_stages", u64::from(rec.suffix_stages).into()),
                            ("old_predicted_jct", rec.old_predicted_jct.into()),
                            ("new_predicted_jct", rec.new_predicted_jct.into()),
                            ("applied", u64::from(rec.applied).into()),
                            ("risk_penalty", rec.risk_penalty.into()),
                            ("audit_clean", u64::from(rec.audit_clean).into()),
                            ("corr_read", rec.corrections.read.into()),
                            ("corr_compute", rec.corrections.compute.into()),
                            ("corr_write", rec.corrections.write.into()),
                            ("decision_seq", rec.decision_seq.into()),
                        ],
                    );
                }
                if rec.applied {
                    let Some(stored) = j_sched else {
                        return Err(ExecError::Journal(
                            "applied replan was journaled without its spliced schedule".into(),
                        ));
                    };
                    if obs.is_enabled() {
                        for e in dag.edges() {
                            if !suffix[e.src.index()] && suffix[e.dst.index()] {
                                obs.event(
                                    "hb.seam",
                                    Track::scheduler(0),
                                    now,
                                    vec![
                                        ("edge", (e.id.index() as u64).into()),
                                        ("src_stage", e.src.0.into()),
                                        ("dst_stage", e.dst.0.into()),
                                    ],
                                );
                            }
                        }
                    }
                    state.stats.rescheduled_stages += rec.suffix_stages;
                    cur = stored;
                }
                last_decision = Some((rec.factor, remaining));
                replans.push(rec);
                continue;
            }
        }
        // Learned corrections, most-specific first: the stage's own
        // samples, else its stage-type class (maps correct maps that have
        // not run), else *identity*. The job-global EWMA is deliberately
        // not used as a scaling fallback: after one drifted map it would
        // smear the map's factor over joins and reduces too, turning a
        // differential signal back into a uniform one — and uniform drift
        // scales α and β together, which moves no DoP ratios (Eq. 3/4).
        // It is still recorded on the ReplanRecord as the summary factor.
        let to_corr = |t: StepTimings| StepCorrections {
            read: t.read,
            compute: t.compute,
            write: t.write,
        };
        let corrections = ModelCorrections {
            per_stage: (0..n)
                .map(|i| {
                    Some(
                        detector
                            .stage_correction(i as u32)
                            .or_else(|| detector.class_correction(i as u32))
                            .map(to_corr)
                            .unwrap_or_else(StepCorrections::identity),
                    )
                })
                .collect(),
            global: to_corr(detector.global_correction()),
        };
        // Corrections price the future; the mask erases the past. Without
        // it, joint_optimize re-plans the *whole* DAG and a 3×-corrected
        // completed scan hogs slots it no longer needs, starving the very
        // suffix the replan is for (and making every replanned schedule
        // predict worse than the incumbent). Prefix stages' steps and
        // already-written edge outputs are zeroed; seam reads the suffix
        // still pays stay at full corrected cost. Both predicted JCTs
        // below use the same masked model, so the apply decision compares
        // suffix-only futures.
        let done: Vec<bool> = (0..n).map(|i| !suffix[i]).collect();
        let corrected = ctx.model.corrected(dag, &corrections).masked_completed(dag, &done);
        // Free-slot snapshot at the decision instant: the schedule's
        // original snapshot, minus a failed server (if it already died),
        // minus slots still held by in-flight prefix stages.
        let mut rm = ctx.resources.clone();
        if let Some((failed, at)) = state.failure {
            if at <= now {
                rm.fail_server(failed.index());
            }
        }
        // Slot deduction, in stage-id order (the order-invariant one):
        // simulated stages still in flight at `now` hold their slots;
        // frozen-but-unsimulated stages (launched before `now`, end not
        // yet known) are conservatively assumed to hold theirs too.
        for i in 0..n {
            let holds = if simulated[i] {
                state.stage_end[i] > now
            } else {
                !suffix[i]
            };
            if !holds {
                continue;
            }
            for t in 0..cur.dop[i] {
                let srv: ServerId = cur.placement[i].server_of_task(t);
                if rm.free_on(srv) > 0 {
                    let _ = rm.reserve(srv, 1);
                }
            }
        }
        if rm.total_free() < n as u32 {
            // Not enough headroom to even re-plan; keep the frozen plan.
            continue;
        }
        let replanned =
            joint_optimize_traced(dag, &corrected, &rm, ctx.objective, &ctx.options, obs);
        let spliced = cur.splice(dag, &replanned, &suffix);
        // Feasibility certificate: the optimizer planned against the
        // deducted snapshot, but the splice mixes in prefix placements it
        // never saw — re-count the suffix before trusting it.
        let audit_clean = if cfg.audit_splices {
            let report = ditto_audit::audit_splice(dag, &rm, &spliced, &suffix);
            if !report.is_clean() {
                return Err(ExecError::InvalidSchedule(report.render()));
            }
            true
        } else {
            false
        };
        let dop_f = |sc: &Schedule| sc.dop.iter().map(|&d| d as f64).collect::<Vec<f64>>();
        let old_predicted_jct = predicted_jct(dag, &corrected, &dop_f(&cur), &cur.colocated);
        let new_predicted_jct =
            predicted_jct(dag, &corrected, &dop_f(&spliced), &spliced.colocated);
        // Risk adjustment: on a loss-prone store every external read is a
        // fault surface. A replan that externalizes seam edges or raises
        // the DoP of externally-reading stages buys its predicted gain
        // with extra loss draws — the very splice that wins 10% on a
        // clean store can lose it back to recovery waits at a 5% loss
        // rate. Estimate the per-read loss rate and mean recovery delay
        // from this run's own observations and charge each plan its
        // expected recovery delay before comparing.
        let recoveries = totals.object_losses + totals.object_corruptions;
        let (old_risk, new_risk) = if recoveries > 0 {
            let mut reads_seen: u64 = 0;
            for (i, _) in simulated.iter().enumerate().filter(|(_, &s)| s) {
                for e in dag.in_edges(StageId(i as u32)) {
                    if !cur.colocated[e.id.index()] {
                        reads_seen += u64::from(cur.dop[i]);
                    }
                }
            }
            let p_loss = (f64::from(recoveries) / reads_seen.max(1) as f64).min(1.0);
            let avg_rec = totals.recovery_delay_s / f64::from(recoveries);
            (
                expected_recovery_delay(dag, &cur, &suffix, p_loss, avg_rec),
                expected_recovery_delay(dag, &spliced, &suffix, p_loss, avg_rec),
            )
        } else {
            (0.0, 0.0)
        };
        let risk_penalty = new_risk - old_risk;
        let applied = new_predicted_jct + new_risk
            < (old_predicted_jct + old_risk) * (1.0 - cfg.min_gain) - 1e-12;
        let trigger = if new_reexecs > 0 && ev.step_factors.read > ev.step_factors.compute {
            ReplanTrigger::ObjectRecovery
        } else {
            ReplanTrigger::Drift
        };
        // Decision 0 is the schedule commit; replans continue the shared
        // monotonic sequence (replayed decisions included via `replans`).
        let decision_seq = replans.len() as u64 + 1;
        let record = ReplanRecord {
            trigger,
            at_stage: s.0,
            sim_time: now,
            factor: ev.factor,
            corrections: corrections.global,
            suffix_stages: n_suffix as u32,
            old_predicted_jct,
            new_predicted_jct,
            risk_penalty,
            audit_clean,
            applied,
            decision_seq,
        };
        // Write-ahead: the decision journals before its event fires or
        // the splice takes effect.
        if let Some(j) = jr.as_deref_mut() {
            j.append_replan(&record, &suffix, if applied { Some(&spliced) } else { None })?;
        }
        if obs.is_enabled() {
            obs.event(
                "sched.replan",
                Track::scheduler(0),
                now,
                vec![
                    ("trigger", match trigger {
                        ReplanTrigger::Drift => "drift",
                        ReplanTrigger::ObjectRecovery => "object-recovery",
                    }
                    .into()),
                    ("at_stage", s.0.into()),
                    ("factor", ev.factor.into()),
                    ("suffix_stages", (n_suffix as u64).into()),
                    ("old_predicted_jct", old_predicted_jct.into()),
                    ("new_predicted_jct", new_predicted_jct.into()),
                    ("applied", if applied { 1u64 } else { 0u64 }.into()),
                    ("risk_penalty", risk_penalty.into()),
                    ("audit_clean", if audit_clean { 1u64 } else { 0u64 }.into()),
                    ("corr_read", corrections.global.read.into()),
                    ("corr_compute", corrections.global.compute.into()),
                    ("corr_write", corrections.global.write.into()),
                    ("decision_seq", decision_seq.into()),
                ],
            );
        }
        replans.push(record);
        last_decision = Some((ev.factor, remaining));
        if applied {
            if obs.is_enabled() {
                // Seam edges of the applied splice: prefix producer →
                // replanned consumer. The race checker pins seam reads to
                // this instant — a consumer streaming through shared
                // memory across a seam would be reading state the
                // replanned placement no longer guarantees.
                for e in dag.edges() {
                    if !suffix[e.src.index()] && suffix[e.dst.index()] {
                        obs.event(
                            "hb.seam",
                            Track::scheduler(0),
                            now,
                            vec![
                                ("edge", (e.id.index() as u64).into()),
                                ("src_stage", e.src.0.into()),
                                ("dst_stage", e.dst.0.into()),
                            ],
                        );
                    }
                }
            }
            state.stats.rescheduled_stages += n_suffix as u32;
            cur = spliced;
        }
        }
    }

    let mut pass = finish_pass(state, dag, &cur, gt, obs);
    pass.trace.replans = replans;
    pass.metrics.faults.rescheduled_stages = pass
        .trace
        .replans
        .iter()
        .filter(|r| r.applied)
        .map(|r| r.suffix_stages)
        .sum();
    Ok((pass.trace, pass.metrics))
}

/// Expected serial lineage-recovery delay of a plan's not-yet-run suffix
/// under an estimated per-read object-loss rate: for each suffix stage,
/// the probability that at least one of its external (non-co-located)
/// reads draws a loss, times the observed mean recovery delay. Losses
/// within one stage overlap (independent objects recover concurrently),
/// while suffix stages are chained by their data dependencies, so the
/// per-stage expectations add.
fn expected_recovery_delay(
    dag: &JobDag,
    schedule: &Schedule,
    suffix: &[bool],
    p_loss: f64,
    avg_rec: f64,
) -> f64 {
    let mut total = 0.0;
    for s in dag.stages() {
        if !suffix[s.id.index()] {
            continue;
        }
        let mut reads: u32 = 0;
        for e in dag.in_edges(s.id) {
            if !schedule.colocated[e.id.index()] {
                reads += schedule.dop[s.id.index()];
            }
        }
        if reads > 0 {
            total += (1.0 - (1.0 - p_loss).powi(reads as i32)) * avg_rec;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::try_simulate_with_faults;
    use crate::groundtruth::ExecConfig;
    use ditto_cluster::ResourceManager;
    use ditto_core::{
        DittoScheduler, JointOptions, Objective, Scheduler, SchedulingContext,
    };
    use ditto_timemodel::model::RateConfig;
    use ditto_timemodel::JobTimeModel;

    fn fixture(
        free: &[u32],
    ) -> (
        JobDag,
        JobTimeModel,
        ResourceManager,
        Schedule,
        GroundTruth,
    ) {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        let schedule = DittoScheduler::new().schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        (dag, model, rm, schedule, GroundTruth::new(ExecConfig::default()))
    }

    fn ctx<'a>(model: &'a JobTimeModel, rm: &'a ResourceManager) -> ReschedulingContext<'a> {
        ReschedulingContext {
            model,
            resources: rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        }
    }

    #[test]
    fn no_faults_is_bit_identical_to_frozen_engine() {
        let (dag, model, rm, schedule, gt) = fixture(&[48, 32]);
        let plan = FaultPlan::none();
        let policy = RecoveryPolicy::none();
        let (ft, fm) =
            try_simulate_with_faults(&dag, &schedule, &gt, &plan, &policy, None).unwrap();
        let (at, am) = try_simulate_adaptive(
            &dag,
            &schedule,
            &gt,
            &plan,
            &policy,
            &ctx(&model, &rm),
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(at.replans.is_empty(), "no drift may be detected fault-free");
        assert_eq!(at.tasks, ft.tasks);
        assert_eq!(am, fm);
    }

    #[test]
    fn unit_drift_and_zero_loss_never_replan() {
        // The bit-identity satellite's core: drift factor exactly 1.0 and
        // zero loss probability must leave the detector silent — observed
        // equals expected structurally, not approximately.
        let (dag, model, rm, schedule, gt) = fixture(&[40, 24]);
        let plan = FaultPlan::none().with_drift(1.0);
        let policy = RecoveryPolicy::default();
        let (ft, fm) =
            try_simulate_with_faults(&dag, &schedule, &gt, &plan, &policy, None).unwrap();
        let (at, am) = try_simulate_adaptive(
            &dag,
            &schedule,
            &gt,
            &plan,
            &policy,
            &ctx(&model, &rm),
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(at.replans.is_empty());
        assert_eq!(at.tasks, ft.tasks);
        assert_eq!(am, fm);
    }

    #[test]
    fn drift_fires_replan_with_certified_records() {
        let (dag, model, rm, schedule, gt) = fixture(&[24, 16]);
        let plan = FaultPlan::none().with_drift(2.0);
        let policy = RecoveryPolicy::default();
        let (trace, metrics) = try_simulate_adaptive(
            &dag,
            &schedule,
            &gt,
            &plan,
            &policy,
            &ctx(&model, &rm),
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(!trace.replans.is_empty(), "2x drift must trip the band");
        for r in &trace.replans {
            assert!(r.audit_clean, "every splice must certify clean");
            assert_eq!(r.trigger, ReplanTrigger::Drift);
            assert!(r.factor > 1.25);
            assert!(r.corrections.compute > 1.5, "compute drift learned");
            assert!(
                (r.corrections.read - 1.0).abs() < 0.3,
                "read barely drifts: {}",
                r.corrections.read
            );
            assert!(r.old_predicted_jct.is_finite() && r.new_predicted_jct.is_finite());
        }
        let applied: u32 = trace
            .replans
            .iter()
            .filter(|r| r.applied)
            .map(|r| r.suffix_stages)
            .sum();
        assert_eq!(metrics.faults.rescheduled_stages, applied);
        assert!(metrics.jct > 0.0);
    }

    #[test]
    fn replans_are_bounded_and_re_armed() {
        let (dag, model, rm, schedule, gt) = fixture(&[24, 16]);
        let plan = FaultPlan::none().with_drift(3.0);
        let cfg = AdaptiveConfig {
            max_replans: 1,
            ..Default::default()
        };
        let (trace, _) = try_simulate_adaptive(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::default(),
            &ctx(&model, &rm),
            &cfg,
        )
        .unwrap();
        assert!(trace.replans.len() <= 1);
    }

    #[test]
    fn object_loss_escalates_to_replan_when_sustained() {
        // Lossy external storage inflates observed read steps through the
        // lineage-recovery wait; sustained loss walks up the escalation
        // ladder into a replan tagged as object recovery.
        let (dag, model, rm, schedule, gt) = fixture(&[24, 16]);
        let plan = FaultPlan::from_rates(crate::faults::FaultRates {
            loss_prob: 0.9,
            ..crate::faults::FaultRates::none(7)
        });
        let (trace, metrics) = try_simulate_adaptive(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::default(),
            &ctx(&model, &rm),
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(metrics.faults.lineage_reexecs > 0);
        if let Some(r) = trace.replans.first() {
            assert_eq!(r.trigger, ReplanTrigger::ObjectRecovery);
            assert!(r.corrections.read > 1.0);
        }
    }

    #[test]
    fn adaptive_beats_frozen_under_differential_drift() {
        // The headline robustness claim: under sustained compute drift on
        // a slot-constrained cluster, replanning with the corrected model
        // beats the frozen schedule's realized JCT.
        let (dag, model, rm, schedule, gt) = fixture(&[24, 16]);
        let plan = FaultPlan::none().with_drift(2.0);
        let policy = RecoveryPolicy::default();
        let (_, frozen) =
            try_simulate_with_faults(&dag, &schedule, &gt, &plan, &policy, None).unwrap();
        let (trace, adaptive) = try_simulate_adaptive(
            &dag,
            &schedule,
            &gt,
            &plan,
            &policy,
            &ctx(&model, &rm),
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(
            adaptive.jct <= frozen.jct + 1e-9,
            "adaptive {} must not lose to frozen {}",
            adaptive.jct,
            frozen.jct
        );
        if trace.replans.iter().any(|r| r.applied) {
            assert!(adaptive.jct < frozen.jct, "an applied replan must help");
        }
    }

    #[test]
    fn kind_scoped_drift_transfers_corrections_and_wins() {
        // Differential drift: only Join and GroupBy stages slow down.
        // Corrections learned from the first drifted stage of a kind
        // transfer through the detector's class layer to same-kind stages
        // that have not run, shifting the corrected α-ratios (Eq. 3/4),
        // and the applied replan realizes a strict JCT win.
        let (dag, model, rm, schedule, gt) = fixture(&[24, 16]);
        let plan = FaultPlan::none()
            .with_kind_drift(ditto_dag::StageKind::Join, 2.0)
            .with_kind_drift(ditto_dag::StageKind::GroupBy, 2.0);
        let policy = RecoveryPolicy::default();
        let (_, frozen) =
            try_simulate_with_faults(&dag, &schedule, &gt, &plan, &policy, None).unwrap();
        let (trace, adaptive) = try_simulate_adaptive(
            &dag,
            &schedule,
            &gt,
            &plan,
            &policy,
            &ctx(&model, &rm),
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(
            trace.replans.iter().any(|r| r.applied),
            "kind drift on a constrained cluster must apply a replan"
        );
        assert!(
            adaptive.jct < 0.90 * frozen.jct,
            "adaptive {:.2} must beat frozen {:.2} by >10% under kind drift",
            adaptive.jct,
            frozen.jct
        );
        for r in &trace.replans {
            assert!(r.audit_clean, "spliced schedule must certify clean");
            assert_eq!(
                r.risk_penalty, 0.0,
                "no observed losses means no risk adjustment"
            );
        }
    }
}
