//! Baseline schedulers from the paper's evaluation (§6, Fig. 12):
//!
//! * [`NimbleScheduler`] — NIMBLE (Caerus, NSDI '21): DoP proportional to
//!   each stage's input data size, tasks placed randomly, all shuffles via
//!   external storage;
//! * [`NimbleGroupScheduler`] — NIMBLE's parallelism + Ditto's greedy
//!   grouping (the "NIMBLE+Group" ablation);
//! * [`NimbleDopScheduler`] — Ditto's DoP ratio computing without grouping
//!   (the "NIMBLE+DoP" ablation);
//! * [`FixedDopScheduler`] — every stage at the same fixed DoP (Fig. 14);
//! * [`EvenSplitScheduler`] — slots divided evenly across stages (Fig. 1b).

use crate::dop::{compute_dop, round_dops};
use crate::grouping::{greedy_group_order, StageGroups};
use crate::placement::can_place;
use crate::schedule::{Schedule, TaskPlacement};
use crate::scheduler::{Scheduler, SchedulingContext};
use ditto_cluster::{ResourceManager, ServerId};
use ditto_dag::{JobDag, StageId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input bytes of a stage as NIMBLE sees them: external input plus
/// intermediate data arriving from upstream stages.
fn stage_input_bytes(dag: &JobDag, s: StageId) -> u64 {
    let edge_in: u64 = dag.in_edges(s).map(|e| e.bytes).sum();
    dag.stage(s).input_bytes + edge_in
}

/// DoPs proportional to input data size, summing to (at most) `c`.
pub fn nimble_dops(dag: &JobDag, c: u32) -> Vec<u32> {
    let inputs: Vec<f64> = dag
        .stages()
        .iter()
        .map(|s| stage_input_bytes(dag, s.id) as f64)
        .collect();
    let total: f64 = inputs.iter().sum();
    let n = dag.num_stages() as f64;
    let fractional: Vec<f64> = if total > 0.0 {
        inputs.iter().map(|b| b / total * c as f64).collect()
    } else {
        vec![c as f64 / n; dag.num_stages()]
    };
    round_dops(&fractional, c)
}

/// Random task placement: each task goes to a uniformly random server that
/// still has a free slot. Deterministic under the given seed.
fn random_placement(dop: &[u32], rm: &ResourceManager, seed: u64) -> Vec<TaskPlacement> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut free: Vec<u32> = (0..rm.num_servers())
        .map(|i| rm.free_on(ServerId(i as u32)))
        .collect();
    dop.iter()
        .map(|&d| {
            let mut counts: Vec<u32> = vec![0; free.len()];
            for _ in 0..d {
                let candidates: Vec<usize> =
                    (0..free.len()).filter(|&i| free[i] > 0).collect();
                assert!(
                    !candidates.is_empty(),
                    "random placement ran out of slots (Σdop exceeds C)"
                );
                let pick = candidates[rng.gen_range(0..candidates.len())];
                free[pick] -= 1;
                counts[pick] += 1;
            }
            TaskPlacement::Spread(
                counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| (ServerId(i as u32), c))
                    .collect(),
            )
        })
        .collect()
}

/// NIMBLE: DoP ∝ input size, random placement, no shared-memory use.
#[derive(Debug, Clone)]
pub struct NimbleScheduler {
    /// Seed for the random placement.
    pub seed: u64,
}

impl Default for NimbleScheduler {
    fn default() -> Self {
        NimbleScheduler { seed: 42 }
    }
}

impl Scheduler for NimbleScheduler {
    fn name(&self) -> &str {
        "nimble"
    }

    fn schedule(&self, ctx: &SchedulingContext<'_>) -> Schedule {
        let n = ctx.dag.num_stages();
        let dop = nimble_dops(ctx.dag, ctx.resources.total_free());
        let placement = random_placement(&dop, ctx.resources, self.seed);
        let groups = StageGroups::singletons(n);
        Schedule {
            scheduler: self.name().into(),
            dop,
            group_of: groups.group_of(n),
            groups: groups.groups(n),
            colocated: vec![false; ctx.dag.num_edges()],
            placement,
        }
    }
}

/// NIMBLE+Group: NIMBLE's DoPs, then Ditto's greedy grouping with the
/// best-fit placement check (but no DoP recomputation).
#[derive(Debug, Clone, Default)]
pub struct NimbleGroupScheduler;

impl Scheduler for NimbleGroupScheduler {
    fn name(&self) -> &str {
        "nimble+group"
    }

    fn schedule(&self, ctx: &SchedulingContext<'_>) -> Schedule {
        let n = ctx.dag.num_stages();
        let dop = nimble_dops(ctx.dag, ctx.resources.total_free());
        let mut groups = StageGroups::singletons(n);
        let mut colocated = groups.colocation_mask(ctx.dag);
        // Algorithm 2 proper: one pass over the greedy order, grouping
        // whatever places.
        let order = greedy_group_order(ctx.dag, ctx.model, &dop, &colocated, ctx.objective);
        for e in order {
            let edge = ctx.dag.edge(e);
            let mut trial = groups.clone();
            trial.union(edge.src, edge.dst);
            if can_place(ctx.dag, &dop, &trial, ctx.resources, true).is_some() {
                groups = trial;
                colocated = groups.colocation_mask(ctx.dag);
            }
        }
        let plan = can_place(ctx.dag, &dop, &groups, ctx.resources, true)
            .expect("singleton fallback always placeable");
        Schedule {
            scheduler: self.name().into(),
            dop,
            group_of: groups.group_of(n),
            groups: groups.groups(n),
            colocated,
            placement: plan.stage_placement,
        }
    }
}

/// NIMBLE+DoP: Ditto's DoP ratio computing, singleton groups, spread
/// placement (no shared-memory exploitation).
#[derive(Debug, Clone, Default)]
pub struct NimbleDopScheduler;

impl Scheduler for NimbleDopScheduler {
    fn name(&self) -> &str {
        "nimble+dop"
    }

    fn schedule(&self, ctx: &SchedulingContext<'_>) -> Schedule {
        let n = ctx.dag.num_stages();
        let colocated = vec![false; ctx.dag.num_edges()];
        let a = compute_dop(
            ctx.dag,
            ctx.model,
            &colocated,
            ctx.objective,
            ctx.resources.total_free().max(1),
        );
        let groups = StageGroups::singletons(n);
        let plan = can_place(ctx.dag, &a.dop, &groups, ctx.resources, true)
            .expect("singleton configuration within C is placeable");
        Schedule {
            scheduler: self.name().into(),
            dop: a.dop,
            group_of: groups.group_of(n),
            groups: groups.groups(n),
            colocated,
            placement: plan.stage_placement,
        }
    }
}

/// Every stage at the same fixed DoP (the Fig. 14 configuration).
#[derive(Debug, Clone)]
pub struct FixedDopScheduler {
    /// The DoP every stage uses.
    pub dop: u32,
}

impl Scheduler for FixedDopScheduler {
    fn name(&self) -> &str {
        "fixed-dop"
    }

    fn schedule(&self, ctx: &SchedulingContext<'_>) -> Schedule {
        let n = ctx.dag.num_stages();
        let per_stage = self.dop.max(1);
        let dop = vec![per_stage; n];
        let groups = StageGroups::singletons(n);
        let plan = can_place(ctx.dag, &dop, &groups, ctx.resources, true)
            .unwrap_or_else(|| {
                panic!(
                    "fixed DoP {} x {} stages exceeds cluster capacity {}",
                    per_stage,
                    n,
                    ctx.resources.total_free()
                )
            });
        Schedule {
            scheduler: self.name().into(),
            dop,
            group_of: groups.group_of(n),
            groups: groups.groups(n),
            colocated: vec![false; ctx.dag.num_edges()],
            placement: plan.stage_placement,
        }
    }
}

/// Slots split evenly across stages (the naive Fig. 1b configuration).
#[derive(Debug, Clone, Default)]
pub struct EvenSplitScheduler;

impl Scheduler for EvenSplitScheduler {
    fn name(&self) -> &str {
        "even-split"
    }

    fn schedule(&self, ctx: &SchedulingContext<'_>) -> Schedule {
        let n = ctx.dag.num_stages();
        let c = ctx.resources.total_free();
        let fractional = vec![c as f64 / n as f64; n];
        let dop = round_dops(&fractional, c);
        let groups = StageGroups::singletons(n);
        let plan = can_place(ctx.dag, &dop, &groups, ctx.resources, true)
            .expect("even split within C is placeable");
        Schedule {
            scheduler: self.name().into(),
            dop,
            group_of: groups.group_of(n),
            groups: groups.groups(n),
            colocated: vec![false; ctx.dag.num_edges()],
            placement: plan.stage_placement,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use ditto_dag::generators;
    use ditto_timemodel::model::RateConfig;
    use ditto_timemodel::JobTimeModel;

    fn ctx_parts() -> (JobDag, JobTimeModel, ResourceManager) {
        let dag = generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![96, 48, 24, 12, 8, 6, 4, 2]);
        (dag, model, rm)
    }

    #[test]
    fn nimble_dop_proportional_to_input() {
        let dag = generators::fig1_join();
        // map1 scans 8 GB, map2 2 GB, join gets 1 GB of intermediates.
        let dop = nimble_dops(&dag, 110);
        // Ratios ≈ 8 : 2 : 1 of 11 GB total.
        assert!(dop[0] > 3 * dop[1], "{dop:?}");
        assert!(dop[1] > dop[2], "{dop:?}");
        assert!(dop.iter().sum::<u32>() <= 110);
    }

    #[test]
    fn all_baselines_produce_valid_schedules() {
        let (dag, model, rm) = ctx_parts();
        let ctx = SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        };
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(NimbleScheduler::default()),
            Box::new(NimbleGroupScheduler),
            Box::new(NimbleDopScheduler),
            Box::new(FixedDopScheduler { dop: 8 }),
            Box::new(EvenSplitScheduler),
        ];
        for s in schedulers {
            let sch = s.schedule(&ctx);
            sch.validate(&dag).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert!(sch.total_slots() <= rm.total_free(), "{}", s.name());
        }
    }

    #[test]
    fn nimble_placement_deterministic_per_seed() {
        let (dag, model, rm) = ctx_parts();
        let ctx = SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        };
        let a = NimbleScheduler { seed: 7 }.schedule(&ctx);
        let b = NimbleScheduler { seed: 7 }.schedule(&ctx);
        assert_eq!(a.placement, b.placement);
        let c = NimbleScheduler { seed: 8 }.schedule(&ctx);
        // Overwhelmingly likely to differ.
        assert!(a.placement != c.placement || a.dop != c.dop);
    }

    #[test]
    fn nimble_never_colocates() {
        let (dag, model, rm) = ctx_parts();
        let ctx = SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        };
        let s = NimbleScheduler::default().schedule(&ctx);
        assert!(s.colocated.iter().all(|&c| !c));
        assert!(s.groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn nimble_group_colocates_something_in_roomy_cluster() {
        let dag = generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![96; 8]);
        let ctx = SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        };
        let s = NimbleGroupScheduler.schedule(&ctx);
        assert!(s.colocated.iter().any(|&c| c));
        s.validate(&dag).unwrap();
    }

    #[test]
    fn even_split_near_equal() {
        let (dag, model, rm) = ctx_parts();
        let ctx = SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        };
        let s = EvenSplitScheduler.schedule(&ctx);
        let min = s.dop.iter().min().unwrap();
        let max = s.dop.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn fixed_dop_too_large_panics() {
        let (dag, model, _) = ctx_parts();
        let rm = ResourceManager::from_free_slots(vec![4, 4]);
        let ctx = SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        };
        FixedDopScheduler { dop: 50 }.schedule(&ctx);
    }
}
