//! Group-by aggregation with HAVING support.
//!
//! Vectorized: group keys become fixed-width `u64` tuples (`i64` bits,
//! dictionary codes for strings) assigned dense group ids through a raw
//! [`TupleIdMap`] — no per-row `Vec<KeyPart>` allocation — and every
//! aggregate is a single accumulator pass over the input in row order,
//! which keeps float results bit-identical to the row-at-a-time
//! [`crate::reference::group_by_reference`].

use crate::column::{Column, DataType};
use crate::dict::StrDict;
use crate::expr::Pred;
use crate::hash::TupleIdMap;
use crate::selvec::SelVec;
use crate::table::{Field, Schema, Table};

/// An aggregate over one input column.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (ignored for `Count`).
    pub input: String,
    /// Output column name.
    pub output: String,
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count (`COUNT(*)`), output i64.
    Count,
    /// Distinct values of the input column, output i64.
    CountDistinct,
    /// Sum of a numeric column, output f64.
    Sum,
    /// Mean of a numeric column, output f64.
    Avg,
    /// Minimum of a numeric column, output f64.
    Min,
    /// Maximum of a numeric column, output f64.
    Max,
}

impl AggSpec {
    /// `COUNT(*) AS output`.
    pub fn count(output: &str) -> Self {
        AggSpec {
            func: AggFunc::Count,
            input: String::new(),
            output: output.into(),
        }
    }

    /// `FUNC(input) AS output`.
    pub fn new(func: AggFunc, input: &str, output: &str) -> Self {
        AggSpec {
            func,
            input: input.into(),
            output: output.into(),
        }
    }
}

/// One key column as exact `u64` row representatives: equal cells get
/// equal words, distinct cells distinct words (no hashing involved).
fn key_reprs(col: &Column) -> Vec<u64> {
    match col {
        Column::I64(v) => v.iter().map(|&x| x as u64).collect(),
        Column::Str(v) => {
            let (_, codes) = StrDict::encode_column(v);
            codes.into_iter().map(u64::from).collect()
        }
        Column::F64(_) => panic!("cannot group by a float column"),
    }
}

/// Exact `u64` row representatives for distinct-counting (floats compare
/// by bit pattern, exactly like the reference's `distinct_key`).
fn distinct_reprs(col: &Column) -> Vec<u64> {
    match col {
        Column::I64(v) => v.iter().map(|&x| x as u64).collect(),
        Column::F64(v) => v.iter().map(|x| x.to_bits()).collect(),
        Column::Str(v) => {
            let (_, codes) = StrDict::encode_column(v);
            codes.into_iter().map(u64::from).collect()
        }
    }
}

/// Fold a numeric column into one accumulator per group, visiting rows in
/// input order (so float accumulation matches the reference bit-for-bit).
fn fold_numeric(
    input: &Column,
    group_of: &[u32],
    groups: usize,
    init: f64,
    f: impl Fn(f64, f64) -> f64,
) -> Vec<f64> {
    let mut acc = vec![init; groups];
    match input {
        Column::I64(v) => {
            for (&id, &x) in group_of.iter().zip(v) {
                let a = &mut acc[id as usize];
                *a = f(*a, x as f64);
            }
        }
        Column::F64(v) => {
            for (&id, &x) in group_of.iter().zip(v) {
                let a = &mut acc[id as usize];
                *a = f(*a, x);
            }
        }
        Column::Str(_) => {
            // The reference rejects lazily, per evaluated row.
            if !group_of.is_empty() {
                panic!("numeric aggregate over a string column");
            }
        }
    }
    acc
}

/// `SELECT keys, aggs FROM t GROUP BY keys [HAVING having]`.
///
/// With empty `keys`, computes a single global aggregate row (0 rows when
/// the input is empty, matching SQL's behaviour for grouped aggregates).
/// Output rows are ordered by first appearance of the group in the input —
/// deterministic for comparing distributed and reference runs.
///
/// ```
/// use ditto_sql::column::{Column, DataType};
/// use ditto_sql::ops::{group_by, AggSpec};
/// use ditto_sql::ops::group_by::AggFunc;
/// use ditto_sql::table::{Schema, Table};
///
/// let t = Table::new(
///     Schema::new(&[("store", DataType::I64), ("amt", DataType::F64)]),
///     vec![Column::I64(vec![1, 2, 1]), Column::F64(vec![10.0, 5.0, 30.0])],
/// );
/// let g = group_by(&t, &["store"], &[AggSpec::new(AggFunc::Sum, "amt", "total")], None);
/// assert_eq!(g.column_req("store").as_i64(), &[1, 2]);
/// assert_eq!(g.column_req("total").as_f64(), &[40.0, 5.0]);
/// ```
pub fn group_by(t: &Table, keys: &[&str], aggs: &[AggSpec], having: Option<&Pred>) -> Table {
    let n = t.num_rows();
    let key_cols: Vec<&Column> = keys.iter().map(|k| t.column_req(k)).collect();
    let reprs: Vec<Vec<u64>> = key_cols.iter().map(|c| key_reprs(c)).collect();

    // Assign dense group ids in first-appearance order.
    let stride = key_cols.len();
    let mut map = TupleIdMap::with_capacity(stride, n);
    let mut group_of: Vec<u32> = Vec::with_capacity(n);
    let mut first_rows: Vec<u32> = Vec::new();
    let mut counts: Vec<i64> = Vec::new();
    let mut tuple: Vec<u64> = vec![0; stride];
    for row in 0..n {
        for (slot, r) in tuple.iter_mut().zip(&reprs) {
            *slot = r[row];
        }
        let (id, new) = map.insert_or_get(&tuple);
        if new {
            first_rows.push(row as u32);
            counts.push(0);
        }
        counts[id as usize] += 1;
        group_of.push(id);
    }
    let groups = first_rows.len();
    let firsts = SelVec::Rows(first_rows);

    // Assemble output columns: keys first, then aggregates.
    let mut fields: Vec<Field> = Vec::new();
    let mut out_cols: Vec<Column> = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        fields.push(Field {
            name: k.to_string(),
            dtype: key_cols[i].dtype(),
        });
        out_cols.push(key_cols[i].gather(&firsts));
    }

    for spec in aggs {
        let dtype = match spec.func {
            AggFunc::Count | AggFunc::CountDistinct => DataType::I64,
            _ => DataType::F64,
        };
        fields.push(Field {
            name: spec.output.clone(),
            dtype,
        });
        let col = match spec.func {
            AggFunc::Count => Column::I64(counts.clone()),
            AggFunc::CountDistinct => {
                let input = t.column_req(&spec.input);
                let vals = distinct_reprs(input);
                let mut seen = TupleIdMap::with_capacity(2, n);
                let mut dc = vec![0i64; groups];
                for (&id, &v) in group_of.iter().zip(&vals) {
                    let (_, new) = seen.insert_or_get(&[id as u64, v]);
                    if new {
                        dc[id as usize] += 1;
                    }
                }
                Column::I64(dc)
            }
            AggFunc::Sum => Column::F64(fold_numeric(
                t.column_req(&spec.input),
                &group_of,
                groups,
                0.0,
                |a, x| a + x,
            )),
            AggFunc::Avg => {
                let sums = fold_numeric(
                    t.column_req(&spec.input),
                    &group_of,
                    groups,
                    0.0,
                    |a, x| a + x,
                );
                Column::F64(
                    sums.iter()
                        .zip(&counts)
                        .map(|(s, &c)| s / c as f64)
                        .collect(),
                )
            }
            AggFunc::Min => Column::F64(fold_numeric(
                t.column_req(&spec.input),
                &group_of,
                groups,
                f64::INFINITY,
                f64::min,
            )),
            AggFunc::Max => Column::F64(fold_numeric(
                t.column_req(&spec.input),
                &group_of,
                groups,
                f64::NEG_INFINITY,
                f64::max,
            )),
        };
        out_cols.push(col);
    }

    let out = Table::new(Schema { fields }, out_cols);
    match having {
        Some(p) => {
            let mask = p.eval(&out);
            out.gather(&SelVec::from_mask(&mask))
        }
        None => out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Pred};

    fn t() -> Table {
        Table::new(
            Schema::new(&[
                ("store", DataType::I64),
                ("cust", DataType::Str),
                ("amt", DataType::F64),
            ]),
            vec![
                Column::I64(vec![1, 1, 2, 2, 2, 1]),
                Column::Str(vec![
                    "a".into(),
                    "b".into(),
                    "a".into(),
                    "a".into(),
                    "c".into(),
                    "a".into(),
                ]),
                Column::F64(vec![10.0, 20.0, 5.0, 15.0, 30.0, 40.0]),
            ],
        )
    }

    #[test]
    fn sum_count_by_key() {
        let g = group_by(
            &t(),
            &["store"],
            &[
                AggSpec::new(AggFunc::Sum, "amt", "total"),
                AggSpec::count("n"),
            ],
            None,
        );
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.column_req("store").as_i64(), &[1, 2]); // appearance order
        assert_eq!(g.column_req("total").as_f64(), &[70.0, 50.0]);
        assert_eq!(g.column_req("n").as_i64(), &[3, 3]);
    }

    #[test]
    fn multi_key_groups() {
        let g = group_by(&t(), &["store", "cust"], &[AggSpec::count("n")], None);
        assert_eq!(g.num_rows(), 4); // (1,a)(1,b)(2,a)(2,c)
        assert_eq!(g.column_req("n").as_i64(), &[2, 1, 2, 1]);
    }

    #[test]
    fn count_distinct() {
        let g = group_by(
            &t(),
            &["store"],
            &[AggSpec::new(AggFunc::CountDistinct, "cust", "dc")],
            None,
        );
        assert_eq!(g.column_req("dc").as_i64(), &[2, 2]);
    }

    #[test]
    fn avg_min_max() {
        let g = group_by(
            &t(),
            &["store"],
            &[
                AggSpec::new(AggFunc::Avg, "amt", "avg"),
                AggSpec::new(AggFunc::Min, "amt", "min"),
                AggSpec::new(AggFunc::Max, "amt", "max"),
            ],
            None,
        );
        let avg = g.column_req("avg").as_f64();
        assert!((avg[0] - 70.0 / 3.0).abs() < 1e-9);
        assert_eq!(g.column_req("min").as_f64(), &[10.0, 5.0]);
        assert_eq!(g.column_req("max").as_f64(), &[40.0, 30.0]);
    }

    #[test]
    fn having_filters_groups() {
        let having = Pred::Cmp {
            col: "dc".into(),
            op: CmpOp::Gt,
            value: crate::column::Value::I64(1),
        };
        let g = group_by(
            &t(),
            &["store", "cust"],
            &[AggSpec::new(AggFunc::CountDistinct, "amt", "dc")],
            Some(&having),
        );
        // Only groups with >1 distinct amt: (1,a) has 10,40.
        assert_eq!(g.num_rows(), 2);
    }

    #[test]
    fn global_aggregate_empty_keys() {
        let g = group_by(&t(), &[], &[AggSpec::new(AggFunc::Sum, "amt", "s")], None);
        assert_eq!(g.num_rows(), 1);
        assert_eq!(g.column_req("s").as_f64(), &[120.0]);
    }

    #[test]
    fn empty_input_empty_output() {
        let e = Table::empty(Schema::new(&[("store", DataType::I64), ("amt", DataType::F64)]));
        let g = group_by(&e, &["store"], &[AggSpec::count("n")], None);
        assert_eq!(g.num_rows(), 0);
        let g2 = group_by(&e, &[], &[AggSpec::count("n")], None);
        assert_eq!(g2.num_rows(), 0, "grouped aggregate over empty input");
    }

    #[test]
    #[should_panic(expected = "float column")]
    fn float_group_key_rejected() {
        group_by(&t(), &["amt"], &[AggSpec::count("n")], None);
    }

    #[test]
    fn matches_reference_across_agg_set() {
        use crate::reference::group_by_reference;
        let specs = [
            AggSpec::count("n"),
            AggSpec::new(AggFunc::CountDistinct, "cust", "dc"),
            AggSpec::new(AggFunc::Sum, "amt", "s"),
            AggSpec::new(AggFunc::Avg, "amt", "a"),
            AggSpec::new(AggFunc::Min, "amt", "lo"),
            AggSpec::new(AggFunc::Max, "amt", "hi"),
        ];
        for keys in [&["store"][..], &["cust"][..], &["store", "cust"][..], &[][..]] {
            assert_eq!(
                group_by(&t(), keys, &specs, None),
                group_by_reference(&t(), keys, &specs, None),
                "keys={keys:?}"
            );
        }
    }
}
