//! Row predicates: the filter language of the mini engine.

use crate::column::Value;
use crate::table::Table;
use std::collections::HashSet;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A predicate over one table's rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `column OP literal`.
    Cmp {
        /// Column name.
        col: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Value,
    },
    /// `column IN (set)` over integer columns.
    InI64 {
        /// Column name.
        col: String,
        /// The accepted values.
        set: Vec<i64>,
    },
    /// `column IN (set)` over string columns.
    InStr {
        /// Column name.
        col: String,
        /// The accepted values.
        set: Vec<String>,
    },
    /// `left OP scale·right` between two numeric columns of the same table
    /// (Q1's `ctr_total > 1.2 × avg_return`).
    ColCmp {
        /// Left column name.
        left: String,
        /// Operator.
        op: CmpOp,
        /// Right column name.
        right: String,
        /// Multiplier applied to the right column.
        scale: f64,
    },
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Convenience: `col = value` for integers.
    pub fn eq_i64(col: &str, v: i64) -> Pred {
        Pred::Cmp {
            col: col.into(),
            op: CmpOp::Eq,
            value: Value::I64(v),
        }
    }

    /// Convenience: `col = value` for strings.
    pub fn eq_str(col: &str, v: &str) -> Pred {
        Pred::Cmp {
            col: col.into(),
            op: CmpOp::Eq,
            value: Value::Str(v.into()),
        }
    }

    /// Convenience: `lo <= col <= hi` for integers (date ranges).
    pub fn between_i64(col: &str, lo: i64, hi: i64) -> Pred {
        Pred::And(vec![
            Pred::Cmp {
                col: col.into(),
                op: CmpOp::Ge,
                value: Value::I64(lo),
            },
            Pred::Cmp {
                col: col.into(),
                op: CmpOp::Le,
                value: Value::I64(hi),
            },
        ])
    }

    /// Evaluate to a row mask over the table.
    pub fn eval(&self, t: &Table) -> Vec<bool> {
        let n = t.num_rows();
        match self {
            Pred::Cmp { col, op, value } => {
                let c = t.column_req(col);
                (0..n).map(|r| cmp_value(&c.value(r), *op, value)).collect()
            }
            Pred::InI64 { col, set } => {
                let s: HashSet<i64> = set.iter().copied().collect();
                let c = t.column_req(col).as_i64();
                c.iter().map(|v| s.contains(v)).collect()
            }
            Pred::InStr { col, set } => {
                let s: HashSet<&str> = set.iter().map(|x| x.as_str()).collect();
                let c = t.column_req(col).as_str();
                c.iter().map(|v| s.contains(v.as_str())).collect()
            }
            Pred::ColCmp {
                left,
                op,
                right,
                scale,
            } => {
                let l = t.column_req(left);
                let r = t.column_req(right);
                (0..n)
                    .map(|row| {
                        let lv = numeric(&l.value(row));
                        let rv = numeric(&r.value(row)) * scale;
                        cmp_value(&Value::F64(lv), *op, &Value::F64(rv))
                    })
                    .collect()
            }
            Pred::And(ps) => {
                let mut mask = vec![true; n];
                for p in ps {
                    for (m, x) in mask.iter_mut().zip(p.eval(t)) {
                        *m = *m && x;
                    }
                }
                mask
            }
            Pred::Or(ps) => {
                let mut mask = vec![false; n];
                for p in ps {
                    for (m, x) in mask.iter_mut().zip(p.eval(t)) {
                        *m = *m || x;
                    }
                }
                mask
            }
            Pred::Not(p) => p.eval(t).into_iter().map(|b| !b).collect(),
        }
    }
}

fn numeric(v: &Value) -> f64 {
    match v {
        Value::I64(x) => *x as f64,
        Value::F64(x) => *x,
        Value::Str(s) => panic!("numeric comparison over string value {s:?}"),
    }
}

fn cmp_value(lhs: &Value, op: CmpOp, rhs: &Value) -> bool {
    use std::cmp::Ordering;
    let ord = match (lhs, rhs) {
        (Value::I64(a), Value::I64(b)) => a.cmp(b),
        (Value::F64(a), Value::F64(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (a, b) => panic!("type mismatch in comparison: {a:?} vs {b:?}"),
    };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, DataType};
    use crate::table::{Schema, Table};

    fn t() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("s", DataType::Str), ("x", DataType::F64)]),
            vec![
                Column::I64(vec![1, 2, 3, 4, 5]),
                Column::Str(vec!["TN".into(), "CA".into(), "TN".into(), "NY".into(), "WA".into()]),
                Column::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            ],
        )
    }

    #[test]
    fn comparisons() {
        let t = t();
        assert_eq!(Pred::eq_i64("k", 3).eval(&t), vec![false, false, true, false, false]);
        assert_eq!(
            Pred::eq_str("s", "TN").eval(&t),
            vec![true, false, true, false, false]
        );
        let gt = Pred::Cmp {
            col: "x".into(),
            op: CmpOp::Gt,
            value: Value::F64(3.0),
        };
        assert_eq!(gt.eval(&t), vec![false, false, false, true, true]);
    }

    #[test]
    fn between_and_in() {
        let t = t();
        assert_eq!(
            Pred::between_i64("k", 2, 4).eval(&t),
            vec![false, true, true, true, false]
        );
        let ins = Pred::InI64 {
            col: "k".into(),
            set: vec![1, 5],
        };
        assert_eq!(ins.eval(&t), vec![true, false, false, false, true]);
        let instr = Pred::InStr {
            col: "s".into(),
            set: vec!["CA".into(), "NY".into()],
        };
        assert_eq!(instr.eval(&t), vec![false, true, false, true, false]);
    }

    #[test]
    fn boolean_combinators() {
        let t = t();
        let p = Pred::Or(vec![Pred::eq_i64("k", 1), Pred::eq_i64("k", 2)]);
        assert_eq!(p.eval(&t), vec![true, true, false, false, false]);
        let p = Pred::And(vec![Pred::eq_str("s", "TN"), Pred::eq_i64("k", 3)]);
        assert_eq!(p.eval(&t), vec![false, false, true, false, false]);
        let p = Pred::Not(Box::new(Pred::eq_str("s", "TN")));
        assert_eq!(p.eval(&t), vec![false, true, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Pred::eq_i64("s", 1).eval(&t());
    }

    #[test]
    fn col_cmp_with_scale() {
        let t = t();
        // x > 2.0 * (k as f64): rows where x > 2k → none (x == k exactly).
        let p = Pred::ColCmp {
            left: "x".into(),
            op: CmpOp::Gt,
            right: "k".into(),
            scale: 2.0,
        };
        assert_eq!(p.eval(&t), vec![false; 5]);
        let p = Pred::ColCmp {
            left: "x".into(),
            op: CmpOp::Ge,
            right: "k".into(),
            scale: 0.5,
        };
        assert_eq!(p.eval(&t), vec![true; 5]);
    }
}
