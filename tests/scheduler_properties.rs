//! Property-based tests of the scheduler's invariants, over random DAGs
//! and random clusters.

use ditto::cluster::ResourceManager;
use ditto::core::dop::{compute_dop, round_dops};
use ditto::core::grouping::{greedy_group_order, StageGroups};
use ditto::core::joint::{joint_optimize, JointOptions};
use ditto::core::predict::{predicted_cost, predicted_jct};
use ditto::core::Objective;
use ditto::dag::generators::{random_dag, RandomDagConfig};
use ditto::dag::paths::{critical_path, DagWeights};
use ditto::timemodel::model::RateConfig;
use ditto::timemodel::JobTimeModel;
use proptest::prelude::*;

fn arb_dag_seed() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..500, 3usize..20, 2usize..6)
}

fn arb_cluster() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(4u32..96, 2..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fractional DoP assignment always distributes the full budget
    /// and every stage gets a positive share.
    #[test]
    fn dop_distributes_full_budget((seed, stages, layers) in arb_dag_seed(), c in 30u32..400) {
        let dag = random_dag(seed, &RandomDagConfig { stages, layers, ..Default::default() });
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let none = model.no_colocation();
        for obj in [Objective::Jct, Objective::Cost] {
            let a = compute_dop(&dag, &model, &none, obj, c);
            let total: f64 = a.fractional.iter().sum();
            prop_assert!((total - c as f64).abs() < 1e-6, "{obj}: {total} != {c}");
            prop_assert!(a.fractional.iter().all(|&f| f > 0.0));
            prop_assert!(a.dop.iter().all(|&d| d >= 1));
            prop_assert!(a.dop.iter().sum::<u32>() <= c.max(stages as u32));
        }
    }

    /// Rounding never exceeds the budget (when feasible) and never zeroes
    /// a stage.
    #[test]
    fn rounding_respects_budget(fracs in proptest::collection::vec(0.01f64..50.0, 1..30)) {
        let c = (fracs.iter().sum::<f64>().ceil() as u32).max(fracs.len() as u32);
        let dop = round_dops(&fracs, c);
        prop_assert!(dop.iter().all(|&d| d >= 1));
        prop_assert!(dop.iter().sum::<u32>() <= c.max(fracs.len() as u32));
        for (d, f) in dop.iter().zip(&fracs) {
            prop_assert!(*d as f64 <= f.max(1.0) + 1e-9, "rounding never exceeds the fraction");
        }
    }

    /// Joint optimization always yields a valid schedule within budget,
    /// and its predicted objective never exceeds the ungrouped baseline
    /// by more than rounding slack.
    #[test]
    fn joint_is_valid_and_no_worse((seed, stages, layers) in arb_dag_seed(), free in arb_cluster()) {
        let dag = random_dag(seed, &RandomDagConfig { stages, layers, ..Default::default() });
        prop_assume!(free.iter().sum::<u32>() >= stages as u32);
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free);
        for obj in [Objective::Jct, Objective::Cost] {
            let s = joint_optimize(&dag, &model, &rm, obj, &JointOptions::default());
            prop_assert!(s.validate(&dag).is_ok());
            prop_assert!(s.total_slots() <= rm.total_free());

            let none = model.no_colocation();
            let base = compute_dop(&dag, &model, &none, obj, rm.total_free());
            let frac: Vec<f64> = s.dop.iter().map(|&d| d as f64).collect();
            let (after, before) = match obj {
                Objective::Jct => (
                    predicted_jct(&dag, &model, &frac, &s.colocated),
                    predicted_jct(&dag, &model, &base.fractional, &none),
                ),
                Objective::Cost => (
                    predicted_cost(&dag, &model, &frac, &s.colocated),
                    predicted_cost(&dag, &model, &base.fractional, &none),
                ),
            };
            // Integer rounding can cost a little; grouping must pay it back.
            prop_assert!(after <= before * 1.25, "{obj}: {after} vs {before}");
        }
    }

    /// The greedy order is a permutation of the edges, for both objectives.
    #[test]
    fn greedy_order_is_permutation((seed, stages, layers) in arb_dag_seed()) {
        let dag = random_dag(seed, &RandomDagConfig { stages, layers, ..Default::default() });
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![4u32; dag.num_stages()];
        let colocated = vec![false; dag.num_edges()];
        for obj in [Objective::Jct, Objective::Cost] {
            let order = greedy_group_order(&dag, &model, &dop, &colocated, obj);
            let mut ids: Vec<u32> = order.iter().map(|e| e.0).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..dag.num_edges() as u32).collect::<Vec<_>>());
        }
    }

    /// The critical path is at least as heavy as every enumerated path.
    #[test]
    fn critical_path_dominates((seed, stages) in (0u64..200, 3usize..10)) {
        let dag = random_dag(seed, &RandomDagConfig { stages, layers: 3, ..Default::default() });
        let mut w = DagWeights::zeros(&dag);
        for (i, x) in w.node.iter_mut().enumerate() {
            *x = ((seed as usize + i * 7) % 13) as f64 + 0.5;
        }
        for (i, x) in w.edge.iter_mut().enumerate() {
            *x = ((seed as usize + i * 11) % 7) as f64;
        }
        let cp = critical_path(&dag, &w);
        for p in ditto::dag::paths::all_paths(&dag) {
            let pw = ditto::dag::paths::path_weight(&p, &w);
            prop_assert!(cp.weight >= pw - 1e-9, "cp {} < path {}", cp.weight, pw);
        }
    }

    /// Union-find groups are consistent with the colocation mask.
    #[test]
    fn groups_and_mask_agree((seed, stages, layers) in arb_dag_seed(), unions in proptest::collection::vec((0u32..20, 0u32..20), 0..10)) {
        let dag = random_dag(seed, &RandomDagConfig { stages, layers, ..Default::default() });
        let n = dag.num_stages();
        let mut g = StageGroups::singletons(n);
        for (a, b) in unions {
            let (a, b) = (a as usize % n, b as usize % n);
            g.union(ditto::dag::StageId(a as u32), ditto::dag::StageId(b as u32));
        }
        let mask = g.colocation_mask(&dag);
        for e in dag.edges() {
            prop_assert_eq!(mask[e.id.index()], g.same_group(e.src, e.dst));
        }
        // Groups partition the stages.
        let groups = g.groups(n);
        let total: usize = groups.iter().map(|x| x.len()).sum();
        prop_assert_eq!(total, n);
    }

    /// The incremental joint optimizer is bit-identical to the preserved
    /// reference implementation (the deeper deterministic sweep lives in
    /// `crates/core/tests/joint_equivalence.rs`).
    #[test]
    fn joint_matches_reference((seed, stages, layers) in arb_dag_seed(), free in arb_cluster()) {
        let dag = random_dag(seed, &RandomDagConfig { stages, layers, ..Default::default() });
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free);
        prop_assume!(rm.total_free() >= dag.num_stages() as u32);
        for obj in [Objective::Jct, Objective::Cost] {
            let fast = joint_optimize(&dag, &model, &rm, obj, &JointOptions::default());
            let slow = ditto::core::reference::joint_optimize_reference(
                &dag, &model, &rm, obj, &JointOptions::default());
            prop_assert_eq!(&fast.dop, &slow.dop);
            prop_assert_eq!(&fast.group_of, &slow.group_of);
            prop_assert_eq!(&fast.colocated, &slow.colocated);
            prop_assert_eq!(&fast.placement, &slow.placement);
        }
    }

    /// Rollback restores the union-find exactly; commit-time path
    /// compression preserves the smallest-id representative contract.
    #[test]
    fn stage_groups_rollback_and_compression(stages in 2usize..40, unions in proptest::collection::vec((0u32..40, 0u32..40), 1..20)) {
        let n = stages;
        let mut g = StageGroups::singletons(n);
        let mut plain = StageGroups::singletons(n);
        for (i, &(a, b)) in unions.iter().enumerate() {
            let (a, b) = (ditto::dag::StageId(a % n as u32), ditto::dag::StageId(b % n as u32));
            // Trial a throwaway union on g, then roll it back.
            let probe = ditto::dag::StageId((i as u32 * 7) % n as u32);
            let token = g.checkpoint();
            g.union(a, probe);
            g.rollback_to(token);
            // Now the real union on both, committing (compressing) g only.
            g.union(a, b);
            g.commit();
            plain.union(a, b);
            for s in 0..n as u32 {
                let s = ditto::dag::StageId(s);
                prop_assert_eq!(g.find(s), plain.find(s));
            }
        }
        for grp in g.groups(n) {
            prop_assert_eq!(g.find(grp[0]), *grp.iter().min().unwrap());
        }
    }
}
