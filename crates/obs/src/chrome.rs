//! Chrome `trace_event` JSON exporter.
//!
//! Emits the format consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): an object with a `traceEvents`
//! array of `"X"` (duration), `"i"` (instant), `"C"` (counter) and `"M"`
//! (metadata) events. Track groups map to `pid`, lanes to `tid`, so each
//! server renders as its own process box with task Gantt bars inside.
//!
//! Task/attempt spans are recorded as ONE span carrying phase-boundary
//! attributes (`read_start`, `compute_start`, `write_start`); the
//! exporter expands them into nested `setup`/`read`/`compute`/`write`
//! step slices here, keeping the simulator's hot path at a single
//! recorder call per task.
//!
//! Output is deterministic: timestamps are integral microseconds, events
//! are sorted by `(ts, pid, tid, phase, name)` with metadata first, and
//! the shim `serde_json` map preserves insertion order — the same
//! `TraceData` always serializes to the same bytes.

use crate::span::{AttrValue, SpanRecord, TraceData, Track};
use serde_json::{Map, Number, Value};

/// Phase boundary attributes expanded into step slices, in step order.
const STEP_BOUNDS: [&str; 3] = ["read_start", "compute_start", "write_start"];
/// Step slice names matching [`STEP_BOUNDS`] intervals.
const STEP_NAMES: [&str; 4] = ["setup", "read", "compute", "write"];

fn us(secs: f64) -> u64 {
    (secs.max(0.0) * 1e6).round() as u64
}

fn attr_value(v: &AttrValue) -> Value {
    match v {
        AttrValue::U64(x) => Value::Number(Number::PosInt(*x)),
        AttrValue::F64(x) => Value::Number(Number::Float(*x)),
        AttrValue::Str(s) => Value::String((*s).to_string()),
        AttrValue::Text(s) => Value::String(s.clone()),
    }
}

fn args_of(attrs: &[(&'static str, AttrValue)]) -> Value {
    let mut m = Map::new();
    for (k, v) in attrs {
        m.insert((*k).to_string(), attr_value(v));
    }
    Value::Object(m)
}

/// Sort key: metadata first, then by time, track, phase, name.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    meta: u8,
    ts: u64,
    pid: u32,
    tid: u32,
    phase: u8,
    name: String,
    seq: u32,
}

struct Builder {
    events: Vec<(Key, Value)>,
    seq: u32,
}

impl Builder {
    fn push(&mut self, ph: &str, name: &str, track: Track, ts: u64, dur: Option<u64>, args: Value) {
        let mut m = Map::new();
        m.insert("name".into(), Value::String(name.to_string()));
        m.insert("ph".into(), Value::String(ph.to_string()));
        m.insert("ts".into(), Value::Number(Number::PosInt(ts)));
        if let Some(d) = dur {
            m.insert("dur".into(), Value::Number(Number::PosInt(d)));
        }
        m.insert("pid".into(), Value::Number(Number::PosInt(track.group as u64)));
        m.insert("tid".into(), Value::Number(Number::PosInt(track.lane as u64)));
        if ph == "i" {
            m.insert("s".into(), Value::String("t".to_string()));
        }
        if !matches!(&args, Value::Object(o) if o.is_empty()) {
            m.insert("args".into(), args);
        }
        let phase = match ph {
            "M" => 0,
            "X" => 1,
            "C" => 2,
            _ => 3,
        };
        self.events.push((
            Key {
                meta: u8::from(ph != "M"),
                ts,
                pid: track.group,
                tid: track.lane,
                phase,
                name: name.to_string(),
                seq: self.seq,
            },
            Value::Object(m),
        ));
        self.seq += 1;
    }
}

/// Step boundaries of a task-like span: `[start, read, compute, write, end]`
/// when all three phase attrs are present and ordered; `None` otherwise.
fn step_bounds(span: &SpanRecord) -> Option<[f64; 5]> {
    let r = span.attr_f64(STEP_BOUNDS[0])?;
    let c = span.attr_f64(STEP_BOUNDS[1])?;
    let w = span.attr_f64(STEP_BOUNDS[2])?;
    let b = [span.start, r, c, w, span.end];
    if b.windows(2).all(|p| p[1] >= p[0]) {
        Some(b)
    } else {
        None
    }
}

/// Serialize a finished trace to Chrome `trace_event` JSON (compact,
/// byte-stable for identical input).
pub fn to_chrome_trace(data: &TraceData) -> String {
    let mut b = Builder {
        events: Vec::new(),
        seq: 0,
    };

    for (&group, name) in &data.track_names {
        let mut args = Map::new();
        args.insert("name".into(), Value::String(name.clone()));
        b.push(
            "M",
            "process_name",
            Track { group, lane: 0 },
            0,
            None,
            Value::Object(args),
        );
    }

    for span in &data.spans {
        if !span.end.is_finite() {
            continue; // never closed; skip rather than fabricate an end
        }
        let start = us(span.start);
        let dur = us(span.end).saturating_sub(start);
        b.push("X", span.name, span.track, start, Some(dur), args_of(&span.attrs));
        if let Some(bounds) = step_bounds(span) {
            for (i, name) in STEP_NAMES.iter().enumerate() {
                let s = us(bounds[i]);
                let e = us(bounds[i + 1]);
                if e > s {
                    b.push("X", name, span.track, s, Some(e - s), args_of(&[]));
                }
            }
        }
    }

    for ev in &data.events {
        b.push("i", ev.name, ev.track, us(ev.ts), None, args_of(&ev.attrs));
    }

    for sample in &data.samples {
        let mut args = Map::new();
        args.insert(
            sample.series.clone(),
            Value::Number(Number::Float(sample.total)),
        );
        b.push(
            "C",
            sample.name,
            Track::storage(),
            us(sample.ts),
            None,
            Value::Object(args),
        );
    }

    b.events.sort_by(|a, b| a.0.cmp(&b.0));
    let events: Vec<Value> = b.events.into_iter().map(|(_, v)| v).collect();

    let mut root = Map::new();
    root.insert("traceEvents".into(), Value::Array(events));
    root.insert("displayTimeUnit".into(), Value::String("ms".to_string()));
    Value::Object(root).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;

    fn demo_trace() -> TraceData {
        let rec = Recorder::new();
        rec.name_track(Track::SERVER_BASE, "server 0");
        rec.name_track(Track::SCHEDULER_GROUP, "scheduler");
        rec.span(
            "task",
            Track::server(0, 5),
            1.0,
            4.0,
            vec![
                ("stage", 0u32.into()),
                ("read_start", 1.5f64.into()),
                ("compute_start", 2.0f64.into()),
                ("write_start", 3.5f64.into()),
            ],
        );
        rec.span("sched.joint", Track::scheduler(0), 0.0, 0.5, vec![]);
        rec.event(
            "fault.crashed",
            Track::server(0, 5),
            2.5,
            vec![("attempt", 0u32.into())],
        );
        rec.counter_add("storage.bytes", "s3", 1024.0, 1.0);
        rec.finish()
    }

    #[test]
    fn expands_task_steps() {
        let json = to_chrome_trace(&demo_trace());
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
        for expected in ["process_name", "task", "setup", "read", "compute", "write", "sched.joint", "fault.crashed", "storage.bytes"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        let read = events.iter().find(|e| e["name"] == "read").unwrap();
        assert_eq!(read["ts"].as_u64(), Some(1_500_000));
        assert_eq!(read["dur"].as_u64(), Some(500_000));
        assert_eq!(read["pid"].as_u64(), Some(Track::SERVER_BASE as u64));
        assert_eq!(read["tid"].as_u64(), Some(5));
    }

    #[test]
    fn byte_stable_across_exports() {
        let data = demo_trace();
        assert_eq!(to_chrome_trace(&data), to_chrome_trace(&data));
    }

    #[test]
    fn metadata_sorts_first() {
        let json = to_chrome_trace(&demo_trace());
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events[0]["ph"], "M");
        assert_eq!(events[1]["ph"], "M");
        assert_ne!(events[2]["ph"], "M");
    }

    #[test]
    fn skips_unclosed_spans_and_bad_bounds() {
        let rec = Recorder::new();
        rec.begin("open", Track::job(0), 0.0, crate::span::SpanId::NONE, vec![]);
        // Out-of-order phase bounds: span still exported, steps are not.
        rec.span(
            "task",
            Track::server(0, 0),
            0.0,
            2.0,
            vec![
                ("read_start", 1.5f64.into()),
                ("compute_start", 1.0f64.into()),
                ("write_start", 1.8f64.into()),
            ],
        );
        let json = to_chrome_trace(&rec.finish());
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
        assert!(!names.contains(&"open"));
        assert!(names.contains(&"task"));
        assert!(!names.contains(&"read"));
    }
}
