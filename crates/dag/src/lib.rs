#![warn(missing_docs)]

//! # ditto-dag — job DAG substrate
//!
//! Data analytics jobs are represented as directed acyclic graphs (DAGs) of
//! *stages*; each stage executes as a configurable number of parallel tasks
//! (the *degree of parallelism*, DoP). Edges are *data dependencies* between
//! stages and carry a communication pattern ([`EdgeKind`]): shuffle, gather,
//! or all-gather/broadcast.
//!
//! This crate is the structural substrate of the Ditto reproduction:
//!
//! * [`JobDag`] — the graph itself, with validation, topological ordering,
//!   depth labelling (distance to the final stage, as used by the bottom-up
//!   DoP ratio computation of the paper's Algorithm 1), and path utilities.
//! * [`builder::DagBuilder`] — fluent construction API.
//! * [`paths`] — path enumeration and weighted critical-path computation
//!   (the object the greedy grouping algorithm of §4.3 manipulates).
//! * [`generators`] — canonical DAG shapes used throughout the paper and the
//!   evaluation: the Fig. 1 join DAG, the Q95 9-stage DAG of Fig. 13, chains,
//!   fan-in trees, diamonds and seeded random DAGs.
//!
//! The crate is deliberately free of scheduling logic: time models live in
//! `ditto-timemodel`, the scheduler in `ditto-core`.

pub mod builder;
pub mod error;
pub mod export;
pub mod generators;
pub mod graph;
pub mod paths;
pub mod stage;
pub mod topo;

pub use builder::DagBuilder;
pub use error::DagError;
pub use graph::{Edge, EdgeId, EdgeKind, JobDag};
pub use stage::{Stage, StageId, StageKind};
