//! Transactional slot allocation over a free-slot snapshot.
//!
//! The scheduler's placement check (paper §4.4) repeatedly *tries* to place
//! stage groups and backtracks when a grouping turns out infeasible. The
//! [`ResourceManager`] supports that: it works on a cheap `Vec<u32>`
//! snapshot that can be cloned, mutated speculatively and thrown away.

use crate::cluster::Cluster;
use crate::server::ServerId;

/// A free-slot snapshot with reserve/release and best-fit queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceManager {
    free: Vec<u32>,
}

impl ResourceManager {
    /// Snapshot the current availability of a cluster.
    pub fn snapshot(cluster: &Cluster) -> Self {
        ResourceManager {
            free: cluster.free_slots(),
        }
    }

    /// Build from an explicit free-slot vector.
    pub fn from_free_slots(free: Vec<u32>) -> Self {
        assert!(!free.is_empty(), "cluster must have at least one server");
        ResourceManager { free }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.free.len()
    }

    /// Overwrite this snapshot with another's free slots, reusing the
    /// existing allocation. Lets speculative placement checks reset a
    /// scratch manager without cloning per attempt.
    pub fn copy_free_from(&mut self, other: &Self) {
        self.free.clone_from(&other.free);
    }

    /// Free slots on one server.
    pub fn free_on(&self, s: ServerId) -> u32 {
        self.free[s.index()]
    }

    /// Total free slots (the paper's `C`).
    pub fn total_free(&self) -> u32 {
        self.free.iter().sum()
    }

    /// Largest single-server free count.
    pub fn max_free(&self) -> u32 {
        self.free.iter().copied().max().unwrap_or(0)
    }

    /// Reserve `n` slots on a specific server; `false` if insufficient.
    #[must_use]
    pub fn reserve(&mut self, s: ServerId, n: u32) -> bool {
        let f = &mut self.free[s.index()];
        if *f < n {
            return false;
        }
        *f -= n;
        true
    }

    /// Release `n` slots on a server.
    pub fn release(&mut self, s: ServerId, n: u32) {
        self.free[s.index()] += n;
    }

    /// Remove a failed server from the snapshot: its free slots drop to
    /// zero while indices stay stable (so `ServerId`s keep their meaning).
    /// Returns the slots lost. Used by failure-aware rescheduling to
    /// replan the remaining work on the surviving cluster.
    pub fn fail_server(&mut self, idx: usize) -> u32 {
        let lost = self.free[idx];
        self.free[idx] = 0;
        lost
    }

    /// Best-fit server for `n` slots: the server whose free count is the
    /// *smallest* that still fits `n` (nearest slot number, §4.4). Ties go
    /// to the lower server id. `None` if no server fits.
    pub fn best_fit(&self, n: u32) -> Option<ServerId> {
        self.free
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f >= n)
            .min_by_key(|&(i, &f)| (f, i))
            .map(|(i, _)| ServerId(i as u32))
    }

    /// Reserve `n` slots on the best-fit server, returning where.
    pub fn reserve_best_fit(&mut self, n: u32) -> Option<ServerId> {
        let s = self.best_fit(n)?;
        let ok = self.reserve(s, n);
        debug_assert!(ok);
        Some(s)
    }

    /// Spread `n` single-slot tasks across servers, preferring emptier
    /// servers last (fills the fullest-but-fitting first is unnecessary for
    /// singles; any server works). Returns per-server counts, or `None` if
    /// fewer than `n` slots remain in total. Used for ungrouped stages whose
    /// tasks have no co-location requirement.
    pub fn reserve_spread(&mut self, n: u32) -> Option<Vec<(ServerId, u32)>> {
        if self.total_free() < n {
            return None;
        }
        let mut left = n;
        let mut out = Vec::new();
        // Deterministic: walk servers in id order.
        for i in 0..self.free.len() {
            if left == 0 {
                break;
            }
            let take = self.free[i].min(left);
            if take > 0 {
                self.free[i] -= take;
                out.push((ServerId(i as u32), take));
                left -= take;
            }
        }
        debug_assert_eq!(left, 0);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(free: &[u32]) -> ResourceManager {
        ResourceManager::from_free_slots(free.to_vec())
    }

    #[test]
    fn best_fit_picks_tightest() {
        let m = rm(&[10, 4, 7]);
        assert_eq!(m.best_fit(4), Some(ServerId(1)));
        assert_eq!(m.best_fit(5), Some(ServerId(2)));
        assert_eq!(m.best_fit(8), Some(ServerId(0)));
        assert_eq!(m.best_fit(11), None);
    }

    #[test]
    fn best_fit_tie_breaks_by_id() {
        let m = rm(&[6, 6]);
        assert_eq!(m.best_fit(3), Some(ServerId(0)));
    }

    #[test]
    fn reserve_best_fit_mutates() {
        let mut m = rm(&[10, 4]);
        assert_eq!(m.reserve_best_fit(4), Some(ServerId(1)));
        assert_eq!(m.free_on(ServerId(1)), 0);
        assert_eq!(m.total_free(), 10);
    }

    #[test]
    fn reserve_insufficient_fails_cleanly() {
        let mut m = rm(&[3]);
        assert!(!m.reserve(ServerId(0), 4));
        assert_eq!(m.free_on(ServerId(0)), 3);
    }

    #[test]
    fn spread_across_servers() {
        let mut m = rm(&[3, 2, 5]);
        let placement = m.reserve_spread(7).unwrap();
        let total: u32 = placement.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 7);
        assert_eq!(m.total_free(), 3);
    }

    #[test]
    fn spread_fails_when_short() {
        let mut m = rm(&[1, 1]);
        assert!(m.reserve_spread(3).is_none());
        assert_eq!(m.total_free(), 2, "failed spread must not mutate");
    }

    #[test]
    fn fail_server_zeroes_but_keeps_indices() {
        let mut m = rm(&[4, 6, 2]);
        assert_eq!(m.fail_server(1), 6);
        assert_eq!(m.num_servers(), 3, "indices stay stable");
        assert_eq!(m.free_on(ServerId(1)), 0);
        assert_eq!(m.total_free(), 6);
        assert_eq!(m.best_fit(3), Some(ServerId(0)), "failed server never fits");
        assert_eq!(m.fail_server(1), 0, "idempotent");
    }

    #[test]
    fn snapshot_matches_cluster() {
        let c = crate::Cluster::uniform(3, 5);
        let m = ResourceManager::snapshot(&c);
        assert_eq!(m.total_free(), 15);
        assert_eq!(m.num_servers(), 3);
    }
}
