//! Fault injection and recovery: how Ditto's schedules hold up when
//! functions crash, straggle and whole servers die.
//!
//! Three demonstrations on Q95 against the paper's Zipf-0.9 testbed:
//!
//! 1. a deterministic fault sweep (crash + straggler rates) comparing
//!    Ditto and NIMBLE schedules under bounded retry vs retry +
//!    speculative re-execution;
//! 2. a single run dissected at the attempt level — who crashed, what
//!    was wasted, what recovery cost;
//! 3. a whole-server failure mid-job, recovered by replanning the
//!    not-yet-started suffix of the DAG on the surviving servers.
//!
//! ```sh
//! cargo run --release --example fault_sweep
//! cargo run --release --example fault_sweep -- --trace-out faults.json
//! ```
//!
//! With `--trace-out <path>` the attempt-level run (§2 below) executes
//! with telemetry enabled and its full stream — scheduler decisions,
//! per-attempt task spans, fault events, storage byte counters — is
//! written as a Chrome trace_event file for <https://ui.perfetto.dev>.

use ditto::cluster::{Cluster, ResourceManager, ServerId, SlotDistribution};
use ditto::core::{DittoScheduler, JointOptions, Objective, Scheduler, SchedulingContext};
use ditto::core::baselines::NimbleScheduler;
use ditto::exec::{
    profile_job, simulate, try_simulate_with_faults, try_simulate_with_faults_traced, ExecConfig,
    FaultPlan, FaultRates, GroundTruth, RecoveryPolicy, ReschedulingContext,
};
use ditto::obs::{critical_path, summary_table, to_chrome_trace, Recorder};
use ditto::sql::queries::Query;
use ditto::sql::{Database, ScaleConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = match args.iter().position(|a| a == "--trace-out") {
        Some(i) => {
            args.remove(i);
            assert!(i < args.len(), "--trace-out needs a path argument");
            Some(args.remove(i))
        }
        None => None,
    };
    let db = Database::generate(ScaleConfig::with_sf(0.5));
    let mut plan = Query::Q95.prepared_plan(&db);
    plan.scale_volumes(40_000.0);
    let gt = GroundTruth::new(ExecConfig::default());
    let profile = profile_job(&plan.dag, &gt, &[10, 20, 40, 80, 120]);
    let (model, _) = profile.build_model(&plan.dag);
    let rm = ResourceManager::snapshot(&Cluster::paper_testbed(&SlotDistribution::zipf_09()));

    // ---- 1. fault sweep: Ditto vs NIMBLE, retry vs retry+speculation ----
    println!("== fault sweep (crash+straggler rate -> JCT degradation) ==");
    println!(
        "{:<8} {:<12} {:>6} {:>12} {:>10} {:>9} {:>12}",
        "sched", "policy", "rate", "jct (s)", "degrade", "attempts", "wasted GB*s"
    );
    let ditto = DittoScheduler::new();
    let nimble = NimbleScheduler::default();
    let schedulers: [(&dyn Scheduler, &str); 2] = [(&ditto, "ditto"), (&nimble, "nimble")];
    for (scheduler, name) in schedulers {
        let schedule = scheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let (_, base) = simulate(&plan.dag, &schedule, &gt);
        for rate in [0.02, 0.05, 0.1, 0.2] {
            for (policy_name, policy) in [
                ("retry", RecoveryPolicy { max_retries: 16, ..RecoveryPolicy::retry_only() }),
                ("retry+spec", RecoveryPolicy { max_retries: 16, ..RecoveryPolicy::default() }),
            ] {
                let faults = FaultPlan::from_rates(FaultRates {
                    crash_prob: rate,
                    straggler_prob: rate,
                    straggler_slowdown: 4.0,
                    ..FaultRates::none(17)
                });
                let (_, m) =
                    try_simulate_with_faults(&plan.dag, &schedule, &gt, &faults, &policy, None)
                        .expect("recoverable");
                println!(
                    "{:<8} {:<12} {:>6.2} {:>12.1} {:>9.2}x {:>9} {:>12.0}",
                    name,
                    policy_name,
                    rate,
                    m.jct,
                    m.jct / base.jct,
                    m.faults.extra_attempts,
                    m.faults.wasted_gb_s,
                );
            }
        }
    }

    // ---- 2. one run under the microscope ----
    println!("\n== attempt-level accounting (rate 0.1, ditto, retry+spec) ==");
    let obs = if trace_out.is_some() { Recorder::new() } else { Recorder::disabled() };
    let schedule = ditto.schedule_traced(
        &SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        },
        &obs,
    );
    let faults = FaultPlan::from_rates(FaultRates {
        crash_prob: 0.1,
        straggler_prob: 0.1,
        straggler_slowdown: 4.0,
        ..FaultRates::none(17)
    });
    let policy = RecoveryPolicy { max_retries: 16, ..RecoveryPolicy::default() };
    let (trace, m) =
        try_simulate_with_faults_traced(&plan.dag, &schedule, &gt, &faults, &policy, None, &obs)
            .expect("recoverable");
    for a in trace.attempts.iter().take(12) {
        println!(
            "  stage {:>2} task {:>3} attempt {} on {}: {:>7.1}s..{:<7.1}s {:?} (wasted {:.0} GB*s)",
            a.stage, a.task, a.attempt, a.server, a.start, a.end, a.outcome, a.wasted_gb_s
        );
    }
    if trace.attempts.len() > 12 {
        println!("  ... {} more attempt records", trace.attempts.len() - 12);
    }
    println!(
        "  total: {} extra attempts, {:.0} GB*s wasted, {:.1}s recovery delay, {} speculative copies",
        m.faults.extra_attempts, m.faults.wasted_gb_s, m.faults.recovery_delay_s,
        m.faults.speculative_copies,
    );
    if let Some(path) = &trace_out {
        let data = obs.finish();
        let chrome = to_chrome_trace(&data);
        std::fs::write(path, &chrome).expect("write trace file");
        println!(
            "\n  wrote {path} ({} bytes, {} spans, {} events) — load in https://ui.perfetto.dev",
            chrome.len(),
            data.spans.len(),
            data.events.len(),
        );
        println!("{}", summary_table(&data));
        println!("{}", critical_path(&data).render());
    }

    // ---- 3. whole-server failure with suffix rescheduling ----
    let (_, base) = simulate(&plan.dag, &schedule, &gt);
    let t_fail = base.jct * 0.3;
    println!("\n== server 0 fails at t={t_fail:.1}s (30% into the job) ==");
    let faults = FaultPlan::none().and_server_failure(ServerId(0), t_fail);
    let ctx = ReschedulingContext {
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
        options: JointOptions::default(),
    };
    let (trace, m) = try_simulate_with_faults(
        &plan.dag,
        &schedule,
        &gt,
        &faults,
        &RecoveryPolicy::default(),
        Some(&ctx),
    )
    .expect("job survives a single server failure");
    println!("  fault-free JCT {:.1}s -> {:.1}s under failure", base.jct, m.jct);
    println!(
        "  {} stages replanned on the surviving servers, {} attempts killed with the server",
        m.faults.rescheduled_stages,
        trace
            .attempts
            .iter()
            .filter(|a| a.outcome == ditto::exec::AttemptOutcome::ServerLost)
            .count(),
    );
    let on_failed_after = trace
        .tasks
        .iter()
        .filter(|t| t.launch >= t_fail && t.server == ServerId(0))
        .count();
    println!("  tasks placed on the dead server after the failure: {on_failed_after}");
}
