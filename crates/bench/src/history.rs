//! Bench history: config-fingerprinted records + the regression gate.
//!
//! Every `figures -- sched|adapt|faults|telemetry` run appends one
//! [`HistoryRecord`] per experiment to `BENCH_HISTORY.jsonl` (override
//! with `DITTO_HISTORY_PATH`). Records are:
//!
//! * **config-fingerprinted** — an FNV-64 hash of the experiment name
//!   plus its configuration description, so `figures -- regress` only
//!   compares runs of the *same* experiment shape (changing the sweep
//!   grid starts a fresh history rather than tripping the gate);
//! * **machine-normalized** — each record carries a calibration number
//!   ([`calibration_ms`]: a fixed arithmetic loop, best of 3) measured
//!   on the machine that produced it; wall-clock metrics (names ending
//!   `_ms` / `_us` / `_micros`) are divided by it before comparison, so
//!   a history written on a fast CI box doesn't flag a laptop run.
//!
//! [`check_regression`] compares the current run's metrics against the
//! last K matching records with noise-aware thresholds: a metric
//! regresses when it exceeds `median + max(rel_tol × median,
//! mad_mult × 1.4826 × MAD)` of its history. All metrics are
//! lower-is-better (JCTs, wall times, overhead percentages). A
//! min-run-count guard keeps the gate quiet until the history has
//! enough samples to estimate noise.
//!
//! Testing hook: `DITTO_REGRESS_INJECT=<factor>` multiplies every
//! current-run metric before the comparison — CI uses it to prove the
//! gate fires on a synthetic 10% slowdown.

use serde_json::{Map, Number, Value};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Default history file, at the repo root next to `BENCH_*.json`.
pub const HISTORY_FILE: &str = "BENCH_HISTORY.jsonl";

/// One benchmark run's record in the history stream.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Experiment name (`sched`, `adapt`, `faults`, `telemetry`).
    pub experiment: String,
    /// FNV-64 hex fingerprint of (experiment, config description).
    pub fingerprint: String,
    /// Record time, seconds since the Unix epoch.
    pub unix_seconds: u64,
    /// Producing machine (`os/arch`, plus `HOSTNAME` when set).
    pub host: String,
    /// Machine-speed calibration: [`calibration_ms`] on the producer.
    pub calib_ms: f64,
    /// Named metric values, all lower-is-better.
    pub metrics: Vec<(String, f64)>,
}

/// FNV-1a 64-bit, hex-encoded — stable across platforms and runs.
pub fn fingerprint(experiment: &str, config_desc: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment.bytes().chain([0u8]).chain(config_desc.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Calibrate this machine's scalar speed: a fixed integer-arithmetic
/// loop, best (fastest) of 3, in milliseconds. Wall-clock metrics divide
/// by this before cross-machine comparison.
pub fn calibration_ms() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let mut acc: u64 = 0x9e37_79b9;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            acc ^= acc >> 33;
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        // The accumulator must survive the optimizer or the loop is free.
        if acc == 0 {
            eprintln!("calibration accumulator hit zero");
        }
        best = best.min(elapsed);
    }
    best
}

impl HistoryRecord {
    /// Build a record for the current machine and time.
    pub fn now(experiment: &str, config_desc: &str, metrics: Vec<(String, f64)>) -> Self {
        let unix_seconds = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let host = match std::env::var("HOSTNAME") {
            Ok(h) if !h.is_empty() => {
                format!("{}/{}/{h}", std::env::consts::OS, std::env::consts::ARCH)
            }
            _ => format!("{}/{}", std::env::consts::OS, std::env::consts::ARCH),
        };
        HistoryRecord {
            experiment: experiment.to_string(),
            fingerprint: fingerprint(experiment, config_desc),
            unix_seconds,
            host,
            calib_ms: calibration_ms(),
            metrics,
        }
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut m = Map::new();
        m.insert(
            "experiment".to_string(),
            Value::String(self.experiment.clone()),
        );
        m.insert(
            "fingerprint".to_string(),
            Value::String(self.fingerprint.clone()),
        );
        m.insert(
            "unix_seconds".to_string(),
            Value::Number(Number::PosInt(self.unix_seconds)),
        );
        m.insert("host".to_string(), Value::String(self.host.clone()));
        m.insert(
            "calib_ms".to_string(),
            Value::Number(Number::Float(self.calib_ms)),
        );
        let mut metrics = Map::new();
        for (k, v) in &self.metrics {
            metrics.insert(k.clone(), Value::Number(Number::Float(*v)));
        }
        m.insert("metrics".to_string(), Value::Object(metrics));
        Value::Object(m).to_string()
    }

    /// Parse one JSONL line; `None` on any structural mismatch (corrupt
    /// lines are skipped by [`load_history`], never fatal).
    pub fn from_json_line(line: &str) -> Option<Self> {
        let v: Value = serde_json::from_str(line).ok()?;
        let obj = v.as_object()?;
        let metrics_obj = obj.get("metrics")?.as_object()?;
        let mut metrics = Vec::new();
        for (k, mv) in metrics_obj.iter() {
            metrics.push((k.clone(), mv.as_f64()?));
        }
        Some(HistoryRecord {
            experiment: obj.get("experiment")?.as_str()?.to_string(),
            fingerprint: obj.get("fingerprint")?.as_str()?.to_string(),
            unix_seconds: obj.get("unix_seconds")?.as_u64()?,
            host: obj.get("host")?.as_str()?.to_string(),
            calib_ms: obj.get("calib_ms")?.as_f64()?,
            metrics,
        })
    }

    /// A metric value, normalized for cross-machine comparison: names
    /// ending `_ms` / `_us` / `_micros` are wall-clock and divide by the
    /// record's calibration; everything else (sim-time JCTs, ratios,
    /// percentages) is machine-independent already.
    fn normalized(&self, name: &str, value: f64) -> f64 {
        if is_wall_metric(name) && self.calib_ms > 0.0 {
            value / self.calib_ms
        } else {
            value
        }
    }
}

fn is_wall_metric(name: &str) -> bool {
    name.ends_with("_ms") || name.ends_with("_us") || name.ends_with("_micros")
}

/// The history path: `DITTO_HISTORY_PATH` override or
/// [`HISTORY_FILE`] in the current directory.
pub fn history_path() -> PathBuf {
    match std::env::var("DITTO_HISTORY_PATH") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => PathBuf::from(HISTORY_FILE),
    }
}

/// Append one record to the history file (creating it if needed).
pub fn append_history(path: &Path, record: &HistoryRecord) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", record.to_json_line())
}

/// Load every parseable record from the history file. A missing file is
/// an empty history; corrupt lines are skipped.
pub fn load_history(path: &Path) -> Vec<HistoryRecord> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(HistoryRecord::from_json_line)
        .collect()
}

/// Regression-gate thresholds. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct RegressOptions {
    /// Compare against at most this many most-recent matching records.
    pub last_k: usize,
    /// Stay quiet (verdict `InsufficientHistory`) below this many runs.
    pub min_runs: usize,
    /// Relative tolerance floor: a metric must exceed the history median
    /// by at least this fraction to regress.
    pub rel_tol: f64,
    /// Noise multiplier: … or by `mad_mult × 1.4826 × MAD`, whichever
    /// band is wider.
    pub mad_mult: f64,
}

impl Default for RegressOptions {
    fn default() -> Self {
        RegressOptions {
            last_k: 8,
            min_runs: 3,
            rel_tol: 0.05,
            mad_mult: 4.0,
        }
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVerdict {
    /// Metric name.
    pub name: String,
    /// Current (normalized) value.
    pub current: f64,
    /// History median (normalized).
    pub median: f64,
    /// Allowed threshold (normalized): `median + band`.
    pub threshold: f64,
    /// History samples behind the median.
    pub samples: usize,
    /// The verdict.
    pub status: MetricStatus,
}

/// Outcome of one metric's gate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricStatus {
    /// Within the noise band.
    Ok,
    /// Above `median + band`: regressed.
    Regressed,
    /// Fewer than `min_runs` history samples — not judged.
    InsufficientHistory,
    /// The metric has no history at all (new metric).
    New,
}

/// Result of [`check_regression`] over one experiment's metrics.
#[derive(Debug, Clone, Default)]
pub struct RegressReport {
    /// Experiment name.
    pub experiment: String,
    /// Per-metric verdicts, in the current run's metric order.
    pub verdicts: Vec<MetricVerdict>,
}

impl RegressReport {
    /// True when any metric regressed.
    pub fn regressed(&self) -> bool {
        self.verdicts
            .iter()
            .any(|v| v.status == MetricStatus::Regressed)
    }

    /// Human-readable gate table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "regression gate: {} ({} metrics)\n",
            self.experiment,
            self.verdicts.len()
        ));
        out.push_str(&format!(
            "{:<44} {:>12} {:>12} {:>12} {:>4}  status\n",
            "metric", "current", "median", "threshold", "n"
        ));
        for v in &self.verdicts {
            let status = match v.status {
                MetricStatus::Ok => "ok",
                MetricStatus::Regressed => "REGRESSED",
                MetricStatus::InsufficientHistory => "few-samples",
                MetricStatus::New => "new",
            };
            out.push_str(&format!(
                "{:<44} {:>12.6} {:>12.6} {:>12.6} {:>4}  {status}\n",
                v.name, v.current, v.median, v.threshold, v.samples
            ));
        }
        out
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Gate the current run against its history. `history` may hold records
/// of any experiment/fingerprint — only records matching `current`'s
/// fingerprint participate, and only the most recent `last_k` of those.
/// The `DITTO_REGRESS_INJECT` multiplier (if set and parseable) scales
/// the current run's metrics first.
pub fn check_regression(
    history: &[HistoryRecord],
    current: &HistoryRecord,
    opts: &RegressOptions,
) -> RegressReport {
    let inject: f64 = std::env::var("DITTO_REGRESS_INJECT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let matching: Vec<&HistoryRecord> = history
        .iter()
        .filter(|r| r.fingerprint == current.fingerprint)
        .collect();
    let recent = &matching[matching.len().saturating_sub(opts.last_k)..];

    let mut verdicts = Vec::with_capacity(current.metrics.len());
    for (name, raw) in &current.metrics {
        let cur = current.normalized(name, raw * inject);
        let mut values: Vec<f64> = recent
            .iter()
            .filter_map(|r| {
                r.metrics
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| r.normalized(name, *v))
            })
            .collect();
        values.sort_by(f64::total_cmp);
        let samples = values.len();
        let median = median_of(&values);
        let mut deviations: Vec<f64> = values.iter().map(|v| (v - median).abs()).collect();
        deviations.sort_by(f64::total_cmp);
        let mad = median_of(&deviations);
        let band = (opts.rel_tol * median.abs()).max(opts.mad_mult * 1.4826 * mad);
        let threshold = median + band;
        let status = if samples == 0 {
            MetricStatus::New
        } else if samples < opts.min_runs {
            MetricStatus::InsufficientHistory
        } else if cur > threshold {
            MetricStatus::Regressed
        } else {
            MetricStatus::Ok
        };
        verdicts.push(MetricVerdict {
            name: name.clone(),
            current: cur,
            median,
            threshold,
            samples,
            status,
        });
    }
    RegressReport {
        experiment: current.experiment.clone(),
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(metrics: &[(&str, f64)]) -> HistoryRecord {
        HistoryRecord {
            experiment: "test".to_string(),
            fingerprint: fingerprint("test", "grid-v1"),
            unix_seconds: 1,
            host: "test/x".to_string(),
            calib_ms: 1.0,
            metrics: metrics
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }

    #[test]
    fn roundtrip_json_line() {
        let r = HistoryRecord::now("sched", "sizes=[64,128]", vec![("a_ms".into(), 1.5)]);
        let back = HistoryRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(r, back);
        assert!(HistoryRecord::from_json_line("not json").is_none());
        assert!(HistoryRecord::from_json_line("{}").is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_config_sensitive() {
        assert_eq!(fingerprint("a", "b"), fingerprint("a", "b"));
        assert_ne!(fingerprint("a", "b"), fingerprint("a", "c"));
        assert_ne!(fingerprint("a", "b"), fingerprint("ab", ""));
        assert_eq!(fingerprint("a", "b").len(), 16);
    }

    #[test]
    fn gate_fires_on_ten_percent_slowdown_and_passes_clean() {
        let history = vec![
            record(&[("jct_s", 10.0)]),
            record(&[("jct_s", 10.0)]),
            record(&[("jct_s", 10.0)]),
        ];
        let opts = RegressOptions::default();
        // Deterministic history: MAD = 0, the 5% rel_tol floor rules.
        let clean = check_regression(&history, &record(&[("jct_s", 10.0)]), &opts);
        assert!(!clean.regressed(), "{}", clean.render());
        let slow = check_regression(&history, &record(&[("jct_s", 11.0)]), &opts);
        assert!(slow.regressed(), "{}", slow.render());
        assert!(slow.render().contains("REGRESSED"));
        // Just inside the band.
        let edge = check_regression(&history, &record(&[("jct_s", 10.4)]), &opts);
        assert!(!edge.regressed());
    }

    #[test]
    fn min_run_guard_and_new_metrics_stay_quiet() {
        let history = vec![record(&[("jct_s", 10.0)])];
        let opts = RegressOptions::default();
        let rep = check_regression(&history, &record(&[("jct_s", 50.0), ("other", 1.0)]), &opts);
        assert!(!rep.regressed(), "{}", rep.render());
        assert_eq!(rep.verdicts[0].status, MetricStatus::InsufficientHistory);
        assert_eq!(rep.verdicts[1].status, MetricStatus::New);
    }

    #[test]
    fn noisy_history_widens_the_band() {
        // Median 10, MAD ≈ 1: the band is 4 × 1.4826 ≈ 5.9 wide, so 13
        // (which the 5% floor alone would flag) passes.
        let history = vec![
            record(&[("jct_s", 9.0)]),
            record(&[("jct_s", 10.0)]),
            record(&[("jct_s", 11.0)]),
            record(&[("jct_s", 8.5)]),
            record(&[("jct_s", 11.5)]),
        ];
        let rep = check_regression(
            &history,
            &record(&[("jct_s", 13.0)]),
            &RegressOptions::default(),
        );
        assert!(!rep.regressed(), "{}", rep.render());
    }

    #[test]
    fn wall_metrics_normalize_by_calibration() {
        // History from a machine 2× slower (calib 2.0) with 20ms runs is
        // equivalent to 10ms on a calib-1.0 machine — a 10.2ms current
        // run on the fast machine must pass.
        let mut slow_machine = record(&[("wall_ms", 20.0)]);
        slow_machine.calib_ms = 2.0;
        let history = vec![slow_machine.clone(), slow_machine.clone(), slow_machine];
        let rep = check_regression(
            &history,
            &record(&[("wall_ms", 10.2)]),
            &RegressOptions::default(),
        );
        assert!(!rep.regressed(), "{}", rep.render());
        // But a genuinely 2× slower result still fails.
        let rep = check_regression(
            &history,
            &record(&[("wall_ms", 20.0)]),
            &RegressOptions::default(),
        );
        assert!(rep.regressed());
    }

    #[test]
    fn only_matching_fingerprints_participate() {
        let mut other = record(&[("jct_s", 1.0)]);
        other.fingerprint = fingerprint("test", "grid-v2");
        let history = vec![other.clone(), other.clone(), other];
        let rep = check_regression(
            &history,
            &record(&[("jct_s", 99.0)]),
            &RegressOptions::default(),
        );
        assert_eq!(rep.verdicts[0].status, MetricStatus::New);
        assert!(!rep.regressed());
    }

    #[test]
    fn append_and_load_skip_corrupt_lines() {
        let dir = std::env::temp_dir().join(format!("ditto_hist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(load_history(&path).is_empty(), "missing file = empty");
        let r = record(&[("jct_s", 10.0)]);
        append_history(&path, &r).unwrap();
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "corrupt {{line").unwrap();
        }
        append_history(&path, &r).unwrap();
        let loaded = load_history(&path);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], r);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn calibration_is_positive_and_finite() {
        let c = calibration_ms();
        assert!(c.is_finite() && c > 0.0, "calibration {c}");
    }
}
