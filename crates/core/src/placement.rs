//! Best-fit placement check (paper §4.4) with gather decomposition (§4.5).
//!
//! Given deterministic stage groups and per-stage DoPs, `CAN_PLACE` decides
//! whether the cluster can host the plan:
//!
//! 1. stage groups are sorted in descending slot demand;
//! 2. each *multi-stage* group must land wholly on one server (that is the
//!    point of grouping: intra-server zero-copy shuffle) — placed on the
//!    best-fit server, i.e. the one with the *nearest* sufficient free
//!    slot count;
//! 3. a group that fits no server may still place if all of its internal
//!    edges are `gather` (one-to-one): the group decomposes into aligned
//!    fine-grained *task groups* (Fig. 7), each placed best-fit;
//! 4. singleton stages have no co-location requirement; their tasks spread
//!    over whatever slots remain.
//!
//! Placement failure makes the joint optimizer backtrack the grouping that
//! caused it (Algorithm 3).

use crate::grouping::{ColocationIndex, StageGroups};
use crate::schedule::TaskPlacement;
use ditto_cluster::{ResourceManager, ServerId};
use ditto_dag::{EdgeKind, JobDag, StageId};

/// How a stage group is matched to a server (ablation knob; Ditto uses
/// best fit, §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitStrategy {
    /// The server with the *nearest* sufficient free-slot count (§4.4).
    #[default]
    BestFit,
    /// The first (lowest-id) server that fits.
    FirstFit,
    /// The server with the *most* free slots.
    WorstFit,
}

/// Reserve `n` slots on a server chosen by the strategy.
fn reserve_fit(rm: &mut ResourceManager, n: u32, strategy: FitStrategy) -> Option<ServerId> {
    let pick = match strategy {
        FitStrategy::BestFit => rm.best_fit(n),
        FitStrategy::FirstFit => (0..rm.num_servers())
            .map(|i| ServerId(i as u32))
            .find(|&s| rm.free_on(s) >= n),
        FitStrategy::WorstFit => (0..rm.num_servers())
            .map(|i| ServerId(i as u32))
            .filter(|&s| rm.free_on(s) >= n)
            .max_by_key(|&s| (rm.free_on(s), std::cmp::Reverse(s))),
    }?;
    let ok = rm.reserve(pick, n);
    debug_assert!(ok);
    Some(pick)
}

/// A feasible placement for every stage.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// Placement per stage, indexed by `StageId`.
    pub stage_placement: Vec<TaskPlacement>,
}

/// `true` if every edge internal to the group is a gather (one-to-one)
/// dependency, making the group decomposable into task groups (§4.5).
fn gather_decomposable(dag: &JobDag, group: &[StageId]) -> bool {
    let in_group = |s: StageId| group.contains(&s);
    dag.edges()
        .iter()
        .filter(|e| in_group(e.src) && in_group(e.dst))
        .all(|e| e.kind == EdgeKind::Gather)
}

/// Split `dop` tasks into `k` near-equal chunks (first chunks get the
/// remainder), dropping empty chunks is the caller's concern (`dop ≥ k`
/// need not hold).
fn chunk_dop(dop: u32, k: u32) -> Vec<u32> {
    let base = dop / k;
    let rem = dop % k;
    (0..k).map(|i| base + u32::from(i < rem)).collect()
}

/// The best-fit placement check (`CAN_PLACE`). Works on a *clone* of the
/// resource snapshot: the caller's manager is untouched, so failed checks
/// are free to retry with different groupings.
///
/// Returns the placement plan if the configuration fits, `None` otherwise.
pub fn can_place(
    dag: &JobDag,
    dop: &[u32],
    groups: &StageGroups,
    rm: &ResourceManager,
    allow_gather_decomposition: bool,
) -> Option<PlacementPlan> {
    can_place_with(
        dag,
        dop,
        groups,
        rm,
        allow_gather_decomposition,
        FitStrategy::BestFit,
    )
}

/// [`can_place`] with an explicit server-fit strategy (ablation knob).
pub fn can_place_with(
    dag: &JobDag,
    dop: &[u32],
    groups: &StageGroups,
    rm: &ResourceManager,
    allow_gather_decomposition: bool,
    strategy: FitStrategy,
) -> Option<PlacementPlan> {
    let n = dag.num_stages();
    let mut rm = rm.clone();
    let mut placement: Vec<Option<TaskPlacement>> = vec![None; n];

    let group_list = groups.groups(n);
    // Multi-stage groups first, descending slot demand; ties by first id.
    let mut multi: Vec<&Vec<StageId>> = group_list.iter().filter(|g| g.len() > 1).collect();
    multi.sort_by_key(|g| {
        let req: u32 = g.iter().map(|s| dop[s.index()]).sum();
        (std::cmp::Reverse(req), g[0])
    });

    for group in multi {
        let req: u32 = group.iter().map(|s| dop[s.index()]).sum();
        if let Some(server) = reserve_fit(&mut rm, req, strategy) {
            for &s in group {
                placement[s.index()] = Some(TaskPlacement::Single(server));
            }
            continue;
        }
        // Whole-group placement failed; try gather decomposition.
        if !(allow_gather_decomposition && gather_decomposable(dag, group)) {
            return None;
        }
        let min_dop = group.iter().map(|s| dop[s.index()]).min().unwrap_or(0);
        let max_free = rm.max_free();
        if max_free == 0 || min_dop == 0 {
            return None;
        }
        // Fewest chunks whose largest piece fits the roomiest server; more
        // chunks than the smallest DoP would leave empty task groups.
        let k = req.div_ceil(max_free);
        if k > min_dop {
            return None;
        }
        // Chunk every stage's tasks into k aligned pieces and best-fit each
        // piece (the aligned pieces of all stages go to the same server to
        // preserve gather locality).
        let per_stage: Vec<Vec<u32>> = group.iter().map(|s| chunk_dop(dop[s.index()], k)).collect();
        let mut parts: Vec<Vec<(ditto_cluster::ServerId, u32)>> = vec![Vec::new(); group.len()];
        for c in 0..k as usize {
            let piece: u32 = per_stage.iter().map(|v| v[c]).sum();
            let server = reserve_fit(&mut rm, piece, strategy)?;
            for (gi, v) in per_stage.iter().enumerate() {
                if v[c] > 0 {
                    parts[gi].push((server, v[c]));
                }
            }
        }
        for (gi, &s) in group.iter().enumerate() {
            placement[s.index()] = Some(TaskPlacement::Spread(parts[gi].clone()));
        }
    }

    // Singleton stages: no co-location requirement; spread task by task.
    // Descending DoP keeps the packing deterministic and tight.
    let mut singles: Vec<StageId> = group_list
        .iter()
        .filter(|g| g.len() == 1)
        .map(|g| g[0])
        .collect();
    singles.sort_by_key(|s| (std::cmp::Reverse(dop[s.index()]), *s));
    for s in singles {
        let spread = rm.reserve_spread(dop[s.index()])?;
        placement[s.index()] = Some(TaskPlacement::Spread(spread));
    }

    Some(PlacementPlan {
        stage_placement: placement.into_iter().map(|p| p.expect("all stages placed")).collect(),
    })
}

/// Reusable buffers for [`placement_verdict`], so the joint optimizer's
/// candidate loop evaluates placements without per-trial allocation.
#[derive(Debug, Clone)]
pub struct PlacementScratch {
    rm: ResourceManager,
    /// `(req, min_id, root, is_merged_trial_group)` per multi-stage group.
    multi: Vec<(u32, u32, u32, bool)>,
}

impl PlacementScratch {
    /// Scratch sized for the cluster snapshot `rm`.
    pub fn new(rm: &ResourceManager) -> Self {
        PlacementScratch {
            rm: rm.clone(),
            multi: Vec::new(),
        }
    }
}

/// Allocation-free equivalent of `can_place_with(dag, …).is_some()` for the
/// joint optimizer's trial loop, driven by the delta-maintained
/// [`ColocationIndex`] instead of materialized group lists.
///
/// `multi_roots` are the committed multi-stage groups' DSU tree roots;
/// `merged` names the two pre-union roots of the trial merge (their member /
/// edge lists are still unfolded — they are skipped in `multi_roots` and
/// evaluated as one combined group). `sum_dop` is `Σ dop` over all stages.
///
/// Equivalence to the full check, phase by phase:
/// * multi-stage groups are visited in the same `(demand desc, min id)`
///   order with real reservations on a scratch manager, so best/first/worst
///   fit and gather decomposition behave identically (chunk sums are
///   member-order-independent);
/// * the singleton phase reduces to `remaining free ≥ Σ singleton DoPs`:
///   `ResourceManager::reserve_spread(n)` fails iff fewer than `n` slots
///   remain in total and otherwise consumes exactly `n`, so the sequence of
///   per-singleton spreads succeeds iff the aggregate inequality holds.
#[allow(clippy::too_many_arguments)]
pub fn placement_verdict(
    dag: &JobDag,
    dop: &[u32],
    sum_dop: u32,
    index: &ColocationIndex,
    multi_roots: &[u32],
    merged: Option<(u32, u32)>,
    base: &ResourceManager,
    scratch: &mut PlacementScratch,
    allow_gather_decomposition: bool,
    strategy: FitStrategy,
) -> bool {
    scratch.rm.copy_free_from(base);
    scratch.multi.clear();
    let mut multi_req_total = 0u32;
    for &r in multi_roots {
        if let Some((ra, rb)) = merged {
            if r == ra || r == rb {
                continue;
            }
        }
        let (mut req, mut min_id) = (0u32, u32::MAX);
        for &m in index.members(r) {
            req += dop[m as usize];
            min_id = min_id.min(m);
        }
        scratch.multi.push((req, min_id, r, false));
        multi_req_total += req;
    }
    if let Some((ra, rb)) = merged {
        let (mut req, mut min_id) = (0u32, u32::MAX);
        for &m in index.members(ra).iter().chain(index.members(rb)) {
            req += dop[m as usize];
            min_id = min_id.min(m);
        }
        scratch.multi.push((req, min_id, ra, true));
        multi_req_total += req;
    }
    // Same order as `can_place_with`: descending demand, ties by the
    // group's smallest stage id (unique per group → total order).
    let mut multi = std::mem::take(&mut scratch.multi);
    multi.sort_unstable_by_key(|&(req, min_id, ..)| (std::cmp::Reverse(req), min_id));

    let mut ok = true;
    'groups: for &(req, _, root, is_merged) in &multi {
        if reserve_fit(&mut scratch.rm, req, strategy).is_some() {
            continue;
        }
        // Whole-group placement failed; mirror the gather-decomposition
        // fallback. Internal edges of the group are exactly the mask-true
        // edges on its incident lists (possibly duplicated — harmless).
        let (ra, rb) = if is_merged {
            (root, merged.expect("is_merged implies merged roots").1)
        } else {
            (root, root)
        };
        let internal_all_gather = index
            .edges_touching(ra)
            .iter()
            .chain(if is_merged { index.edges_touching(rb) } else { &[] })
            .filter(|e| index.mask()[e.index()])
            .all(|&e| dag.edge(e).kind == EdgeKind::Gather);
        if !(allow_gather_decomposition && internal_all_gather) {
            ok = false;
            break;
        }
        let members = || {
            index
                .members(ra)
                .iter()
                .chain(if is_merged { index.members(rb) } else { &[] })
                .copied()
        };
        let min_dop = members().map(|m| dop[m as usize]).min().unwrap_or(0);
        let max_free = scratch.rm.max_free();
        if max_free == 0 || min_dop == 0 {
            ok = false;
            break;
        }
        let k = req.div_ceil(max_free);
        if k > min_dop {
            ok = false;
            break;
        }
        for c in 0..k {
            // Aligned chunk `c`'s total demand: Σ ⌈dop/k⌉-style pieces
            // (`chunk_dop` without the allocation).
            let piece: u32 = members()
                .map(|m| {
                    let d = dop[m as usize];
                    d / k + u32::from(c < d % k)
                })
                .sum();
            if reserve_fit(&mut scratch.rm, piece, strategy).is_none() {
                ok = false;
                break 'groups;
            }
        }
    }
    scratch.multi = multi;
    scratch.multi.clear();
    ok && scratch.rm.total_free() >= sum_dop - multi_req_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::generators;
    use ditto_dag::{DagBuilder, StageKind};

    fn rm(free: &[u32]) -> ResourceManager {
        ResourceManager::from_free_slots(free.to_vec())
    }

    #[test]
    fn singletons_spread_anywhere() {
        let dag = generators::fig1_join();
        let groups = StageGroups::singletons(3);
        let plan = can_place(&dag, &[5, 3, 2], &groups, &rm(&[4, 4, 4]), true).unwrap();
        // All 10 tasks placed.
        let placed: u32 = plan
            .stage_placement
            .iter()
            .map(|p| match p {
                TaskPlacement::Spread(parts) => parts.iter().map(|&(_, c)| c).sum(),
                TaskPlacement::Single(_) => 0,
            })
            .sum();
        assert_eq!(placed, 10);
    }

    #[test]
    fn too_many_tasks_fail() {
        let dag = generators::fig1_join();
        let groups = StageGroups::singletons(3);
        assert!(can_place(&dag, &[5, 5, 3], &groups, &rm(&[4, 4, 4]), true).is_none());
    }

    #[test]
    fn group_requires_one_server() {
        let dag = generators::fig1_join();
        let mut groups = StageGroups::singletons(3);
        groups.union(StageId(0), StageId(2)); // map1 + join, shuffle edge
        // Group needs 5+2=7 slots on one server; only 4 anywhere → fail
        // (shuffle edges are not gather-decomposable).
        assert!(can_place(&dag, &[5, 3, 2], &groups, &rm(&[4, 4, 4]), true).is_none());
        // With a 7-slot server it fits, best-fit picks the tightest (srv2).
        let plan = can_place(&dag, &[5, 3, 2], &groups, &rm(&[9, 4, 7]), true).unwrap();
        match (&plan.stage_placement[0], &plan.stage_placement[2]) {
            (TaskPlacement::Single(a), TaskPlacement::Single(b)) => {
                assert_eq!(a, b);
                assert_eq!(a.index(), 2, "best fit = nearest slot count");
            }
            other => panic!("expected single-server group, got {other:?}"),
        }
    }

    #[test]
    fn gather_group_decomposes() {
        // up --gather--> down, 4+4 tasks; servers of 4 slots each force a
        // decomposition into two aligned task groups (Fig. 7b).
        let dag = DagBuilder::new("g")
            .stage("up", StageKind::Map, 0, 0)
            .stage("down", StageKind::Reduce, 0, 0)
            .edge("up", "down", EdgeKind::Gather, 100)
            .build()
            .unwrap();
        let mut groups = StageGroups::singletons(2);
        groups.union(StageId(0), StageId(1));
        let plan = can_place(&dag, &[4, 4], &groups, &rm(&[4, 4, 4]), true).unwrap();
        // Each stage splits 2+2 across two servers, aligned.
        let (up, down) = (&plan.stage_placement[0], &plan.stage_placement[1]);
        match (up, down) {
            (TaskPlacement::Spread(u), TaskPlacement::Spread(d)) => {
                assert_eq!(u.len(), 2);
                assert_eq!(u, d, "aligned chunks share servers");
            }
            other => panic!("expected decomposed spread, got {other:?}"),
        }
        // Decomposition disabled → fail.
        assert!(can_place(&dag, &[4, 4], &groups, &rm(&[4, 4, 4]), false).is_none());
    }

    #[test]
    fn shuffle_group_does_not_decompose() {
        let dag = DagBuilder::new("s")
            .stage("up", StageKind::Map, 0, 0)
            .stage("down", StageKind::Reduce, 0, 0)
            .edge("up", "down", EdgeKind::Shuffle, 100)
            .build()
            .unwrap();
        let mut groups = StageGroups::singletons(2);
        groups.union(StageId(0), StageId(1));
        assert!(can_place(&dag, &[4, 4], &groups, &rm(&[4, 4, 4]), true).is_none());
    }

    #[test]
    fn decomposition_respects_min_dop() {
        // Down has 1 task: can't split into 2 chunks.
        let dag = DagBuilder::new("g")
            .stage("up", StageKind::Map, 0, 0)
            .stage("down", StageKind::Reduce, 0, 0)
            .edge("up", "down", EdgeKind::Gather, 100)
            .build()
            .unwrap();
        let mut groups = StageGroups::singletons(2);
        groups.union(StageId(0), StageId(1));
        assert!(can_place(&dag, &[6, 1], &groups, &rm(&[4, 4]), true).is_none());
    }

    #[test]
    fn caller_snapshot_untouched() {
        let dag = generators::fig1_join();
        let groups = StageGroups::singletons(3);
        let snapshot = rm(&[4, 4, 4]);
        let _ = can_place(&dag, &[4, 4, 4], &groups, &snapshot, true);
        assert_eq!(snapshot.total_free(), 12, "can_place must not mutate");
    }

    #[test]
    fn fit_strategies_pick_different_servers() {
        let dag = generators::fig1_join();
        let mut groups = StageGroups::singletons(3);
        groups.union(StageId(0), StageId(2));
        let dop = [3u32, 1, 2]; // group needs 5 slots
        let free = rm(&[9, 5, 7]);
        let server_of = |strategy: FitStrategy| {
            let plan = can_place_with(&dag, &dop, &groups, &free, true, strategy).unwrap();
            match &plan.stage_placement[0] {
                TaskPlacement::Single(s) => s.index(),
                other => panic!("expected single, got {other:?}"),
            }
        };
        assert_eq!(server_of(FitStrategy::BestFit), 1, "nearest fit = 5 slots");
        assert_eq!(server_of(FitStrategy::FirstFit), 0, "first that fits");
        assert_eq!(server_of(FitStrategy::WorstFit), 0, "most free slots");
    }

    #[test]
    fn worst_fit_prefers_roomiest() {
        let dag = generators::fig1_join();
        let mut groups = StageGroups::singletons(3);
        groups.union(StageId(1), StageId(2));
        let dop = [1u32, 2, 2];
        let free = rm(&[4, 12, 6]);
        let plan =
            can_place_with(&dag, &dop, &groups, &free, true, FitStrategy::WorstFit).unwrap();
        match &plan.stage_placement[1] {
            TaskPlacement::Single(s) => assert_eq!(s.index(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chunking_is_even() {
        assert_eq!(chunk_dop(7, 3), vec![3, 2, 2]);
        assert_eq!(chunk_dop(4, 2), vec![2, 2]);
        assert_eq!(chunk_dop(2, 4), vec![1, 1, 0, 0]);
    }
}
