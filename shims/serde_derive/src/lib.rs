//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits
//! (which lower values to the concrete `serde::Content` data model) by
//! hand-parsing the item's token stream — no `syn`/`quote`, since this
//! build runs with no network access.
//!
//! Supported shapes, matching what the workspace derives:
//! - named-field structs, honoring `#[serde(default)]` and
//!   `#[serde(default = "path")]`, with `Option` fields treated as
//!   optional (missing key → `None`);
//! - newtype structs (serialize as the inner value);
//! - unit-variant enums (serialize as the variant name string);
//! - lifetime-generic structs (e.g. `Event<'a>`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
enum FieldDefault {
    /// No `#[serde(default)]`: missing behaves as `Content::Null`.
    Required,
    /// `#[serde(default)]` → `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` → `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Shape {
    Named(Vec<Field>),
    Newtype,
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    /// Generic parameter text, e.g. `'a` — empty when non-generic.
    generics: String,
    shape: Shape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let header = impl_header("Serialize", &item);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_content(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::Newtype => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\"))",
                        name = item.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let code = format!(
        "{header} {{ fn to_content(&self) -> ::serde::Content {{ {body} }} }}"
    );
    code.parse().expect("derived Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let header = impl_header("Deserialize", &item);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let missing = match &f.default {
                        FieldDefault::Std => "::core::default::Default::default()".to_string(),
                        FieldDefault::Path(p) => format!("{p}()"),
                        FieldDefault::Required => format!(
                            "::serde::Deserialize::from_content(&::serde::Content::Null)\
                             .map_err(|_| format!(\"missing field `{n}` in {name}\"))?",
                            n = f.name
                        ),
                    };
                    format!(
                        "{n}: match c.get(\"{n}\") {{ \
                           Some(v) => ::serde::Deserialize::from_content(v)\
                             .map_err(|e| format!(\"field `{n}`: {{e}}\"))?, \
                           None => {missing}, \
                         }}",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "match c {{ ::serde::Content::Map(_) => {{}}, \
                   other => return Err(format!(\"expected map for {name}, got {{}}\", other.kind())), \
                 }} \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Newtype => format!(
            "Ok({name}(::serde::Deserialize::from_content(c)\
               .map_err(|e| format!(\"in {name}: {{e}}\"))?))"
        ),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match c {{ \
                   ::serde::Content::Str(s) => match s.as_str() {{ \
                     {}, \
                     other => Err(format!(\"unknown variant `{{other}}` for {name}\")), \
                   }}, \
                   other => Err(format!(\"expected string for enum {name}, got {{}}\", other.kind())), \
                 }}",
                arms.join(", ")
            )
        }
    };
    let code = format!(
        "{header} {{ fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::std::string::String> {{ {body} }} }}"
    );
    code.parse().expect("derived Deserialize impl must parse")
}

fn impl_header(trait_name: &str, item: &Item) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        format!(
            "impl<{g}> ::serde::{trait_name} for {}<{g}>",
            item.name,
            g = item.generics
        )
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = tokens[i].to_string();
    i += 1;

    // Capture generic parameters, e.g. `<'a>`.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1i32;
            let mut inner: Vec<TokenTree> = Vec::new();
            while depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                inner.push(tokens[i].clone());
                i += 1;
            }
            generics = inner
                .into_iter()
                .collect::<TokenStream>()
                .to_string();
        }
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    panic!("serde shim derive supports only 1-field tuple structs, {name} has {n}");
                }
                Shape::Newtype
            }
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };

    Item { name, generics, shape }
}

/// Extract a `#[serde(...)]` default spec from an attribute group's tokens.
fn serde_default(attr: &proc_macro::Group) -> Option<FieldDefault> {
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        _ => return None,
    }
    match inner.get(2) {
        Some(TokenTree::Literal(lit)) => {
            let s = lit.to_string();
            Some(FieldDefault::Path(s.trim_matches('"').to_string()))
        }
        None => Some(FieldDefault::Std),
        _ => None,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        let mut default = FieldDefault::Required;
        // Field attributes (docs, serde).
        while matches!(&toks[j], TokenTree::Punct(p) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(j + 1) {
                if let Some(d) = serde_default(g) {
                    default = d;
                }
            }
            j += 2;
        }
        // Visibility.
        if matches!(&toks[j], TokenTree::Ident(id) if id.to_string() == "pub") {
            j += 1;
            if let Some(TokenTree::Group(g)) = toks.get(j) {
                if g.delimiter() == Delimiter::Parenthesis {
                    j += 1;
                }
            }
        }
        let name = match &toks[j] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        j += 1; // name
        j += 1; // ':'
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while j < toks.len() {
            match &toks[j] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut n = 1usize;
    let mut depth = 0i32;
    let mut saw_any = false;
    for t in stream {
        saw_any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => n += 1,
            _ => {}
        }
    }
    if saw_any {
        n
    } else {
        0
    }
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        while matches!(&toks[j], TokenTree::Punct(p) if p.as_char() == '#') {
            j += 2;
        }
        match &toks[j] {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => panic!("expected variant name in {enum_name}, got {other}"),
        }
        j += 1;
        if let Some(t) = toks.get(j) {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
                _ => panic!(
                    "serde shim derive supports only unit variants; {enum_name} has data-carrying variants"
                ),
            }
        }
    }
    variants
}
