//! Property-based tests of the least-squares step fitting.

use ditto_timemodel::fit_step;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Noise-free samples from t = α/d + β are recovered exactly.
    #[test]
    fn recovers_exact_parameters(alpha in 0.0f64..1e4, beta in 0.0f64..1e2) {
        let samples: Vec<(u32, f64)> = [3u32, 7, 19, 53, 131]
            .iter()
            .map(|&d| (d, alpha / d as f64 + beta))
            .collect();
        let fit = fit_step(&samples);
        prop_assert!((fit.alpha - alpha).abs() < 1e-6 * alpha.max(1.0), "alpha {} vs {}", fit.alpha, alpha);
        prop_assert!((fit.beta - beta).abs() < 1e-6 * beta.max(1.0), "beta {} vs {}", fit.beta, beta);
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    /// Fitted parameters are always non-negative, whatever the samples.
    #[test]
    fn parameters_non_negative(
        samples in proptest::collection::vec((1u32..200, 0.0f64..1e4), 2..12)
    ) {
        let fit = fit_step(&samples);
        prop_assert!(fit.alpha >= 0.0);
        prop_assert!(fit.beta >= 0.0);
        prop_assert!(fit.alpha.is_finite() && fit.beta.is_finite());
    }

    /// The fit is invariant under sample order.
    #[test]
    fn order_invariant(
        samples in proptest::collection::vec((1u32..200, 0.0f64..1e4), 2..10),
        seed in 0u64..100,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let fit_a = fit_step(&samples);
        let mut shuffled = samples.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let fit_b = fit_step(&shuffled);
        prop_assert!((fit_a.alpha - fit_b.alpha).abs() < 1e-6 * fit_a.alpha.max(1.0));
        prop_assert!((fit_a.beta - fit_b.beta).abs() < 1e-6 * fit_a.beta.max(1.0));
    }

    /// Small multiplicative noise perturbs the fit proportionally: the
    /// recovered α stays within the noise envelope.
    #[test]
    fn robust_to_bounded_noise(alpha in 1.0f64..1e4, beta in 0.0f64..10.0, eps in 0.0f64..0.05) {
        let samples: Vec<(u32, f64)> = [2u32, 5, 11, 23, 47, 97]
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let noise = if i % 2 == 0 { 1.0 + eps } else { 1.0 - eps };
                (d, (alpha / d as f64 + beta) * noise)
            })
            .collect();
        let fit = fit_step(&samples);
        prop_assert!((fit.alpha - alpha).abs() <= alpha * (4.0 * eps + 1e-6),
            "alpha {} vs {} under eps {}", fit.alpha, alpha, eps);
    }
}
