//! Equivalence oracle: the incremental joint optimizer must produce
//! **bit-identical** schedules to the preserved from-scratch reference
//! implementation, across random DAGs, both objectives, every fit
//! strategy and every order policy.
//!
//! This is the contract that lets `joint_optimize` replace the reference
//! wholesale: same `dop`, same `group_of`/`groups`, same co-location mask,
//! same placement — not merely the same objective value.

use ditto_cluster::ResourceManager;
use ditto_core::reference::joint_optimize_reference_with_stats;
use ditto_core::{
    joint_optimize_with_stats, FitStrategy, GroupOrderPolicy, JointOptions, Objective,
};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_obs::Recorder;
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;

/// Deterministic cluster shapes: roomy, mixed, tight — tight clusters
/// drive the reject/backtrack path, roomy ones the commit-heavy path.
fn clusters(seed: u64, stages: usize) -> Vec<Vec<u32>> {
    let n = stages as u32;
    vec![
        vec![4 * n; 4],                                   // roomy
        vec![2 * n, n, n / 2 + 1, n / 4 + 1, 8],          // mixed
        vec![(n / 2 + 2).max(4); 3],                      // tight
        (0..6).map(|i| 4 + ((seed as u32 + i) % 24)).collect(), // jagged
    ]
}

#[test]
fn schedules_are_bit_identical_over_random_dags() {
    let mut checked = 0usize;
    for seed in 0..32u64 {
        let stages = 4 + (seed as usize * 3) % 28; // 4..31 stages
        let layers = 2 + (seed as usize) % 4;
        let dag = random_dag(
            seed,
            &RandomDagConfig {
                stages,
                layers,
                ..Default::default()
            },
        );
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        for free in clusters(seed, stages) {
            let rm = ResourceManager::from_free_slots(free);
            if rm.total_free() < stages as u32 {
                continue; // unplaceable baseline would panic both paths
            }
            for objective in [Objective::Jct, Objective::Cost] {
                for fit in [FitStrategy::BestFit, FitStrategy::FirstFit] {
                    let opts = JointOptions {
                        fit_strategy: fit,
                        ..JointOptions::default()
                    };
                    let (fast, fast_stats) = joint_optimize_with_stats(
                        &dag,
                        &model,
                        &rm,
                        objective,
                        &opts,
                        &Recorder::disabled(),
                    );
                    let (slow, slow_stats) = joint_optimize_reference_with_stats(
                        &dag,
                        &model,
                        &rm,
                        objective,
                        &opts,
                        &Recorder::disabled(),
                    );
                    let ctx = format!("seed={seed} stages={stages} {objective} {fit:?}");
                    assert_eq!(fast.dop, slow.dop, "dop diverged: {ctx}");
                    assert_eq!(fast.group_of, slow.group_of, "group_of diverged: {ctx}");
                    assert_eq!(fast.groups, slow.groups, "groups diverged: {ctx}");
                    assert_eq!(fast.colocated, slow.colocated, "mask diverged: {ctx}");
                    assert_eq!(fast.placement, slow.placement, "placement diverged: {ctx}");
                    assert_eq!(fast.scheduler, slow.scheduler, "{ctx}");
                    // The loops must agree on their *shape* too: same
                    // candidate sequence ⇒ same counts.
                    assert_eq!(fast_stats.rounds, slow_stats.rounds, "rounds: {ctx}");
                    assert_eq!(
                        fast_stats.candidates, slow_stats.candidates,
                        "candidates: {ctx}"
                    );
                    assert_eq!(fast_stats.commits, slow_stats.commits, "commits: {ctx}");
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 32 * 2 * 2, "sweep too small: {checked}");
}

/// The ablation order policies ride the same incremental machinery; keep
/// them equivalent as well (fewer seeds — they share the candidate loop).
#[test]
fn order_policies_match_reference() {
    for seed in 0..8u64 {
        let dag = random_dag(
            seed,
            &RandomDagConfig {
                stages: 12,
                layers: 3,
                ..Default::default()
            },
        );
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![24, 18, 12, 9]);
        for objective in [Objective::Jct, Objective::Cost] {
            for policy in [GroupOrderPolicy::GlobalDescending, GroupOrderPolicy::Random(seed)] {
                let opts = JointOptions {
                    order_policy: policy,
                    ..JointOptions::default()
                };
                let (fast, _) = joint_optimize_with_stats(
                    &dag,
                    &model,
                    &rm,
                    objective,
                    &opts,
                    &Recorder::disabled(),
                );
                let (slow, _) = joint_optimize_reference_with_stats(
                    &dag,
                    &model,
                    &rm,
                    objective,
                    &opts,
                    &Recorder::disabled(),
                );
                assert_eq!(fast.dop, slow.dop, "seed={seed} {objective} {policy:?}");
                assert_eq!(fast.group_of, slow.group_of, "seed={seed} {objective} {policy:?}");
                assert_eq!(fast.placement, slow.placement, "seed={seed} {objective} {policy:?}");
            }
        }
    }
}

/// Tracing must not change the schedule, and the traced incremental run
/// emits the same number of `sched.merge` events as the reference (the
/// candidate sequences are identical).
#[test]
fn traced_runs_match_and_emit_identical_event_counts() {
    let dag = random_dag(11, &RandomDagConfig::default());
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let rm = ResourceManager::from_free_slots(vec![32, 16, 8]);
    for objective in [Objective::Jct, Objective::Cost] {
        let obs_fast = Recorder::new();
        let obs_slow = Recorder::new();
        let (fast, stats) = joint_optimize_with_stats(
            &dag,
            &model,
            &rm,
            objective,
            &JointOptions::default(),
            &obs_fast,
        );
        let (slow, _) = joint_optimize_reference_with_stats(
            &dag,
            &model,
            &rm,
            objective,
            &JointOptions::default(),
            &obs_slow,
        );
        assert_eq!(fast.placement, slow.placement);
        let merges = |r: &Recorder| {
            r.finish()
                .events
                .iter()
                .filter(|e| e.name == "sched.merge")
                .count()
        };
        let (a, b) = (merges(&obs_fast), merges(&obs_slow));
        assert_eq!(a, b, "{objective}: traced candidate counts diverged");
        assert_eq!(a, stats.candidates, "{objective}: stats disagree with trace");
    }
}
