//! Workspace determinism/panic-hazard lint.
//!
//! ```text
//! cargo run -p ditto-audit --bin ditto-lint            # scan, exit 1 on findings
//! cargo run -p ditto-audit --bin ditto-lint -- --list  # include allowed sites
//! cargo run -p ditto-audit --bin ditto-lint -- --json  # machine-readable report
//! ```
//!
//! Scans every non-test, non-bin `.rs` file of the workspace for the
//! rules documented in `ditto_audit::lint`, consulting `audit.allow` at
//! the workspace root. Exits non-zero on any finding without an
//! allowlist entry, or on a malformed allowlist. Stale allowlist entries
//! (matching nothing) are reported as warnings so the file tracks the
//! tree.

use ditto_audit::lint::{lint_to_json, lint_workspace, Allowlist};
use std::path::PathBuf;

fn main() {
    let list_allowed = std::env::args().any(|a| a == "--list");
    let json = std::env::args().any(|a| a == "--json");

    // The binary lives at crates/audit; the workspace root is two up.
    let root = match std::env::var("DITTO_WORKSPACE_ROOT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .unwrap_or(manifest)
        }
    };

    let allow_path = root.join("audit.allow");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let mut allow = match Allowlist::parse(&allow_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let findings = match lint_workspace(&root, &mut allow) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            std::process::exit(2);
        }
    };

    if json {
        println!("{}", lint_to_json(&findings, &allow));
        let violations = findings.iter().filter(|f| !f.allowed).count();
        std::process::exit(if violations > 0 { 1 } else { 0 });
    }

    let mut violations = 0usize;
    let mut allowed = 0usize;
    for f in &findings {
        if f.allowed {
            allowed += 1;
            if list_allowed {
                println!("{f}");
            }
        } else {
            violations += 1;
            println!("{f}");
            println!("    note: {}", f.rule.why());
        }
    }

    for stale in allow.stale() {
        println!(
            "warning: stale audit.allow entry matches nothing: {}|{}|{}|{}",
            stale.rule, stale.path, stale.needle, stale.reason
        );
    }

    println!(
        "ditto-lint: {} findings ({} allowed, {} violations), {} allowlist entries",
        findings.len(),
        allowed,
        violations,
        allow.entries.len()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
