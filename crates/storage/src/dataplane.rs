//! The data plane: placement-aware routing of intermediate data.
//!
//! The paper's execution engine "provides data communication APIs (e.g.,
//! shuffle and broadcast) that transparently dispatch I/O requests to shared
//! memory or external storage, according to the co-location of the upstream
//! and downstream tasks" (§5). [`DataPlane`] is that dispatch layer: it
//! owns one external [`ObjectStore`] (S3- or Redis-like) and one
//! [`SharedMemoryBus`] per server, and routes each transfer by whether the
//! producing and consuming tasks share a server.
//!
//! It also keeps a [`TransferLedger`] of bytes moved and persistence cost
//! accrued per medium — the source of the shared-memory/Redis cost terms in
//! the paper's cost metric (§6.2).

use crate::checksum::checksum64;
use crate::lineage::LineageIndex;
use crate::medium::{CostModel, Medium, TransferModel};
use crate::object_store::{ObjectStore, StoreError};
use crate::sharedmem::SharedMemoryBus;
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Bounded-retry policy for external reads.
///
/// The exec-layer `RecoveryPolicy` governs task re-execution; this is its
/// storage-side counterpart for the read path, built from the same
/// `max_retries` / `backoff_base` knobs so one configuration bounds both
/// (the satellite fix: storage reads used to poll unbounded and invisibly).
/// Backoff between attempts is exponential with deterministic jitter
/// derived from the partition key, so reruns with the same seed take the
/// same wait schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadRetryPolicy {
    /// Maximum read attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// First backoff between attempts, seconds; doubles each retry.
    pub backoff_base: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by
    /// `1 ± jitter` (deterministically, keyed by partition + attempt).
    pub jitter: f64,
}

impl Default for ReadRetryPolicy {
    fn default() -> Self {
        // 64 doublings of 200µs span far beyond any test timeout while
        // keeping every wait bounded and accounted.
        ReadRetryPolicy {
            max_attempts: 64,
            backoff_base: 200e-6,
            jitter: 0.25,
        }
    }
}

impl ReadRetryPolicy {
    /// Backoff before retry number `attempt` (0-based) of `key`, seconds.
    /// Exponential base-2 growth, capped at 50ms, with multiplicative
    /// jitter drawn deterministically from `(key, attempt)`.
    pub fn backoff(&self, key: &str, attempt: u32) -> f64 {
        let raw = (self.backoff_base * 2f64.powi(attempt.min(16) as i32)).min(0.05);
        let h = checksum64(key.as_bytes(), attempt as u64);
        // Map the hash onto [-1, 1] then into the jitter band.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        raw * (1.0 + self.jitter * unit)
    }
}

/// Accounting of external-read retries (the formerly invisible path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadRetryStats {
    /// Reads that needed more than one attempt.
    pub retried_reads: u64,
    /// Total extra attempts across all reads.
    pub extra_attempts: u64,
    /// Reads that exhausted the attempt budget (or the caller's deadline).
    pub exhausted: u64,
    /// Reads that failed checksum verification.
    pub corrupt_reads: u64,
}

/// Accumulated transfer and persistence accounting, per medium.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MediumLedger {
    /// Bytes written into the medium.
    pub bytes_in: u64,
    /// Bytes read out of the medium.
    pub bytes_out: u64,
    /// Number of transfers.
    pub transfers: u64,
    /// Accrued persistence cost (price · GB · s).
    pub persistence_cost: f64,
    /// Pre-encoding (logical) size of the transferred tables. The gap to
    /// `bytes_in` is what the columnar codec saved on the wire —
    /// dictionary-encoded string columns make wire bytes smaller than the
    /// in-memory table they carry.
    pub logical_bytes: u64,
}

/// Ledger over all three media.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransferLedger {
    /// Shared-memory accounting.
    pub shared_memory: MediumLedger,
    /// Redis accounting.
    pub redis: MediumLedger,
    /// S3 accounting.
    pub s3: MediumLedger,
}

impl TransferLedger {
    /// The ledger for one medium.
    pub fn for_medium(&self, m: Medium) -> &MediumLedger {
        match m {
            Medium::SharedMemory => &self.shared_memory,
            Medium::Redis => &self.redis,
            Medium::S3 => &self.s3,
        }
    }

    fn for_medium_mut(&mut self, m: Medium) -> &mut MediumLedger {
        match m {
            Medium::SharedMemory => &mut self.shared_memory,
            Medium::Redis => &mut self.redis,
            Medium::S3 => &mut self.s3,
        }
    }

    /// Total persistence cost across media — the storage component of the
    /// paper's job cost.
    pub fn total_persistence_cost(&self) -> f64 {
        self.shared_memory.persistence_cost + self.redis.persistence_cost + self.s3.persistence_cost
    }
}

/// Placement-aware data exchange for one job execution.
pub struct DataPlane {
    external_medium: Medium,
    external: Arc<ObjectStore>,
    buses: Vec<Arc<SharedMemoryBus>>,
    ledger: Mutex<TransferLedger>,
    obs: Mutex<Option<Arc<ditto_obs::Recorder>>>,
    retry: Mutex<ReadRetryPolicy>,
    read_stats: Mutex<ReadRetryStats>,
    lineage: LineageIndex,
}

impl DataPlane {
    /// Build a data plane with the given external medium backing shuffles
    /// between non-co-located tasks, for a cluster of `n_servers` servers.
    ///
    /// # Panics
    /// Panics if `external_medium` is [`Medium::SharedMemory`]: shared
    /// memory is intra-server only and cannot back remote exchange.
    pub fn new(external_medium: Medium, n_servers: usize) -> Self {
        assert!(
            external_medium != Medium::SharedMemory,
            "external medium must be Redis or S3"
        );
        let external = match external_medium {
            // Two cache.r5.4xlarge Redis nodes ≈ 228 GB usable in the paper.
            Medium::Redis => Arc::new(ObjectStore::bounded("redis", 228 << 30)),
            Medium::S3 => Arc::new(ObjectStore::unbounded("s3")),
            Medium::SharedMemory => unreachable!(),
        };
        DataPlane {
            external_medium,
            external,
            buses: (0..n_servers).map(|_| Arc::new(SharedMemoryBus::new())).collect(),
            ledger: Mutex::new(TransferLedger::default()),
            obs: Mutex::new(None),
            retry: Mutex::new(ReadRetryPolicy::default()),
            read_stats: Mutex::new(ReadRetryStats::default()),
            lineage: LineageIndex::new(),
        }
    }

    /// Replace the external-read retry policy (the runtime derives it from
    /// its `RecoveryPolicy` so one knob bounds task and read retries alike).
    pub fn set_read_retry(&self, policy: ReadRetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// Current external-read retry policy.
    pub fn read_retry(&self) -> ReadRetryPolicy {
        *self.retry.lock()
    }

    /// Snapshot of external-read retry accounting.
    pub fn read_stats(&self) -> ReadRetryStats {
        *self.read_stats.lock()
    }

    /// The lineage index mapping intermediate objects to their producers.
    pub fn lineage(&self) -> &LineageIndex {
        &self.lineage
    }

    /// Attach a telemetry recorder: every subsequent transfer also lands
    /// on the `storage.bytes` counter (per-medium series), timestamped
    /// with the recorder's wall clock. Physical-path counterpart of the
    /// simulator's per-edge byte accounting.
    pub fn attach_recorder(&self, obs: Arc<ditto_obs::Recorder>) {
        *self.obs.lock() = Some(obs);
    }

    /// The configured external medium.
    pub fn external_medium(&self) -> Medium {
        self.external_medium
    }

    /// The external object store (for job input/output and inspection).
    pub fn external_store(&self) -> &Arc<ObjectStore> {
        &self.external
    }

    /// The shared-memory bus of one server.
    pub fn bus(&self, server: usize) -> &Arc<SharedMemoryBus> {
        &self.buses[server]
    }

    /// Which medium a transfer between the two servers uses.
    pub fn medium_between(&self, src_server: usize, dst_server: usize) -> Medium {
        if src_server == dst_server {
            Medium::SharedMemory
        } else {
            self.external_medium
        }
    }

    /// Simulated per-task transfer time for `bytes` between the servers.
    pub fn transfer_time(&self, src_server: usize, dst_server: usize, bytes: u64) -> f64 {
        TransferModel::for_medium(self.medium_between(src_server, dst_server)).transfer_time(bytes)
    }

    /// Record a (simulated or physical) transfer in the ledger. The
    /// logical size defaults to the wire size; callers that know the
    /// pre-encoding table size use [`Self::record_transfer_sized`].
    pub fn record_transfer(&self, medium: Medium, bytes: u64) {
        self.record_transfer_sized(medium, bytes, bytes);
    }

    /// Record a transfer whose wire size (`bytes`) differs from the
    /// logical table size it carries (`logical_bytes`) — the codec's
    /// compression shows up as the gap between the two ledger columns.
    pub fn record_transfer_sized(&self, medium: Medium, bytes: u64, logical_bytes: u64) {
        {
            let mut l = self.ledger.lock();
            let m = l.for_medium_mut(medium);
            m.bytes_in += bytes;
            m.bytes_out += bytes;
            m.transfers += 1;
            m.logical_bytes += logical_bytes;
        }
        if let Some(obs) = self.obs.lock().as_ref() {
            if obs.is_enabled() {
                let series = match medium {
                    Medium::SharedMemory => "shared-memory",
                    Medium::Redis => "redis",
                    Medium::S3 => "s3",
                };
                obs.counter_add("storage.bytes", series, bytes as f64, obs.wall_now());
            }
        }
    }

    /// Accrue persistence cost: `bytes` resident in `medium` for `seconds`.
    pub fn record_persistence(&self, medium: Medium, bytes: u64, seconds: f64) {
        let cost = CostModel::for_medium(medium).persistence_cost(bytes, seconds);
        self.ledger.lock().for_medium_mut(medium).persistence_cost += cost;
    }

    /// Ledger snapshot.
    pub fn ledger(&self) -> TransferLedger {
        *self.ledger.lock()
    }

    // ------------------------------------------------------------------
    // Physical path (used by the local runtime in ditto-exec)
    // ------------------------------------------------------------------

    /// Publish one intermediate partition from `(edge, from_task)` to
    /// `to_task`, where producer and consumer run on the given servers.
    pub fn send_partition(
        &self,
        edge: u32,
        from_task: u32,
        to_task: u32,
        src_server: usize,
        dst_server: usize,
        data: Bytes,
    ) -> Result<(), StoreError> {
        let bytes = data.len() as u64;
        self.send_partition_sized(edge, from_task, to_task, src_server, dst_server, data, bytes)
    }

    /// [`Self::send_partition`] with an explicit logical (pre-encoding)
    /// size, for producers that track how many table bytes the encoded
    /// frame represents.
    #[allow(clippy::too_many_arguments)]
    pub fn send_partition_sized(
        &self,
        edge: u32,
        from_task: u32,
        to_task: u32,
        src_server: usize,
        dst_server: usize,
        data: Bytes,
        logical_bytes: u64,
    ) -> Result<(), StoreError> {
        let bytes = data.len() as u64;
        let medium = self.medium_between(src_server, dst_server);
        match medium {
            Medium::SharedMemory => {
                self.buses[src_server].send((edge, from_task, to_task), data);
            }
            _ => {
                self.external.put(partition_key(edge, from_task, to_task), data)?;
            }
        }
        self.record_transfer_sized(medium, bytes, logical_bytes);
        // Happens-before edge for the race checker: the object is now
        // durable (or on the bus); any fetch of this key must follow.
        self.hb_object_event("hb.object_commit", &partition_key(edge, from_task, to_task));
        Ok(())
    }

    /// Emit one dataplane `hb.object_*` event on the storage track, keyed
    /// by partition key, at the recorder's wall clock. No-op without an
    /// attached, enabled recorder.
    fn hb_object_event(&self, name: &'static str, key: &str) {
        if let Some(obs) = self.obs.lock().as_ref() {
            if obs.is_enabled() {
                obs.event(
                    name,
                    ditto_obs::Track::storage(),
                    obs.wall_now(),
                    vec![("key", ditto_obs::AttrValue::Text(key.to_string()))],
                );
            }
        }
    }

    /// Receive one intermediate partition, blocking up to `timeout` when it
    /// travels via shared memory (producer may still be running).
    pub fn recv_partition(
        &self,
        edge: u32,
        from_task: u32,
        to_task: u32,
        src_server: usize,
        dst_server: usize,
        timeout: Duration,
    ) -> Result<Bytes, StoreError> {
        match self.medium_between(src_server, dst_server) {
            Medium::SharedMemory => {
                match self.buses[src_server].recv((edge, from_task, to_task), timeout) {
                    Some(b) => {
                        self.hb_object_event(
                            "hb.object_fetch",
                            &partition_key(edge, from_task, to_task),
                        );
                        Ok(b)
                    }
                    None => Err(StoreError::NotFound(partition_key(edge, from_task, to_task))),
                }
            }
            _ => {
                let key = partition_key(edge, from_task, to_task);
                // External stores have no blocking read; poll with bounded,
                // jittered backoff (the local runtime launches consumers
                // after producers, so this loop rarely spins more than
                // once). Both the attempt budget and the caller's deadline
                // bound the loop; corruption is surfaced immediately — the
                // bytes will not improve by re-reading, only lineage
                // re-execution can heal them.
                let policy = self.read_retry();
                let deadline = std::time::Instant::now() + timeout;
                let mut attempt = 0u32;
                loop {
                    match self.external.get(&key) {
                        Ok(b) => {
                            if attempt > 0 {
                                let mut st = self.read_stats.lock();
                                st.retried_reads += 1;
                                st.extra_attempts += attempt as u64;
                            }
                            self.hb_object_event("hb.object_fetch", &key);
                            return Ok(b);
                        }
                        Err(StoreError::NotFound(_))
                            if attempt + 1 < policy.max_attempts
                                && std::time::Instant::now() < deadline =>
                        {
                            std::thread::sleep(Duration::from_secs_f64(
                                policy.backoff(&key, attempt),
                            ));
                            attempt += 1;
                        }
                        Err(e) => {
                            let mut st = self.read_stats.lock();
                            if attempt > 0 {
                                st.extra_attempts += attempt as u64;
                            }
                            match &e {
                                StoreError::Corrupted { .. } => st.corrupt_reads += 1,
                                StoreError::NotFound(_) => st.exhausted += 1,
                                StoreError::CapacityExceeded { .. } => {}
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for DataPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataPlane")
            .field("external_medium", &self.external_medium)
            .field("servers", &self.buses.len())
            .field("ledger", &self.ledger())
            .finish()
    }
}

/// The store key of one shuffled partition: `(edge, producer, consumer)`.
/// Public so the runtime's lineage index can address objects by the same
/// name the data plane stores them under.
pub fn partition_key(edge: u32, from_task: u32, to_task: u32) -> String {
    format!("shuffle/e{edge}/{from_task}/{to_task}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_colocation() {
        let dp = DataPlane::new(Medium::S3, 2);
        assert_eq!(dp.medium_between(0, 0), Medium::SharedMemory);
        assert_eq!(dp.medium_between(0, 1), Medium::S3);
        assert!(dp.transfer_time(0, 0, 1 << 20) < dp.transfer_time(0, 1, 1 << 20));
    }

    #[test]
    #[should_panic(expected = "Redis or S3")]
    fn shared_memory_not_external() {
        DataPlane::new(Medium::SharedMemory, 1);
    }

    #[test]
    fn physical_same_server_via_bus() {
        let dp = DataPlane::new(Medium::S3, 2);
        dp.send_partition(0, 0, 1, 1, 1, Bytes::from_static(b"abc")).unwrap();
        let got = dp
            .recv_partition(0, 0, 1, 1, 1, Duration::from_millis(50))
            .unwrap();
        assert_eq!(got, Bytes::from_static(b"abc"));
        let l = dp.ledger();
        assert_eq!(l.shared_memory.transfers, 1);
        assert_eq!(l.shared_memory.bytes_in, 3);
        assert_eq!(l.s3.transfers, 0);
    }

    #[test]
    fn physical_cross_server_via_external() {
        let dp = DataPlane::new(Medium::Redis, 2);
        dp.send_partition(3, 1, 0, 0, 1, Bytes::from_static(b"xyz")).unwrap();
        let got = dp
            .recv_partition(3, 1, 0, 0, 1, Duration::from_millis(50))
            .unwrap();
        assert_eq!(got, Bytes::from_static(b"xyz"));
        assert_eq!(dp.ledger().redis.transfers, 1);
    }

    #[test]
    fn recv_external_polls_until_available() {
        let dp = Arc::new(DataPlane::new(Medium::S3, 2));
        let dp2 = dp.clone();
        let t = std::thread::spawn(move || {
            dp2.recv_partition(0, 0, 0, 0, 1, Duration::from_secs(2))
        });
        std::thread::sleep(Duration::from_millis(10));
        dp.send_partition(0, 0, 0, 0, 1, Bytes::from_static(b"late")).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), Bytes::from_static(b"late"));
    }

    #[test]
    fn attached_recorder_sees_transfers() {
        let obs = Arc::new(ditto_obs::Recorder::new());
        let dp = DataPlane::new(Medium::S3, 2);
        dp.attach_recorder(obs.clone());
        dp.send_partition(0, 0, 0, 0, 0, Bytes::from_static(b"local")).unwrap();
        dp.send_partition(0, 0, 1, 0, 1, Bytes::from_static(b"remote!")).unwrap();
        let data = obs.finish();
        assert_eq!(data.samples.len(), 2);
        let m = &data.metrics;
        let get = |series: &str| {
            m.iter()
                .find(|s| s.name == "storage.bytes" && s.series == series)
                .map(|s| s.value)
        };
        assert_eq!(get("shared-memory"), Some(5.0));
        assert_eq!(get("s3"), Some(7.0));
    }

    #[test]
    fn commit_and_fetch_emit_ordered_hb_events() {
        let obs = Arc::new(ditto_obs::Recorder::new());
        let dp = DataPlane::new(Medium::S3, 2);
        dp.attach_recorder(obs.clone());
        // One external transfer and one shared-memory transfer.
        dp.send_partition(4, 1, 2, 0, 1, Bytes::from_static(b"ext")).unwrap();
        dp.recv_partition(4, 1, 2, 0, 1, Duration::from_millis(50))
            .unwrap();
        dp.send_partition(5, 0, 0, 1, 1, Bytes::from_static(b"shm")).unwrap();
        dp.recv_partition(5, 0, 0, 1, 1, Duration::from_millis(50))
            .unwrap();
        let data = obs.finish();
        let by_name = |n: &str| -> Vec<_> { data.events.iter().filter(|e| e.name == n).collect() };
        let commits = by_name("hb.object_commit");
        let fetches = by_name("hb.object_fetch");
        assert_eq!(commits.len(), 2);
        assert_eq!(fetches.len(), 2);
        for (c, f) in commits.iter().zip(fetches.iter()) {
            assert_eq!(c.attr("key"), f.attr("key"), "commit/fetch keys must pair");
            assert!(c.ts <= f.ts, "commit {} must precede fetch {}", c.ts, f.ts);
        }
        // A failed fetch emits no event: nothing was handed to the reader.
        let obs2 = Arc::new(ditto_obs::Recorder::new());
        let dp2 = DataPlane::new(Medium::S3, 1);
        dp2.attach_recorder(obs2.clone());
        dp2.set_read_retry(ReadRetryPolicy {
            max_attempts: 1,
            backoff_base: 1e-4,
            jitter: 0.0,
        });
        assert!(dp2.recv_partition(0, 0, 0, 0, 0, Duration::from_millis(1)).is_err());
        assert!(obs2.finish().events.is_empty());
    }

    #[test]
    fn bounded_read_retry_gives_up_and_accounts() {
        let dp = DataPlane::new(Medium::S3, 2);
        dp.set_read_retry(ReadRetryPolicy {
            max_attempts: 3,
            backoff_base: 1e-4,
            jitter: 0.5,
        });
        let err = dp
            .recv_partition(9, 0, 0, 0, 1, Duration::from_secs(5))
            .unwrap_err();
        assert!(matches!(err, StoreError::NotFound(_)));
        let st = dp.read_stats();
        assert_eq!(st.exhausted, 1);
        assert_eq!(st.extra_attempts, 2);
    }

    #[test]
    fn late_publish_counts_as_retried_read() {
        let dp = Arc::new(DataPlane::new(Medium::S3, 2));
        let dp2 = dp.clone();
        let t = std::thread::spawn(move || {
            dp2.recv_partition(1, 0, 0, 0, 1, Duration::from_secs(2))
        });
        std::thread::sleep(Duration::from_millis(15));
        dp.send_partition(1, 0, 0, 0, 1, Bytes::from_static(b"late")).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), Bytes::from_static(b"late"));
        let st = dp.read_stats();
        assert_eq!(st.retried_reads, 1);
        assert!(st.extra_attempts >= 1);
    }

    #[test]
    fn corrupt_partition_surfaces_without_retry() {
        let dp = DataPlane::new(Medium::S3, 2);
        dp.send_partition(2, 0, 0, 0, 1, Bytes::from_static(b"good")).unwrap();
        assert!(dp.external_store().tamper(&partition_key(2, 0, 0)));
        let err = dp
            .recv_partition(2, 0, 0, 0, 1, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupted { .. }));
        assert_eq!(dp.read_stats().corrupt_reads, 1);
    }

    #[test]
    fn backoff_is_deterministic_and_jittered() {
        let p = ReadRetryPolicy::default();
        assert_eq!(p.backoff("k", 3), p.backoff("k", 3));
        assert_ne!(p.backoff("k", 3), p.backoff("k", 4));
        for a in 0..80 {
            let b = p.backoff("some/key", a);
            assert!(b > 0.0 && b <= 0.05 * (1.0 + p.jitter), "attempt {a}: {b}");
        }
    }

    #[test]
    fn sized_sends_track_logical_bytes_separately() {
        let dp = DataPlane::new(Medium::S3, 2);
        // 3 wire bytes carrying a 10-byte logical table (compressed), plus
        // an unsized send where logical defaults to wire size.
        dp.send_partition_sized(0, 0, 0, 0, 1, Bytes::from_static(b"abc"), 10)
            .unwrap();
        dp.send_partition(0, 0, 1, 0, 1, Bytes::from_static(b"defg")).unwrap();
        let l = dp.ledger();
        assert_eq!(l.s3.bytes_in, 7);
        assert_eq!(l.s3.logical_bytes, 14);
        assert_eq!(l.s3.transfers, 2);
    }

    #[test]
    fn persistence_cost_accrues() {
        let dp = DataPlane::new(Medium::Redis, 1);
        dp.record_persistence(Medium::SharedMemory, 1_000_000_000, 3.0);
        dp.record_persistence(Medium::S3, 1_000_000_000, 100.0); // free
        let l = dp.ledger();
        assert!(l.shared_memory.persistence_cost > 0.0);
        assert_eq!(l.s3.persistence_cost, 0.0);
        assert!((l.total_persistence_cost() - l.shared_memory.persistence_cost).abs() < 1e-12);
    }
}
