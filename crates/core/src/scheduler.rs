//! The scheduler interface and Ditto's implementation of it.

use crate::joint::{joint_optimize, joint_optimize_traced, JointOptions};
use crate::objective::Objective;
use crate::schedule::Schedule;
use ditto_cluster::ResourceManager;
use ditto_dag::JobDag;
use ditto_timemodel::JobTimeModel;

/// Everything a scheduler sees when a job arrives: the DAG, the fitted
/// execution-time model, the cluster's free slots and the user-chosen
/// objective (§3 "Ditto components").
#[derive(Debug, Clone, Copy)]
pub struct SchedulingContext<'a> {
    /// The job DAG.
    pub dag: &'a JobDag,
    /// The fitted execution-time model (from recurring-job profiles).
    pub model: &'a JobTimeModel,
    /// Free-slot snapshot of the cluster at job arrival.
    pub resources: &'a ResourceManager,
    /// What to minimize.
    pub objective: Objective,
}

/// A job scheduler: parallelism configuration + task placement.
pub trait Scheduler {
    /// Scheduler name, used in traces and figures.
    fn name(&self) -> &str;
    /// Produce a schedule for the job.
    fn schedule(&self, ctx: &SchedulingContext<'_>) -> Schedule;
}

/// The Ditto scheduler: joint iterative optimization of DoP ratios and
/// stage grouping (Algorithm 3).
#[derive(Debug, Clone, Default)]
pub struct DittoScheduler {
    /// Joint-optimizer knobs.
    pub options: JointOptions,
}

impl DittoScheduler {
    /// Ditto with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule with telemetry: scheduler decisions (grouping merges,
    /// placement checks, optimization rounds) land on `obs`'s scheduler
    /// track. Equivalent to [`Scheduler::schedule`] when `obs` is
    /// disabled.
    pub fn schedule_traced(
        &self,
        ctx: &SchedulingContext<'_>,
        obs: &ditto_obs::Recorder,
    ) -> Schedule {
        joint_optimize_traced(
            ctx.dag,
            ctx.model,
            ctx.resources,
            ctx.objective,
            &self.options,
            obs,
        )
    }
}

impl Scheduler for DittoScheduler {
    fn name(&self) -> &str {
        "ditto"
    }

    fn schedule(&self, ctx: &SchedulingContext<'_>) -> Schedule {
        joint_optimize(ctx.dag, ctx.model, ctx.resources, ctx.objective, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::generators;
    use ditto_timemodel::model::RateConfig;

    #[test]
    fn ditto_scheduler_via_trait() {
        let dag = generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![96, 48, 24, 12]);
        let ctx = SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        };
        let sched: &dyn Scheduler = &DittoScheduler::new();
        assert_eq!(sched.name(), "ditto");
        let s = sched.schedule(&ctx);
        s.validate(&dag).unwrap();
    }
}
