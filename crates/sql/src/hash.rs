//! Deterministic hashing primitives for the vectorized kernels.
//!
//! Two hash families live here, with very different contracts:
//!
//! * **FNV-1a** ([`fnv1a_bytes`], [`fnv1a_u64_le`]) — byte-compatible with
//!   [`crate::column::Column::hash_row`]. This hash is *visible in output*:
//!   it decides which shuffle bucket a row lands in, so it must stay stable
//!   across runs, platforms and refactors.
//! * **fx-style mixing** ([`fx_u64`], [`fx_str`]) — a fast multiply-rotate
//!   mixer used only *inside* hash tables whose layout never leaks into
//!   results (join build sides, group-id assignment, distinct sets). It is
//!   still fully deterministic — no `RandomState`, no per-process seeds —
//!   just not part of the on-the-wire contract.
//!
//! The two table types, [`I64RowMap`] and [`TupleIdMap`], are open-addressing
//! tables over raw integers: no enum boxing, no per-row heap allocation, and
//! probe order is a pure function of the key bytes.

/// FNV-1a offset basis (matches [`crate::column::Column::hash_row`]).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime (matches [`crate::column::Column::hash_row`]).
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice — identical to what
/// [`crate::column::Column::hash_row`] computes for a string cell.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over the little-endian bytes of one 64-bit word — identical to
/// what [`crate::column::Column::hash_row`] computes for an `i64` cell (pass
/// `x as u64`) or an `f64` cell (pass `x.to_bits()`).
pub fn fnv1a_u64_le(word: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Multiplier for the fx-style mixer (the golden-ratio-derived constant
/// used by rustc's FxHash).
const FX_K: u64 = 0x517cc1b727220a95;

/// Mix one 64-bit word into a running fx hash.
#[inline]
pub fn fx_mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(FX_K)
}

/// Hash a single 64-bit word (internal hash tables only; see module docs).
#[inline]
pub fn fx_u64(word: u64) -> u64 {
    fx_mix(0, word)
}

/// Finalize a hash before it is masked into a slot index: full 64-bit
/// avalanche (murmur3's `fmix64`). The `fx_mix` multiply only propagates
/// entropy *upward*, so on structured keys whose differences sit in the
/// high bytes (`"cust-0001"`, `"cust-0002"`, … differ in LE-word bits
/// 40–63) the raw low bits — exactly the ones open-addressing tables index
/// with — cluster badly: ~16 probed slots per lookup instead of ~1.
#[inline]
pub fn fx_fold(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^ (h >> 33)
}

/// Hash a string by consuming 8-byte little-endian chunks (internal hash
/// tables only).
#[inline]
pub fn fx_str(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut h = fx_u64(bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = fx_mix(h, word);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut word = [0u8; 8];
        word[..rest.len()].copy_from_slice(rest);
        h = fx_mix(h, u64::from_le_bytes(word));
    }
    fx_fold(h)
}

/// Sentinel meaning "no row" in [`I64RowMap`] chains.
pub const NO_ROW: u32 = u32::MAX;

/// An open-addressing map from `i64` join keys to the **ascending** list of
/// build-side rows carrying that key — the join build table, with no enum
/// boxing and no per-key `Vec`.
///
/// Rows with the same key are chained through a single flat `next` array
/// (one `u32` per build row); appending at the tail keeps each chain in
/// ascending row order, which is what makes the vectorized join's output
/// row order bit-identical to the row-at-a-time reference.
pub struct I64RowMap {
    /// Slot array: `entry index + 1`, `0` = empty. Power-of-two length.
    slots: Vec<u32>,
    mask: u64,
    /// Per-entry key.
    keys: Vec<i64>,
    /// Per-entry first row of the chain.
    heads: Vec<u32>,
    /// Per-entry last row of the chain (for O(1) tail append).
    tails: Vec<u32>,
    /// Per build row: the next row with the same key, or [`NO_ROW`].
    next: Vec<u32>,
}

impl I64RowMap {
    /// Build the map over every element of `keys` (row `i` has key
    /// `keys[i]`).
    ///
    /// # Panics
    /// Panics if `keys` has ≥ `u32::MAX` rows (rows are stored as `u32`).
    pub fn build(keys: &[i64]) -> I64RowMap {
        assert!(
            keys.len() < NO_ROW as usize,
            "build side too large for u32 row ids"
        );
        let cap = (keys.len().max(4) * 2).next_power_of_two();
        let mut m = I64RowMap {
            slots: vec![0u32; cap],
            mask: (cap - 1) as u64,
            keys: Vec::with_capacity(keys.len().min(1024)),
            heads: Vec::with_capacity(keys.len().min(1024)),
            tails: Vec::with_capacity(keys.len().min(1024)),
            next: vec![NO_ROW; keys.len()],
        };
        for (row, &k) in keys.iter().enumerate() {
            m.insert(k, row as u32);
        }
        m
    }

    fn insert(&mut self, key: i64, row: u32) {
        let mut i = fx_fold(fx_u64(key as u64)) & self.mask;
        loop {
            let slot = self.slots[i as usize];
            if slot == 0 {
                let entry = self.keys.len() as u32;
                self.keys.push(key);
                self.heads.push(row);
                self.tails.push(row);
                self.slots[i as usize] = entry + 1;
                return;
            }
            let entry = (slot - 1) as usize;
            if self.keys[entry] == key {
                let tail = self.tails[entry];
                self.next[tail as usize] = row;
                self.tails[entry] = row;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn entry_of(&self, key: i64) -> Option<usize> {
        let mut i = fx_fold(fx_u64(key as u64)) & self.mask;
        loop {
            let slot = self.slots[i as usize];
            if slot == 0 {
                return None;
            }
            let entry = (slot - 1) as usize;
            if self.keys[entry] == key {
                return Some(entry);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// `true` when at least one build row carries `key`.
    pub fn contains(&self, key: i64) -> bool {
        self.entry_of(key).is_some()
    }

    /// Iterate the build rows carrying `key`, in ascending row order.
    pub fn rows(&self, key: i64) -> RowChain<'_> {
        RowChain {
            next: &self.next,
            cur: self.entry_of(key).map_or(NO_ROW, |e| self.heads[e]),
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no keys were inserted.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Iterator over one key's build rows (see [`I64RowMap::rows`]).
pub struct RowChain<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for RowChain<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NO_ROW {
            return None;
        }
        let row = self.cur;
        self.cur = self.next[row as usize];
        Some(row)
    }
}

/// An open-addressing map from fixed-width `u64` tuples to dense `u32` ids
/// assigned in first-insertion order — the group-id assigner for group-by
/// and the seen-set for distinct / count-distinct.
///
/// Tuples are compared exactly (full word compare on probe), so two
/// distinct keys can never be conflated by a hash collision. Tuple words
/// live in one flat arena; no per-row allocation.
pub struct TupleIdMap {
    stride: usize,
    /// Slot array: `id + 1`, `0` = empty. Power-of-two length.
    slots: Vec<u32>,
    mask: u64,
    /// Per-id tuple words, `stride` consecutive entries each.
    data: Vec<u64>,
}

impl TupleIdMap {
    /// A map for `stride`-word tuples, sized for at most `max_inserts`
    /// distinct tuples (callers bound this by their row count).
    pub fn with_capacity(stride: usize, max_inserts: usize) -> TupleIdMap {
        let cap = (max_inserts.max(4) * 2).next_power_of_two();
        TupleIdMap {
            stride,
            slots: vec![0u32; cap],
            mask: (cap - 1) as u64,
            data: Vec::new(),
        }
    }

    fn hash_tuple(&self, tuple: &[u64]) -> u64 {
        let mut h = 0x9e3779b97f4a7c15;
        for &w in tuple {
            h = fx_mix(h, w);
        }
        fx_fold(h)
    }

    /// Look up `tuple`, inserting it with the next dense id when absent.
    /// Returns `(id, was_new)`.
    ///
    /// # Panics
    /// Panics if `tuple.len() != stride` or the capacity given at
    /// construction is exceeded.
    pub fn insert_or_get(&mut self, tuple: &[u64]) -> (u32, bool) {
        assert_eq!(tuple.len(), self.stride, "tuple width mismatch");
        let mut i = self.hash_tuple(tuple) & self.mask;
        loop {
            let slot = self.slots[i as usize];
            if slot == 0 {
                let id = self.len() as u32;
                assert!(
                    (id as u64) < self.mask,
                    "TupleIdMap capacity exceeded"
                );
                self.data.extend_from_slice(tuple);
                self.slots[i as usize] = id + 1;
                return (id, true);
            }
            let id = slot - 1;
            let start = id as usize * self.stride;
            if &self.data[start..start + self.stride] == tuple {
                return (id, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Number of distinct tuples inserted so far.
    pub fn len(&self) -> usize {
        match self.data.len().checked_div(self.stride) {
            Some(n) => n,
            // Zero-width tuples: at most one distinct value exists; len is
            // tracked through the slot for the empty tuple.
            None => usize::from(self.slots.iter().any(|&s| s != 0)),
        }
    }

    /// `true` when nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn fnv_matches_hash_row() {
        let c = Column::I64(vec![42, -7, i64::MAX]);
        for row in 0..3 {
            assert_eq!(fnv1a_u64_le(c.as_i64()[row] as u64), c.hash_row(row));
        }
        let f = Column::F64(vec![1.5, -0.0, f64::NAN]);
        for row in 0..3 {
            assert_eq!(fnv1a_u64_le(f.as_f64()[row].to_bits()), f.hash_row(row));
        }
        let s = Column::Str(vec!["".into(), "tn".into(), "αβγ".into()]);
        for row in 0..3 {
            assert_eq!(fnv1a_bytes(s.as_str()[row].as_bytes()), s.hash_row(row));
        }
    }

    #[test]
    fn fx_str_discriminates_and_is_stable() {
        assert_eq!(fx_str("abc"), fx_str("abc"));
        assert_ne!(fx_str("abc"), fx_str("abd"));
        assert_ne!(fx_str(""), fx_str("\0"));
        // Longer than one chunk.
        assert_ne!(fx_str("abcdefghij"), fx_str("abcdefghik"));
    }

    #[test]
    fn row_map_chains_ascending() {
        let m = I64RowMap::build(&[5, 3, 5, 5, 3]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.rows(5).collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(m.rows(3).collect::<Vec<_>>(), vec![1, 4]);
        assert!(m.rows(9).next().is_none());
        assert!(m.contains(3) && !m.contains(4));
    }

    #[test]
    fn row_map_empty() {
        let m = I64RowMap::build(&[]);
        assert!(m.is_empty());
        assert!(!m.contains(0));
        assert!(m.rows(0).next().is_none());
    }

    #[test]
    fn tuple_map_assigns_first_appearance_ids() {
        let mut m = TupleIdMap::with_capacity(2, 8);
        assert_eq!(m.insert_or_get(&[1, 2]), (0, true));
        assert_eq!(m.insert_or_get(&[2, 1]), (1, true));
        assert_eq!(m.insert_or_get(&[1, 2]), (0, false));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn tuple_map_zero_stride_is_single_group() {
        let mut m = TupleIdMap::with_capacity(0, 8);
        assert!(m.is_empty());
        assert_eq!(m.insert_or_get(&[]), (0, true));
        assert_eq!(m.insert_or_get(&[]), (0, false));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tuple_map_exact_compare_beats_collisions() {
        // Many tuples; every distinct tuple must get a distinct id.
        let mut m = TupleIdMap::with_capacity(1, 4096);
        for i in 0..4096u64 {
            let (id, new) = m.insert_or_get(&[i]);
            assert!(new);
            assert_eq!(id as u64, i);
        }
        for i in 0..4096u64 {
            assert_eq!(m.insert_or_get(&[i]), (i as u32, false));
        }
    }
}
