//! End-to-end serverless analytics: physically execute TPC-DS Q95.
//!
//! Generates the synthetic TPC-DS-like database, lowers Q95 to its
//! 9-stage DAG (the paper's Fig. 13), schedules it with Ditto, and then
//! *really runs it*: tasks on worker threads, intermediate tables moving
//! through the placement-aware data plane — zero-copy shared memory for
//! co-located stages, the S3-like object store otherwise. The distributed
//! answer is verified against an independent single-threaded oracle.
//!
//! ```sh
//! cargo run --release --example tpcds_analytics
//! ```

use ditto::cluster::ResourceManager;
use ditto::core::baselines::NimbleScheduler;
use ditto::core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
use ditto::exec::{profile_job, ExecConfig, GroundTruth, LocalRuntime};
use ditto::sql::queries::{q95, Query};
use ditto::sql::{Database, ScaleConfig};
use ditto::storage::{DataPlane, Medium};

fn main() {
    let db = Database::generate(ScaleConfig::with_sf(0.5));
    println!(
        "generated {} tables, {:.1} MB total",
        db.table_names().len(),
        db.total_bytes() as f64 / 1e6
    );

    let plan = Query::Q95.prepared_plan(&db);
    println!("{}", plan.dag.describe());

    let gt = GroundTruth::new(ExecConfig::default());
    let profile = profile_job(&plan.dag, &gt, &[2, 4, 8]);
    let (model, _) = profile.build_model(&plan.dag);

    // A small cluster: 4 servers × 8 slots.
    let free = vec![8u32, 8, 8, 8];

    for scheduler in [
        &DittoScheduler::new() as &dyn Scheduler,
        &NimbleScheduler::default(),
    ] {
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = scheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        println!("{}", schedule.describe(&plan.dag));

        let dataplane = DataPlane::new(Medium::S3, free.len());
        let out = LocalRuntime::new().execute(&plan, &db, &schedule, &dataplane);
        let (orders, cost, profit) = q95::result_triple(&out.result);
        println!(
            "  answer: {orders} multi-warehouse orders, ship cost {cost:.2}, profit {profit:.2}"
        );
        println!(
            "  wall {:.2}s; data plane: {} shared-memory transfers ({} KB), {} s3 transfers ({} KB)\n",
            out.wall_seconds,
            out.ledger.shared_memory.transfers,
            out.ledger.shared_memory.bytes_in / 1024,
            out.ledger.s3.transfers,
            out.ledger.s3.bytes_in / 1024,
        );

        // Cross-check against the independent oracle.
        let (n, c, p) = q95::reference(&db);
        assert_eq!(orders, n, "distributed answer must match the oracle");
        assert!((cost - c).abs() < 1e-6 * c.abs().max(1.0));
        assert!((profit - p).abs() < 1e-6 * p.abs().max(1.0));
    }
    println!("distributed results verified against the single-threaded oracle ✓");
}
