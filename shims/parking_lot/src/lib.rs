//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning API surface the workspace uses: `Mutex::lock`
//! returning a guard directly, `RwLock`, and `Condvar::wait_for` taking the
//! guard by `&mut`. Poisoned std locks are recovered transparently (panicking
//! while holding a lock is already a test failure; the data is still
//! consistent for the accounting these locks protect).

use std::sync::TryLockError;
use std::time::Duration;

/// Mutual exclusion lock whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]. The inner `Option` lets [`Condvar::wait_for`]
/// temporarily take the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { inner: Some(g) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: Some(p.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                assert!(!cv.wait_for(&mut done, Duration::from_secs(5)).timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
