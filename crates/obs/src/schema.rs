//! Pure-Rust structural validator for exported Chrome traces.
//!
//! CI runs a fixed-seed traced simulation and validates the emitted
//! JSON against the `trace_event` shape without any external schema
//! engine or network access: required keys, phase-specific fields,
//! type checks, and non-negative timestamps. Returns summary
//! [`ChromeTraceStats`] so tests can assert on content (e.g. "the trace
//! contains scheduler merge events and per-attempt task spans").
//!
//! Beyond the generic `trace_event` shape, the validator knows the
//! stack's own event vocabulary: instant events named below must carry
//! their required `args` keys, so a refactor that drops (say) the
//! `risk_penalty` attribute off `sched.replan` fails CI instead of
//! silently degrading the diff/scorecard toolchain downstream.

use serde_json::Value;
use std::collections::BTreeMap;

/// Summary of a validated Chrome trace.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `"X"` duration events.
    pub durations: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"C"` counter events.
    pub counters: usize,
    /// `"M"` metadata events.
    pub metadata: usize,
    /// Latest `ts + dur` seen, microseconds.
    pub max_ts_us: u64,
    /// Event count per name.
    pub names: BTreeMap<String, usize>,
    /// Distinct `pid` (track group) values.
    pub pids: Vec<u64>,
}

impl ChromeTraceStats {
    /// Number of events with this exact name.
    pub fn count(&self, name: &str) -> usize {
        self.names.get(name).copied().unwrap_or(0)
    }

    /// Number of events whose name starts with `prefix`.
    pub fn count_prefix(&self, prefix: &str) -> usize {
        self.names
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, c)| c)
            .sum()
    }
}

/// Required `args` keys per known instant-event kind. Events not listed
/// here are only held to the generic `trace_event` shape.
fn required_args(name: &str) -> Option<&'static [&'static str]> {
    match name {
        "sched.replan" => Some(&[
            "trigger",
            "at_stage",
            "factor",
            "suffix_stages",
            "old_predicted_jct",
            "new_predicted_jct",
            "applied",
            "risk_penalty",
            "audit_clean",
            "decision_seq",
        ]),
        "sched.failover" => Some(&["failed_server", "at_time", "suffix_stages", "decision_seq"]),
        "recovery.resume" => Some(&["resumed_stages", "replayed_commits", "torn"]),
        "fault.object_lost" | "fault.object_corrupt" => Some(&["stage", "task", "reader_stage"]),
        "recovery.lineage_reexec" => Some(&["stage", "task", "reexec_s"]),
        "drift.detected" => Some(&["stage", "factor", "samples"]),
        "hb.write" => Some(&["stage", "task", "server", "write_start"]),
        "hb.read" => Some(&[
            "stage",
            "task",
            "server",
            "edge",
            "src_stage",
            "pipelined",
            "medium",
            "compute_start",
        ]),
        "hb.slot_acquire" | "hb.slot_release" => Some(&["stage", "task", "server", "kind"]),
        "hb.seam" => Some(&["edge", "src_stage", "dst_stage"]),
        "hb.object_commit" | "hb.object_fetch" => Some(&["key"]),
        "predictor.sample" => Some(&[
            "stage",
            "pred_setup",
            "pred_read",
            "pred_compute",
            "pred_write",
            "obs_setup",
            "obs_read",
            "obs_compute",
            "obs_write",
        ]),
        _ => None,
    }
}

fn require_u64(ev: &Value, key: &str, idx: usize) -> Result<u64, String> {
    ev.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("event {idx}: `{key}` missing or not a non-negative integer"))
}

fn require_str<'a>(ev: &'a Value, key: &str, idx: usize) -> Result<&'a str, String> {
    ev.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("event {idx}: `{key}` missing or not a string"))
}

/// Validate Chrome `trace_event` JSON text. Returns stats on success and
/// a description of the first violation otherwise.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let root: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("root must be an object with a `traceEvents` array")?;
    if events.is_empty() {
        return Err("`traceEvents` is empty".to_string());
    }

    let mut stats = ChromeTraceStats::default();
    for (idx, ev) in events.iter().enumerate() {
        if ev.as_object().is_none() {
            return Err(format!("event {idx}: not an object"));
        }
        let name = require_str(ev, "name", idx)?;
        let ph = require_str(ev, "ph", idx)?;
        let ts = require_u64(ev, "ts", idx)?;
        let pid = require_u64(ev, "pid", idx)?;
        require_u64(ev, "tid", idx)?;
        if let Some(args) = ev.get("args") {
            if args.as_object().is_none() {
                return Err(format!("event {idx}: `args` is not an object"));
            }
        }
        let mut end = ts;
        match ph {
            "X" => {
                let dur = require_u64(ev, "dur", idx)?;
                end = ts.saturating_add(dur);
                stats.durations += 1;
            }
            "i" => {
                require_str(ev, "s", idx)?;
                if let Some(keys) = required_args(name) {
                    let args = ev
                        .get("args")
                        .and_then(Value::as_object)
                        .ok_or_else(|| format!("event {idx}: `{name}` without `args`"))?;
                    for key in keys {
                        if args.get(key).is_none() {
                            return Err(format!(
                                "event {idx}: `{name}` missing required arg `{key}`"
                            ));
                        }
                    }
                }
                stats.instants += 1;
            }
            "C" => {
                let args = ev
                    .get("args")
                    .and_then(Value::as_object)
                    .ok_or_else(|| format!("event {idx}: counter without `args`"))?;
                if args.is_empty() {
                    return Err(format!("event {idx}: counter with empty `args`"));
                }
                for (k, v) in args.iter() {
                    if v.as_f64().is_none() {
                        return Err(format!("event {idx}: counter series `{k}` not numeric"));
                    }
                }
                stats.counters += 1;
            }
            "M" => {
                if name != "process_name" && name != "thread_name" {
                    return Err(format!("event {idx}: unknown metadata record `{name}`"));
                }
                stats.metadata += 1;
            }
            other => return Err(format!("event {idx}: unsupported phase `{other}`")),
        }
        stats.events += 1;
        stats.max_ts_us = stats.max_ts_us.max(end);
        *stats.names.entry(name.to_string()).or_insert(0) += 1;
        if !stats.pids.contains(&pid) {
            stats.pids.push(pid);
        }
    }
    stats.pids.sort_unstable();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::to_chrome_trace;
    use crate::span::{Recorder, Track};

    #[test]
    fn accepts_exporter_output() {
        let rec = Recorder::new();
        rec.name_track(Track::SERVER_BASE, "server 0");
        rec.span(
            "task",
            Track::server(0, 0),
            0.0,
            2.0,
            vec![
                ("stage", 0u32.into()),
                ("read_start", 0.5f64.into()),
                ("compute_start", 1.0f64.into()),
                ("write_start", 1.5f64.into()),
            ],
        );
        rec.event("fault.crashed", Track::server(0, 0), 1.0, vec![]);
        rec.counter_add("storage.bytes", "s3", 42.0, 0.5);
        let stats = validate_chrome_trace(&to_chrome_trace(&rec.finish())).unwrap();
        assert_eq!(stats.metadata, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.durations, 5); // task + 4 steps
        assert_eq!(stats.count("task"), 1);
        assert_eq!(stats.count_prefix("fault."), 1);
        assert_eq!(stats.max_ts_us, 2_000_000);
        assert!(stats.pids.contains(&(Track::SERVER_BASE as u64)));
    }

    #[test]
    fn rejects_structural_violations() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[]}"#).is_err());
        // missing dur on an X event
        let bad = r#"{"traceEvents":[{"name":"t","ph":"X","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("dur"));
        // negative ts
        let bad = r#"{"traceEvents":[{"name":"t","ph":"i","s":"t","ts":-1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // unknown phase
        let bad = r#"{"traceEvents":[{"name":"t","ph":"Q","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("phase"));
        // counter without args
        let bad = r#"{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn known_event_kinds_require_their_args() {
        // drift.detected without its attrs is rejected...
        let bad = r#"{"traceEvents":[{"name":"drift.detected","ph":"i","s":"t","ts":0,"pid":0,"tid":0,"args":{"stage":1}}]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("factor"), "{err}");
        // ...and accepted when complete.
        let good = r#"{"traceEvents":[{"name":"drift.detected","ph":"i","s":"t","ts":0,"pid":0,"tid":0,"args":{"stage":1,"factor":1.7,"samples":3}}]}"#;
        let stats = validate_chrome_trace(good).unwrap();
        assert_eq!(stats.count("drift.detected"), 1);
        // sched.replan must carry the full decision record.
        let bad = r#"{"traceEvents":[{"name":"sched.replan","ph":"i","s":"t","ts":0,"pid":0,"tid":0,"args":{"trigger":"drift","at_stage":2}}]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("sched.replan"), "{err}");
        // lineage recovery without args at all is rejected.
        let bad = r#"{"traceEvents":[{"name":"recovery.lineage_reexec","ph":"i","s":"t","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("args"));
        // unlisted event kinds stay unconstrained.
        let good = r#"{"traceEvents":[{"name":"fault.crashed","ph":"i","s":"t","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(good).is_ok());
    }
}
