//! Cluster: a set of function servers.

use crate::distribution::SlotDistribution;
use crate::server::{Server, ServerId};

/// A cluster of function servers. Mirrors the paper's testbed surface:
/// the scheduler only consumes per-server free-slot counts.
#[derive(Debug, Clone)]
pub struct Cluster {
    servers: Vec<Server>,
}

impl Cluster {
    /// Build a cluster from explicit (capacity, available) pairs.
    pub fn from_availability(avail: &[(u32, u32)]) -> Self {
        Cluster {
            servers: avail
                .iter()
                .enumerate()
                .map(|(i, &(cap, free))| Server::with_available(ServerId(i as u32), cap, free))
                .collect(),
        }
    }

    /// `n` identical servers with `capacity` slots, all free.
    pub fn uniform(n: usize, capacity: u32) -> Self {
        Cluster {
            servers: (0..n)
                .map(|i| Server::new(ServerId(i as u32), capacity))
                .collect(),
        }
    }

    /// The paper's testbed shape under an availability distribution:
    /// `n` servers of the given capacity, free slots per
    /// [`SlotDistribution`]. The paper uses 8 servers × 96 slots.
    pub fn with_distribution(n: usize, capacity: u32, dist: &SlotDistribution) -> Self {
        let caps = vec![capacity; n];
        let avail = dist.apply(&caps);
        Cluster {
            servers: avail
                .iter()
                .enumerate()
                .map(|(i, &a)| Server::with_available(ServerId(i as u32), capacity, a))
                .collect(),
        }
    }

    /// The paper's exact testbed: 8 servers × 96 function slots.
    pub fn paper_testbed(dist: &SlotDistribution) -> Self {
        Self::with_distribution(8, 96, dist)
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// All servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// One server.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.index()]
    }

    /// Mutable server access.
    pub fn server_mut(&mut self, id: ServerId) -> &mut Server {
        &mut self.servers[id.index()]
    }

    /// Total free slots across the cluster (the paper's `C`).
    pub fn total_free_slots(&self) -> u32 {
        self.servers.iter().map(|s| s.free()).sum()
    }

    /// Largest per-server free-slot count (bounds the biggest placeable
    /// stage group).
    pub fn max_free_slots(&self) -> u32 {
        self.servers.iter().map(|s| s.free()).max().unwrap_or(0)
    }

    /// Current free-slot vector (snapshot for the placement check).
    pub fn free_slots(&self) -> Vec<u32> {
        self.servers.iter().map(|s| s.free()).collect()
    }

    /// Take a server down (see [`Server::fail`]); returns the free slots
    /// lost. Snapshots taken afterwards see zero capacity there, so new
    /// schedules route around the failure.
    pub fn fail_server(&mut self, id: ServerId) -> u32 {
        self.servers[id.index()].fail()
    }

    /// Bring a failed server back with `available` free slots.
    pub fn restore_server(&mut self, id: ServerId, available: u32) {
        self.servers[id.index()].restore(available);
    }

    /// Number of servers currently up.
    pub fn online_servers(&self) -> usize {
        self.servers.iter().filter(|s| s.is_online()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cluster() {
        let c = Cluster::uniform(4, 16);
        assert_eq!(c.num_servers(), 4);
        assert_eq!(c.total_free_slots(), 64);
        assert_eq!(c.max_free_slots(), 16);
    }

    #[test]
    fn paper_testbed_full() {
        let c = Cluster::paper_testbed(&SlotDistribution::Uniform { usage: 1.0 });
        assert_eq!(c.num_servers(), 8);
        assert_eq!(c.total_free_slots(), 8 * 96);
    }

    #[test]
    fn zipf_testbed_is_skewed() {
        let c = Cluster::paper_testbed(&SlotDistribution::zipf_09());
        let free = c.free_slots();
        assert_eq!(free[0], 96);
        assert!(free[7] < 30, "tail server should be heavily restricted: {free:?}");
        assert!(c.total_free_slots() < 8 * 96);
    }

    #[test]
    fn from_availability() {
        let c = Cluster::from_availability(&[(96, 50), (96, 96)]);
        assert_eq!(c.server(ServerId(0)).free(), 50);
        assert_eq!(c.server(ServerId(1)).free(), 96);
    }

    #[test]
    fn fail_server_removes_capacity_from_snapshots() {
        let mut c = Cluster::uniform(3, 8);
        assert_eq!(c.online_servers(), 3);
        assert_eq!(c.fail_server(ServerId(1)), 8);
        assert_eq!(c.online_servers(), 2);
        assert_eq!(c.free_slots(), vec![8, 0, 8]);
        assert_eq!(c.total_free_slots(), 16);
        c.restore_server(ServerId(1), 5);
        assert_eq!(c.online_servers(), 3);
        assert_eq!(c.free_slots(), vec![8, 5, 8]);
    }

    #[test]
    fn reserve_through_server_mut() {
        let mut c = Cluster::uniform(2, 8);
        assert!(c.server_mut(ServerId(0)).reserve(8));
        assert_eq!(c.total_free_slots(), 8);
        assert_eq!(c.max_free_slots(), 8);
    }
}
