//! TPC-DS Q94 (simplified): the web-channel sibling of Q16 — orders
//! shipped within a window to California addresses from "pri" web sites
//! and never returned. Same 10-stage skeleton, different tables, volumes
//! and selectivities (web_sales is smaller than catalog_sales but its
//! returns rate is higher), which is why the paper treats Q16 and Q94 as
//! distinct workload points.

use crate::datagen::Database;
use crate::expr::Pred;
use crate::plan::QueryPlan;
use crate::queries::q16::{shipping_plan, shipping_reference, ShippingQueryConfig};
use crate::table::Table;

pub(crate) fn q94_config() -> ShippingQueryConfig {
    ShippingQueryConfig {
        name: "q94",
        fact: "web_sales",
        returns: "web_returns",
        order_col: "ws_order_number",
        date_col: "ws_ship_date_sk",
        addr_col: "ws_ship_addr_sk",
        dim_col: "ws_web_site_sk",
        cost_col: "ws_ext_ship_cost",
        profit_col: "ws_net_profit",
        returns_order_col: "wr_order_number",
        dim_table: "web_site",
        dim_key: "web_site_sk",
        dim_pred: Pred::InStr {
            col: "web_company_name".into(),
            set: vec!["pri-0".into(), "pri-1".into()],
        },
        state: "CA",
        // Year 1999 (day index 365..729 → sk 366..730); widened from
        // TPC-DS's 60 days for the same laptop-scale reason as Q16.
        date_lo: 366,
        date_hi: 730,
    }
}

/// Build the Q94 plan.
pub fn plan() -> QueryPlan {
    shipping_plan(&q94_config())
}

/// Q94 oracle: `(distinct orders, Σ ship cost, Σ profit)`.
pub fn reference(db: &Database) -> (i64, f64, f64) {
    shipping_reference(db, &q94_config())
}

/// Extract `(count, cost, profit)` from the plan output (same layout as
/// Q16).
pub fn result_triple(t: &Table) -> (i64, f64, f64) {
    crate::queries::q16::result_triple(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::ScaleConfig;

    #[test]
    fn plan_matches_oracle() {
        let db = Database::generate(ScaleConfig::with_sf(0.5));
        let (n, cost, profit) = reference(&db);
        assert!(n > 0, "premise: Q94 selects some orders");
        let out = plan().execute_reference(&db);
        let (gn, gc, gp) = result_triple(&out);
        assert_eq!(gn, n);
        assert!((gc - cost).abs() < 1e-6 * cost.abs().max(1.0));
        assert!((gp - profit).abs() < 1e-6 * profit.abs().max(1.0));
    }

    #[test]
    fn differs_from_q16_in_tables_not_shape() {
        let p16 = crate::queries::q16::plan();
        let p94 = plan();
        assert_eq!(p16.dag.num_stages(), p94.dag.num_stages());
        assert_eq!(p16.dag.num_edges(), p94.dag.num_edges());
        assert_ne!(p16.name, p94.name);
    }
}
