//! Fault injection and recovery: the failure-shaped execution layer.
//!
//! Serverless analytics runs on preemptible functions and shared servers;
//! the paper's schedules are only useful if they survive contact with
//! crashes, stragglers and server loss. This module provides one fault
//! vocabulary consumed by *both* engines (the discrete-event simulator and
//! the physical local runtime):
//!
//! * [`FaultPlan`] — a deterministic, seed-driven description of what goes
//!   wrong: explicit [`FaultEvent`]s (task crash at a fraction of its
//!   runtime, straggler slowdown multiplier, whole-server failure at time
//!   *t*) plus optional seeded random rates ([`FaultRates`]) that both
//!   engines expand identically per `(stage, task, attempt)`;
//! * [`RecoveryPolicy`] — how the system responds: bounded retry with
//!   exponential backoff, speculative re-execution of stragglers past a
//!   duration quantile, and failure-aware rescheduling (on server loss,
//!   surviving work is kept, the resource snapshot is shrunk, and
//!   [`ditto_core::joint_optimize`] replans the not-yet-started suffix of
//!   the DAG);
//! * [`AttemptRecord`] / [`FaultStats`] — attempt-level accounting
//!   (wasted GB·s, recovery delay) surfaced through
//!   [`ExecutionTrace`] and [`JobMetrics`].
//!
//! Everything is deterministic: the same plan, policy and seed reproduce
//! the same attempt history bit-for-bit, which is what the fixed-seed
//! fault tests and the fault-sweep benchmark rely on.

use crate::error::ExecError;
use crate::groundtruth::GroundTruth;
use crate::metrics::JobMetrics;
use crate::queue::{ReadyQueue, TieBreak};
use crate::trace::{ExecutionTrace, TaskTrace};
use ditto_cluster::{ResourceManager, ServerId};
use ditto_core::{joint_optimize_traced, JointOptions, Objective, Schedule};
use ditto_dag::{JobDag, StageId, StageKind};
use ditto_obs::{Recorder, StepTimings, Track};
use ditto_storage::{CostModel, Medium};
use ditto_timemodel::JobTimeModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Fault vocabulary
// ---------------------------------------------------------------------

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A specific task attempt crashes after `at_fraction` of its runtime
    /// (its output is lost; the attempt is re-executed under the
    /// [`RecoveryPolicy`]).
    TaskCrash {
        /// Stage of the doomed task.
        stage: StageId,
        /// Task index within the stage.
        task: u32,
        /// Which attempt dies (0 = the first execution).
        attempt: u32,
        /// Fraction of the attempt's runtime at which it dies, in (0, 1).
        at_fraction: f64,
    },
    /// A task runs `slowdown`× slower than its ground-truth time (an
    /// injected straggler, on top of any ground-truth noise).
    Straggler {
        /// Stage of the straggling task.
        stage: StageId,
        /// Task index within the stage.
        task: u32,
        /// Multiplier > 1 applied to the task's read/compute/write steps.
        slowdown: f64,
    },
    /// A whole server dies at `at_time` seconds into the job: attempts
    /// running on it are killed, and work not yet started may be
    /// rescheduled onto the survivors.
    ServerFailure {
        /// The failing server.
        server: ServerId,
        /// Absolute failure time, seconds since job submission.
        at_time: f64,
    },
    /// The externally stored output objects of one producer task vanish
    /// (storage node eviction, TTL expiry). Detected by the first
    /// consumer's read; healed by lineage re-execution of the producer.
    /// No effect on shared-memory edges (nothing external to lose).
    ObjectLoss {
        /// Producing stage.
        stage: StageId,
        /// Producing task index.
        task: u32,
    },
    /// The externally stored output objects of one producer task are
    /// silently corrupted; the consumer's checksum verification catches
    /// the mismatch on read and lineage re-execution heals it.
    ObjectCorruption {
        /// Producing stage.
        stage: StageId,
        /// Producing task index.
        task: u32,
    },
    /// Environmental drift: every task's *compute* step runs `factor`×
    /// slower than the fitted model predicted (CPU contention, thermal
    /// throttling). Deliberately compute-only — uniform drift over all
    /// steps scales α and β together and leaves the Eq. 3/4 DoP ratios
    /// unchanged, so only differential drift makes re-planning matter.
    DriftInflation {
        /// Multiplier ≥ 0 applied to compute-step durations (values are
        /// clamped to a sane floor when consumed).
        factor: f64,
    },
    /// Differential drift: the compute steps of every stage of one
    /// [`StageKind`] run `factor`× slower (a co-tenant pinning the cores
    /// the scan fleet runs on, a UDF regression in the map containers).
    /// This is the drift that *matters* to the planner — it changes the
    /// Eq. 3/4 DoP ratios, so the adaptive engine's per-stage-type
    /// corrections can actually move slots. Stacks multiplicatively with
    /// [`FaultEvent::DriftInflation`].
    KindDrift {
        /// Stage type whose compute drifts.
        kind: StageKind,
        /// Multiplier ≥ 0 applied to matching stages' compute steps.
        factor: f64,
    },
    /// The coordinator itself dies at an arbitrary journal instant: the
    /// append of the `at_record`-th journal record is torn half-way and
    /// the engine fails with [`ExecError::CoordinatorCrash`]. Only
    /// consulted by the journaled entry points
    /// ([`crate::journal::JournalSession::fresh_from_plan`]) — the
    /// unjournaled engines have no coordinator state to lose.
    ///
    /// [`ExecError::CoordinatorCrash`]: crate::error::ExecError::CoordinatorCrash
    CoordinatorCrash {
        /// Journal record index (0-based append count) to crash at.
        at_record: u64,
    },
}

/// What happened to one producer task's stored output, per
/// [`FaultPlan::object_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectFaultKind {
    /// The object is gone (read returns not-found).
    Loss,
    /// The object is present but fails checksum verification.
    Corruption,
}

/// Seeded random fault rates, expanded deterministically per
/// `(stage, task, attempt)` — the "config" form of a [`FaultPlan`]. Both
/// engines draw from identical per-key RNG streams, so a seed names one
/// reproducible fault history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability that any given task attempt crashes (independent per
    /// attempt, clamped to ≤ 0.999 so retries terminate almost surely).
    pub crash_prob: f64,
    /// Probability a task is an injected straggler.
    pub straggler_prob: f64,
    /// Slowdown multiplier applied to injected stragglers.
    pub straggler_slowdown: f64,
    /// Probability a producer task's stored output is lost before its
    /// first consumer reads it.
    pub loss_prob: f64,
    /// Probability a producer task's stored output is corrupted (checked
    /// only when the loss roll missed).
    pub corruption_prob: f64,
    /// Determinism seed.
    pub seed: u64,
}

impl FaultRates {
    /// Rates that inject nothing (useful as a base for struct update).
    pub fn none(seed: u64) -> Self {
        FaultRates {
            crash_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            loss_prob: 0.0,
            corruption_prob: 0.0,
            seed,
        }
    }
}

/// A deterministic description of every fault injected into one run:
/// explicit events plus optional seeded random rates. The plan is pure
/// data — engines *ask* it what happens to `(stage, task, attempt)` and
/// get the same answer every time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Explicit injected events (checked before the random rates).
    pub events: Vec<FaultEvent>,
    /// Optional seeded random fault generation.
    pub rates: Option<FaultRates>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from an explicit event list.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events, rates: None }
    }

    /// A plan from seeded random rates.
    pub fn from_rates(rates: FaultRates) -> Self {
        FaultPlan { events: Vec::new(), rates: Some(rates) }
    }

    /// Seed-driven crash injection only: every task attempt crashes with
    /// probability `crash_prob`.
    pub fn with_random_crashes(crash_prob: f64, seed: u64) -> Self {
        FaultPlan::from_rates(FaultRates {
            crash_prob,
            ..FaultRates::none(seed)
        })
    }

    /// Append a whole-server failure at `at_time` (builder style).
    pub fn and_server_failure(mut self, server: ServerId, at_time: f64) -> Self {
        self.events.push(FaultEvent::ServerFailure { server, at_time });
        self
    }

    /// Append an object loss for one producer task (builder style).
    pub fn and_object_loss(mut self, stage: StageId, task: u32) -> Self {
        self.events.push(FaultEvent::ObjectLoss { stage, task });
        self
    }

    /// Append an object corruption for one producer task (builder style).
    pub fn and_object_corruption(mut self, stage: StageId, task: u32) -> Self {
        self.events.push(FaultEvent::ObjectCorruption { stage, task });
        self
    }

    /// Append a global compute-drift inflation (builder style). Multiple
    /// drift events multiply.
    pub fn with_drift(mut self, factor: f64) -> Self {
        self.events.push(FaultEvent::DriftInflation { factor });
        self
    }

    /// Append a stage-type-scoped compute drift (builder style). Stacks
    /// multiplicatively with global drift and other kind drifts.
    pub fn with_kind_drift(mut self, kind: StageKind, factor: f64) -> Self {
        self.events.push(FaultEvent::KindDrift { kind, factor });
        self
    }

    /// Append a seeded coordinator crash at journal record `at_record`
    /// (builder style). Consumed by the journaled engine entry points.
    pub fn and_coordinator_crash(mut self, at_record: u64) -> Self {
        self.events.push(FaultEvent::CoordinatorCrash { at_record });
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.rates.is_none_or(|r| {
                r.crash_prob <= 0.0
                    && r.straggler_prob <= 0.0
                    && r.loss_prob <= 0.0
                    && r.corruption_prob <= 0.0
            })
    }

    /// The product of every injected [`FaultEvent::DriftInflation`]
    /// factor, floored at 0.01 so a zero cannot collapse the timeline.
    /// 1.0 when no drift is injected.
    pub fn drift_factor(&self) -> f64 {
        let mut f = 1.0;
        for e in &self.events {
            if let FaultEvent::DriftInflation { factor } = e {
                f *= factor.max(0.01);
            }
        }
        f
    }

    /// The effective compute-drift factor for a stage of `kind`: the
    /// global [`Self::drift_factor`] times every matching
    /// [`FaultEvent::KindDrift`] factor (same floor).
    pub fn drift_factor_for(&self, kind: StageKind) -> f64 {
        let mut f = self.drift_factor();
        for e in &self.events {
            if let FaultEvent::KindDrift { kind: k, factor } = e {
                if *k == kind {
                    f *= factor.max(0.01);
                }
            }
        }
        f
    }

    /// What happens to the stored output of producer `(stage, task)`.
    /// Explicit events win (loss over corruption); otherwise the seeded
    /// rates roll once per producer task, independent of execution order.
    pub fn object_fault(&self, stage: StageId, task: u32) -> Option<ObjectFaultKind> {
        let mut hit = None;
        for e in &self.events {
            match e {
                FaultEvent::ObjectLoss { stage: es, task: et } if *es == stage && *et == task => {
                    return Some(ObjectFaultKind::Loss);
                }
                FaultEvent::ObjectCorruption { stage: es, task: et }
                    if *es == stage && *et == task =>
                {
                    hit = Some(ObjectFaultKind::Corruption);
                }
                _ => {}
            }
        }
        if hit.is_some() {
            return hit;
        }
        let r = self.rates?;
        if r.loss_prob <= 0.0 && r.corruption_prob <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(
            r.seed
                .wrapping_mul(0x94d0_49bb_1331_11eb)
                .wrapping_add(((stage.0 as u64) << 24) | task as u64),
        );
        let roll = rng.gen::<f64>();
        let loss = r.loss_prob.clamp(0.0, 1.0);
        let corrupt = r.corruption_prob.clamp(0.0, 1.0);
        if roll < loss {
            Some(ObjectFaultKind::Loss)
        } else if roll < loss + corrupt {
            Some(ObjectFaultKind::Corruption)
        } else {
            None
        }
    }

    /// Does attempt `attempt` of `(stage, task)` crash — and if so, after
    /// what fraction of its runtime? Explicit events win over random
    /// rates. The random stream keys on `(seed, stage, task, attempt)`,
    /// so the decision is independent of execution order.
    pub fn crash_point(&self, stage: StageId, task: u32, attempt: u32) -> Option<f64> {
        for e in &self.events {
            if let FaultEvent::TaskCrash {
                stage: es,
                task: et,
                attempt: ea,
                at_fraction,
            } = e
            {
                if *es == stage && *et == task && *ea == attempt {
                    return Some(at_fraction.clamp(1e-3, 0.999));
                }
            }
        }
        let r = self.rates?;
        if r.crash_prob <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(
            r.seed
                .wrapping_mul(0xa076_1d64_78bd_642f)
                .wrapping_add(((stage.0 as u64) << 40) | ((task as u64) << 16) | attempt as u64),
        );
        if rng.gen_bool(r.crash_prob.clamp(0.0, 0.999)) {
            Some(0.1 + 0.8 * rng.gen::<f64>())
        } else {
            None
        }
    }

    /// The injected slowdown multiplier of `(stage, task)` (1.0 = none).
    /// Explicit straggler events multiply; the random rate adds its
    /// multiplier on top when its per-task roll hits.
    pub fn slowdown(&self, stage: StageId, task: u32) -> f64 {
        let mut m = 1.0;
        for e in &self.events {
            if let FaultEvent::Straggler {
                stage: es,
                task: et,
                slowdown,
            } = e
            {
                if *es == stage && *et == task {
                    m *= slowdown.max(1.0);
                }
            }
        }
        if let Some(r) = self.rates {
            if r.straggler_prob > 0.0 {
                let mut rng = StdRng::seed_from_u64(
                    r.seed
                        .wrapping_mul(0x517c_c1b7_2722_0a95)
                        .wrapping_add(((stage.0 as u64) << 24) | task as u64),
                );
                if rng.gen_bool(r.straggler_prob.clamp(0.0, 1.0)) {
                    m *= r.straggler_slowdown.max(1.0);
                }
            }
        }
        m
    }

    /// The earliest seeded coordinator crash point, if any (only the
    /// first is armed; a crash can only happen once per incarnation).
    pub fn coordinator_crash(&self) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CoordinatorCrash { at_record } => Some(*at_record),
                _ => None,
            })
            .min()
    }

    /// The first (earliest) whole-server failure, if any. Only one server
    /// failure is applied per run; later ones are ignored.
    pub fn first_server_failure(&self) -> Option<(ServerId, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::ServerFailure { server, at_time } => Some((*server, *at_time)),
                _ => None,
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

// ---------------------------------------------------------------------
// Recovery policy
// ---------------------------------------------------------------------

/// How the system reacts to injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum re-executions per task before the run fails with
    /// [`ExecError::RetriesExhausted`].
    pub max_retries: u32,
    /// Base backoff before re-executing a crashed attempt, seconds; the
    /// wait doubles per attempt (exponential backoff).
    pub backoff_base: f64,
    /// Enable speculative re-execution of stragglers.
    pub speculation: bool,
    /// A task is a speculation candidate once its duration exceeds this
    /// quantile of its stage's task durations…
    pub speculation_quantile: f64,
    /// …multiplied by this factor (> 1 avoids speculating the median).
    pub speculation_factor: f64,
    /// On whole-server failure, shrink the resource snapshot and re-run
    /// the joint optimizer for the not-yet-started suffix of the DAG
    /// (requires a [`ReschedulingContext`]).
    pub reschedule_on_server_failure: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 4,
            backoff_base: 0.05,
            speculation: true,
            speculation_quantile: 0.75,
            speculation_factor: 1.5,
            reschedule_on_server_failure: true,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery at all: unlimited plain retries, no backoff, no
    /// speculation, no rescheduling. This is what the fault-free engines
    /// run under — it reproduces pre-fault behavior exactly.
    pub fn none() -> Self {
        RecoveryPolicy {
            max_retries: u32::MAX,
            backoff_base: 0.0,
            speculation: false,
            speculation_quantile: 1.0,
            speculation_factor: 1.0,
            reschedule_on_server_failure: false,
        }
    }

    /// Retry-only variant of the default policy (no speculation).
    pub fn retry_only() -> Self {
        RecoveryPolicy {
            speculation: false,
            ..Default::default()
        }
    }

    /// Backoff before re-execution number `retry` (0-based), seconds.
    pub fn backoff(&self, retry: u32) -> f64 {
        self.backoff_base * f64::powi(2.0, retry.min(20) as i32)
    }
}

// ---------------------------------------------------------------------
// Attempt-level accounting
// ---------------------------------------------------------------------

/// What happened to one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum AttemptOutcome {
    /// The attempt finished and its output was used.
    Completed,
    /// The attempt crashed (injected task crash) before publishing.
    Crashed,
    /// The attempt died with its server.
    ServerLost,
    /// The attempt was killed because a sibling copy finished first
    /// (speculation: either the slow original or the losing copy).
    Superseded,
}

/// One task attempt: recorded for every execution that experienced a
/// fault, plus the final successful attempt of any task that needed more
/// than one. Fault-free tasks produce no records.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct AttemptRecord {
    /// Stage index.
    pub stage: u32,
    /// Task index within the stage.
    pub task: u32,
    /// Attempt number (0 = first execution; speculation copies continue
    /// the sequence).
    pub attempt: u32,
    /// Server the attempt ran on.
    pub server: ServerId,
    /// Attempt start, seconds since job submission.
    pub start: f64,
    /// When it finished or died, seconds since job submission.
    pub end: f64,
    /// Outcome.
    pub outcome: AttemptOutcome,
    /// Billed-but-discarded work: memory × runtime for non-completed
    /// attempts, GB·s.
    pub wasted_gb_s: f64,
    /// Whether this execution was a speculative backup copy. Speculative
    /// copies run *in addition to* the original without reserving a slot
    /// (the engine's documented simplification), so the race checker
    /// grades their concurrent occupancy as a warning, not an error.
    pub speculative: bool,
}

/// Aggregated fault statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct FaultStats {
    /// Attempts beyond one per task (crashed + killed + superseded).
    pub extra_attempts: u32,
    /// Total wasted work across failed attempts, GB·s.
    pub wasted_gb_s: f64,
    /// Machine-time overhead of recovery: runtime consumed by failed
    /// attempts plus all backoff waits, seconds (an upper bound on the
    /// serial JCT delay).
    pub recovery_delay_s: f64,
    /// Whole-server failures applied.
    pub server_failures: u32,
    /// Stages replanned by failure-aware rescheduling.
    pub rescheduled_stages: u32,
    /// Speculative copies launched.
    pub speculative_copies: u32,
    /// Intermediate objects lost before their first read.
    pub object_losses: u32,
    /// Intermediate objects that failed checksum verification on read.
    pub object_corruptions: u32,
    /// Producer tasks re-executed through the lineage index to regenerate
    /// lost or corrupt objects.
    pub lineage_reexecs: u32,
    /// Storage-read retry attempts beyond the first, across the data
    /// plane's bounded-retry loop (physical runtime only).
    pub storage_retries: u64,
}

impl FaultStats {
    /// Fold another run's stats into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.extra_attempts += other.extra_attempts;
        self.wasted_gb_s += other.wasted_gb_s;
        self.recovery_delay_s += other.recovery_delay_s;
        self.server_failures += other.server_failures;
        self.rescheduled_stages += other.rescheduled_stages;
        self.speculative_copies += other.speculative_copies;
        self.object_losses += other.object_losses;
        self.object_corruptions += other.object_corruptions;
        self.lineage_reexecs += other.lineage_reexecs;
        self.storage_retries += other.storage_retries;
    }
}

// ---------------------------------------------------------------------
// Failure-aware rescheduling context
// ---------------------------------------------------------------------

/// What the simulator needs to replan after a server failure: the fitted
/// time model and the pre-failure resource snapshot the original schedule
/// was computed against.
#[derive(Debug, Clone)]
pub struct ReschedulingContext<'a> {
    /// The job's fitted execution-time model.
    pub model: &'a JobTimeModel,
    /// Resource snapshot *before* the failure (the failed server is
    /// removed internally).
    pub resources: &'a ResourceManager,
    /// Objective to re-optimize for.
    pub objective: Objective,
    /// Joint-optimizer options.
    pub options: JointOptions,
}

// ---------------------------------------------------------------------
// Fault-aware simulation
// ---------------------------------------------------------------------

/// Simulate `schedule` on `dag` under an injected [`FaultPlan`] and a
/// [`RecoveryPolicy`]. With an empty plan and [`RecoveryPolicy::none`]
/// this reproduces [`crate::sim::simulate`] exactly.
///
/// On a whole-server failure, attempts running on the failed server are
/// killed and re-executed on a survivor; if
/// [`RecoveryPolicy::reschedule_on_server_failure`] is set and a
/// [`ReschedulingContext`] is supplied, stages that had not launched at
/// the failure instant are replanned by [`ditto_core::joint_optimize`]
/// against the shrunk resource snapshot (surviving work keeps its
/// original schedule).
pub fn try_simulate_with_faults(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    resched: Option<&ReschedulingContext<'_>>,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    try_simulate_with_faults_traced(dag, schedule, gt, plan, policy, resched, &Recorder::disabled())
}

/// [`try_simulate_with_faults`] with telemetry: task/stage/attempt spans,
/// fault events, per-medium byte counters and task-duration histograms
/// land on `obs` (sim-clock timestamps). The replanning path routes the
/// re-optimization through [`joint_optimize_traced`], so rescheduling
/// decisions appear on the scheduler track of the same trace. A disabled
/// recorder makes this identical to [`try_simulate_with_faults`].
pub fn try_simulate_with_faults_traced(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    resched: Option<&ReschedulingContext<'_>>,
    obs: &Recorder,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    schedule
        .validate(dag)
        .map_err(ExecError::InvalidSchedule)?;
    // When a replan may discard the first pass, record telemetry only for
    // the pass whose trace is actually returned.
    let replan_possible = plan.first_server_failure().is_some()
        && resched.is_some()
        && policy.reschedule_on_server_failure;
    let muted = Recorder::disabled();
    let pass1_obs = if replan_possible { &muted } else { obs };
    let pass1 = sim_pass(dag, schedule, gt, plan, policy, pass1_obs)?;
    let Some((failed, at_time)) = plan.first_server_failure() else {
        return Ok((pass1.trace, pass1.metrics));
    };
    let (Some(ctx), true) = (resched, policy.reschedule_on_server_failure) else {
        return Ok((pass1.trace, pass1.metrics));
    };
    // The not-yet-started suffix: stages whose containers had not launched
    // when the server died (per the pre-replan timeline).
    let suffix: Vec<bool> = pass1.stage_launch.iter().map(|&l| l >= at_time).collect();
    let n_suffix = suffix.iter().filter(|&&b| b).count() as u32;
    if n_suffix == 0 {
        // Pass 1 ran muted but is the final result: re-run it recorded.
        // The simulation is deterministic, so the timeline is identical.
        if obs.is_enabled() {
            let pass = sim_pass(dag, schedule, gt, plan, policy, obs)?;
            return Ok((pass.trace, pass.metrics));
        }
        return Ok((pass1.trace, pass1.metrics));
    }
    let mut rm = ctx.resources.clone();
    rm.fail_server(failed.index());
    let needed = dag.num_stages() as u32;
    if rm.total_free() < needed {
        return Err(ExecError::InsufficientCapacity {
            needed,
            available: rm.total_free(),
        });
    }
    let replanned = joint_optimize_traced(dag, ctx.model, &rm, ctx.objective, &ctx.options, obs);
    if obs.is_enabled() {
        obs.event(
            "sched.failover",
            Track::scheduler(0),
            obs.wall_now(),
            vec![
                ("failed_server", (failed.index() as u64).into()),
                ("at_time", at_time.into()),
                ("suffix_stages", (n_suffix as u64).into()),
                // Decision 0 is the schedule commit; the (single) failover
                // reschedule is decision 1 — the same sequence the journal
                // records, so trace diffing can align crashed vs recovered
                // runs.
                ("decision_seq", 1u64.into()),
            ],
        );
    }
    let hybrid = schedule.splice(dag, &replanned, &suffix);
    // Feasibility certificate on the spliced schedule (debug builds): the
    // replan optimized against the shrunk snapshot, but the splice mixes
    // in prefix placements the optimizer never saw — re-count the suffix
    // against the surviving slots before trusting it.
    #[cfg(debug_assertions)]
    {
        let report = ditto_audit::audit_splice(dag, &rm, &hybrid, &suffix);
        if !report.is_clean() {
            return Err(ExecError::InvalidSchedule(report.render()));
        }
    }
    let mut pass2 = sim_pass(dag, &hybrid, gt, plan, policy, obs)?;
    pass2.metrics.faults.rescheduled_stages = n_suffix;
    Ok((pass2.trace, pass2.metrics))
}

pub(crate) struct SimPass {
    pub(crate) trace: ExecutionTrace,
    pub(crate) metrics: JobMetrics,
    /// Per-stage container launch time (JIT launch of the first attempts).
    pub(crate) stage_launch: Vec<f64>,
}

/// Mutable state threaded through a simulation: per-stage timeline
/// gates, accounting, and the recovery bookkeeping shared by the frozen
/// ([`sim_pass`]) and adaptive (`crate::adaptive`) engines. Both engines
/// drive the *same* [`sim_stage`] — that is what makes the adaptive
/// engine bit-identical to the frozen one when it never replans.
pub(crate) struct SimState {
    pub(crate) failure: Option<(ServerId, f64)>,
    pub(crate) restart_server: Option<ServerId>,
    pub(crate) stage_end: Vec<f64>,
    pub(crate) stage_write_start: Vec<f64>,
    pub(crate) stage_read_end: Vec<f64>,
    pub(crate) stage_launch: Vec<f64>,
    /// Mean observed per-step durations per stage (drift-detector food):
    /// the as-executed setup/read/compute/write including injected
    /// slowdowns, drift and lineage-recovery waits.
    pub(crate) stage_observed: Vec<StepTimings>,
    /// Mean *expected* per-step durations per stage — the clean timings
    /// under the schedule that ran it, with no drift, slowdown or
    /// recovery. The predicted side of the drift detector's ratio (a
    /// physical deployment would use the fitted model's prediction here;
    /// the simulator's expectation is the clean ground truth).
    pub(crate) stage_clean: Vec<StepTimings>,
    /// Clean single-attempt duration per (stage, task) under the schedule
    /// that ran it — the cost of a lineage re-execution of that task.
    pub(crate) task_clean_time: Vec<Vec<f64>>,
    /// Exchange medium per edge, recorded when the consumer stage runs
    /// (the schedule may change mid-run under the adaptive engine).
    pub(crate) edge_medium: Vec<Option<Medium>>,
    /// Lineage healing in flight: `(stage, task)` of a faulted producer →
    /// the sim time its regenerated object becomes available. The first
    /// reader (earliest ready; queue order guarantees it) pays the
    /// re-execution and sets the entry; any reader arriving before
    /// `heal_end` waits for the remainder instead of reading the stale
    /// object.
    pub(crate) heal_end: std::collections::BTreeMap<(u32, u32), f64>,
    pub(crate) trace: ExecutionTrace,
    /// Run-level accounting not attributable to one stage (server
    /// failures, replan counts, physical storage retries).
    pub(crate) stats: FaultStats,
    /// Per-stage fault accounting, folded in stage-id order by
    /// [`Self::total_stats`] so the totals are independent of the order
    /// simultaneous stages were simulated in (f64 addition is not
    /// associative; a fixed fold order makes the sums bit-stable).
    /// Lineage-healing charges land in the *producer* stage's bucket.
    pub(crate) stage_stats: Vec<FaultStats>,
    /// Every lineage re-execution paid this run, in detection order —
    /// recorded unconditionally (not just when tracing) so journal
    /// checkpoints carry what a restored stage must re-emit.
    pub(crate) lineage_log: Vec<crate::journal::LineageHit>,
}

impl SimState {
    pub(crate) fn new(dag: &JobDag, plan: &FaultPlan, schedule: &Schedule) -> Self {
        let n = dag.num_stages();
        let failure = plan.first_server_failure();
        SimState {
            failure,
            restart_server: failure.map(|(failed, _)| pick_survivor(schedule, failed)),
            stage_end: vec![0.0; n],
            stage_write_start: vec![0.0; n],
            stage_read_end: vec![0.0; n],
            stage_launch: vec![0.0; n],
            stage_observed: vec![StepTimings::zero(); n],
            stage_clean: vec![StepTimings::zero(); n],
            task_clean_time: vec![Vec::new(); n],
            edge_medium: vec![None; dag.num_edges()],
            heal_end: Default::default(),
            trace: ExecutionTrace::default(),
            stats: FaultStats {
                server_failures: if failure.is_some() { 1 } else { 0 },
                ..Default::default()
            },
            stage_stats: vec![FaultStats::default(); n],
            lineage_log: Vec::new(),
        }
    }

    /// Fold the run-level stats and every per-stage bucket (stage-id
    /// order) into one total. Bit-stable across simulation orders.
    pub(crate) fn total_stats(&self) -> FaultStats {
        let mut total = self.stats;
        for bucket in &self.stage_stats {
            total.absorb(bucket);
        }
        total
    }

    /// Emit the run-level telemetry header (track names, server-failure
    /// announcement). Call once before the first [`sim_stage`].
    pub(crate) fn announce(&self, obs: &Recorder) {
        if obs.is_enabled() {
            obs.name_track(Track::JOB_GROUP, "job");
            obs.name_track(Track::STORAGE_GROUP, "storage");
            if let Some((failed, at)) = self.failure {
                obs.event(
                    "fault.server_failed",
                    Track::job(0),
                    at,
                    vec![("server", (failed.index() as u64).into())],
                );
            }
        }
    }
}

/// Final timeline of one task after its attempt history.
struct TaskOutcome {
    server: ServerId,
    first_launch: f64,
    launch: f64,
    read_start: f64,
    compute_start: f64,
    write_start: f64,
    end: f64,
    attempts: u32,
    /// Attempt index of the execution that produced the surviving output.
    final_attempt: u32,
    /// Whether the surviving output came from a speculative copy.
    final_is_spec: bool,
    records: Vec<AttemptRecord>,
}

/// The pre-recovery ready time of stage `s`: the max over in-edges of the
/// producer's write start (pipelined) or end (blocking). Must stay
/// bit-identical to the gate [`sim_stage`] computes — it is the ready
/// queue's ordering key, and both fold the same edges in the same order.
pub(crate) fn ready_time(state: &SimState, dag: &JobDag, s: StageId) -> f64 {
    let mut ready = 0.0_f64;
    for e in dag.in_edges(s) {
        if e.pipelined {
            ready = ready.max(state.stage_write_start[e.src.index()]);
        } else {
            ready = ready.max(state.stage_end[e.src.index()]);
        }
    }
    ready
}

/// One full simulation sweep under a fixed schedule (no replanning),
/// canonical (lowest-stage-id) tie-breaking.
fn sim_pass(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    obs: &Recorder,
) -> Result<SimPass, ExecError> {
    sim_pass_with(dag, schedule, gt, plan, policy, obs, &mut TieBreak::canonical())
}

/// [`sim_pass`] under an explicit tie-break controller: stages execute in
/// (ready time, controller choice) order through a [`ReadyQueue`]. The
/// model checker (`crate::explore`) drives this with scripted and random
/// controllers to prove the result is tie-break-invariant.
pub(crate) fn sim_pass_with(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    obs: &Recorder,
    tie: &mut TieBreak,
) -> Result<SimPass, ExecError> {
    let mut state = SimState::new(dag, plan, schedule);
    state.announce(obs);
    let mut queue = ReadyQueue::new(dag);
    let mut popped = 0usize;
    while let Some((_, s)) = queue.pop(tie) {
        popped += 1;
        sim_stage(&mut state, dag, schedule, gt, plan, policy, obs, s)?;
        queue.complete(dag, s, |c| ready_time(&state, dag, c));
    }
    if popped != dag.num_stages() {
        return Err(ExecError::CyclicDag);
    }
    Ok(finish_pass(state, dag, schedule, gt, obs))
}

/// Simulate one stage under the current schedule, updating `state`.
///
/// This is the shared per-stage engine: the frozen path ([`sim_pass`])
/// calls it over a fixed schedule; the adaptive engine interleaves drift
/// detection and suffix replanning between calls, passing whichever
/// schedule is current. It applies injected slowdowns, global compute
/// drift ([`FaultPlan::drift_factor`]), crash/retry/speculation recovery,
/// and lineage re-execution of upstream tasks whose stored outputs were
/// lost or corrupted.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sim_stage(
    state: &mut SimState,
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    obs: &Recorder,
    s: StageId,
) -> Result<(), ExecError> {
    let failure = state.failure;
    let restart_server = state.restart_server;
    let drift = plan.drift_factor_for(dag.stages()[s.index()].kind);
    {
        // Non-pipelined edges gate on the producer's write completion;
        // pipelined edges (§4.5) let the consumer start streaming at the
        // producer's write *start*, but it cannot finish reading before
        // the producer finishes emitting.
        let mut ready = 0.0_f64;
        let mut read_gate = 0.0_f64;
        for e in dag.in_edges(s) {
            if e.pipelined {
                ready = ready.max(state.stage_write_start[e.src.index()]);
                read_gate = read_gate.max(state.stage_end[e.src.index()]);
            } else {
                ready = ready.max(state.stage_end[e.src.index()]);
            }
        }
        // Lineage recovery: lost or corrupt upstream objects are detected
        // by their first reader and healed by re-executing the producing
        // task. The first reader (earliest ready time; the ready queue
        // pops it first) pays the full re-execution and publishes
        // `heal_end`; any other reader arriving before that instant waits
        // for the remainder — reading earlier would consume the stale
        // object the checksum already rejected. Recoveries of independent
        // objects overlap, so the stage waits for the slowest one.
        let mut recovery = 0.0_f64;
        for e in dag.in_edges(s) {
            let medium = gt.edge_medium(schedule, e.id.index());
            state.edge_medium[e.id.index()] = Some(medium);
            if medium == Medium::SharedMemory {
                continue; // nothing externally stored to lose
            }
            let src = e.src;
            let producers = state.task_clean_time[src.index()].len();
            for tp in 0..producers as u32 {
                let Some(kind) = plan.object_fault(src, tp) else {
                    continue;
                };
                if let Some(&healed_at) = state.heal_end.get(&(src.0, tp)) {
                    // Healing already in flight (or done): wait for the
                    // regenerated object, pay nothing.
                    if ready < healed_at {
                        recovery = recovery.max(healed_at - ready);
                    }
                    continue;
                }
                let reexec = state.task_clean_time[src.index()][tp as usize];
                state.heal_end.insert((src.0, tp), ready + reexec);
                let d_src = producers as u32;
                let wasted = gt.task_memory_gb(dag, src, d_src) * reexec;
                // Charges go to the *producer* stage's bucket: the healed
                // task belongs to `src`, and producer-keyed attribution
                // keeps the totals independent of which reader got there
                // first.
                let bucket = &mut state.stage_stats[src.index()];
                match kind {
                    ObjectFaultKind::Loss => bucket.object_losses += 1,
                    ObjectFaultKind::Corruption => bucket.object_corruptions += 1,
                }
                bucket.lineage_reexecs += 1;
                bucket.extra_attempts += 1;
                bucket.wasted_gb_s += wasted;
                bucket.recovery_delay_s += reexec;
                recovery = recovery.max(reexec);
                state.lineage_log.push(crate::journal::LineageHit {
                    reader_stage: s.0,
                    src_stage: src.0,
                    src_task: tp,
                    corrupt: kind == ObjectFaultKind::Corruption,
                    detect_at: ready,
                    reexec_s: reexec,
                });
                if obs.is_enabled() {
                    let name = match kind {
                        ObjectFaultKind::Loss => "fault.object_lost",
                        ObjectFaultKind::Corruption => "fault.object_corrupt",
                    };
                    obs.event(
                        name,
                        Track::storage(),
                        ready,
                        vec![
                            ("stage", src.0.into()),
                            ("task", tp.into()),
                            ("reader_stage", s.0.into()),
                        ],
                    );
                    obs.event(
                        "recovery.lineage_reexec",
                        Track::storage(),
                        ready + reexec,
                        vec![
                            ("stage", src.0.into()),
                            ("task", tp.into()),
                            ("reexec_s", reexec.into()),
                        ],
                    );
                }
            }
        }
        ready += recovery;
        if read_gate > 0.0 {
            read_gate += recovery;
        }
        let steps = gt.stage_tasks(dag, schedule, s);
        let d = schedule.dop[s.index()];
        let mem = gt.task_memory_gb(dag, s, d);
        let placement = &schedule.placement[s.index()];

        let mut outcomes: Vec<TaskOutcome> = Vec::with_capacity(steps.len());
        for (t, st) in steps.iter().enumerate() {
            let t = t as u32;
            let slow = plan.slowdown(s, t);
            let (read, compute, write) =
                (st.read * slow, st.compute * slow * drift, st.write * slow);
            state.task_clean_time[s.index()].push(st.setup + read + compute + write);
            let mut server = placement.server_of_task(t);
            let mut records = Vec::new();
            let mut attempt = 0u32;
            // JIT launch: setup overlaps the wait for inputs.
            let first_launch = (ready - st.setup).max(0.0);
            let mut launch = first_launch;
            let outcome = loop {
                // An attempt launching after its server already died is
                // placed on a survivor by the platform.
                if let (Some((failed, at)), Some(alt)) = (failure, restart_server) {
                    if server == failed && launch >= at {
                        server = alt;
                    }
                }
                let read_start = (launch + st.setup).max(ready);
                let compute_start = (read_start + read).max(read_gate);
                let write_start = compute_start + compute;
                let end = write_start + write;

                let crash = plan
                    .crash_point(s, t, attempt)
                    .map(|f| (launch + f * (end - launch), AttemptOutcome::Crashed));
                let killed = match failure {
                    Some((failed, at)) if server == failed && launch <= at && at < end => {
                        Some((at, AttemptOutcome::ServerLost))
                    }
                    _ => None,
                };
                let death = match (crash, killed) {
                    (Some(c), Some(k)) => Some(if c.0 <= k.0 { c } else { k }),
                    (c, k) => c.or(k),
                };
                match death {
                    None => {
                        break TaskOutcome {
                            server,
                            first_launch,
                            launch,
                            read_start,
                            compute_start,
                            write_start,
                            end,
                            attempts: attempt + 1,
                            final_attempt: attempt,
                            final_is_spec: false,
                            records,
                        }
                    }
                    Some((when, why)) => {
                        let wasted = mem * (when - launch).max(0.0);
                        records.push(AttemptRecord {
                            stage: s.0,
                            task: t,
                            attempt,
                            server,
                            start: launch,
                            end: when,
                            outcome: why,
                            wasted_gb_s: wasted,
                            speculative: false,
                        });
                        let bucket = &mut state.stage_stats[s.index()];
                        bucket.extra_attempts += 1;
                        bucket.wasted_gb_s += wasted;
                        bucket.recovery_delay_s += (when - launch).max(0.0);
                        if why == AttemptOutcome::ServerLost {
                            if let Some(alt) = restart_server {
                                server = alt;
                            }
                        }
                        if attempt >= policy.max_retries {
                            return Err(ExecError::RetriesExhausted {
                                stage: s.0,
                                task: t,
                                attempts: attempt + 1,
                            });
                        }
                        let wait = policy.backoff(attempt);
                        bucket.recovery_delay_s += wait;
                        attempt += 1;
                        launch = when + wait;
                    }
                }
            };
            outcomes.push(outcome);
        }

        // Speculative re-execution: tasks running past a quantile of the
        // stage's durations get a clean copy (no injected slowdown) at
        // the threshold; whichever finishes first wins, the loser is
        // killed and its work accounted as wasted.
        if policy.speculation && outcomes.len() >= 2 {
            let mut durs: Vec<f64> = outcomes
                .iter()
                .map(|o| o.end - o.first_launch)
                .collect();
            durs.sort_by(f64::total_cmp);
            let idx = (((durs.len() - 1) as f64) * policy.speculation_quantile.clamp(0.0, 1.0))
                .round() as usize;
            let threshold = durs[idx] * policy.speculation_factor.max(1.0);
            for (t, o) in outcomes.iter_mut().enumerate() {
                let dur = o.end - o.first_launch;
                if dur <= threshold + 1e-12 || threshold <= 0.0 {
                    continue;
                }
                let st = &steps[t];
                let spec_launch = o.first_launch + threshold;
                let rs = (spec_launch + st.setup).max(ready);
                let cs = (rs + st.read).max(read_gate);
                // A clean copy escapes the per-task slowdown but not the
                // environmental compute drift.
                let ws = cs + st.compute * drift;
                let se = ws + st.write;
                let bucket = &mut state.stage_stats[s.index()];
                bucket.speculative_copies += 1;
                let spec_attempt = o.attempts; // next index in the sequence
                if se < o.end {
                    // The copy wins; the original is killed at the copy's
                    // finish (or cancelled outright if it had not launched
                    // yet) and whatever it ran is wasted.
                    let killed_at = se.max(o.launch);
                    let wasted = mem * (killed_at - o.launch);
                    o.records.push(AttemptRecord {
                        stage: s.0,
                        task: t as u32,
                        attempt: o.attempts - 1,
                        server: o.server,
                        start: o.launch,
                        end: killed_at,
                        outcome: AttemptOutcome::Superseded,
                        wasted_gb_s: wasted,
                        speculative: false,
                    });
                    bucket.extra_attempts += 1;
                    bucket.wasted_gb_s += wasted;
                    bucket.recovery_delay_s += killed_at - o.launch;
                    o.launch = spec_launch;
                    o.read_start = rs;
                    o.compute_start = cs;
                    o.write_start = ws;
                    o.end = se;
                    o.attempts += 1;
                    o.final_attempt = spec_attempt;
                    o.final_is_spec = true;
                } else {
                    // The copy loses and is killed when the original ends.
                    let wasted = mem * (o.end - spec_launch).max(0.0);
                    o.records.push(AttemptRecord {
                        stage: s.0,
                        task: t as u32,
                        attempt: spec_attempt,
                        server: o.server,
                        start: spec_launch,
                        end: o.end,
                        outcome: AttemptOutcome::Superseded,
                        wasted_gb_s: wasted,
                        speculative: true,
                    });
                    bucket.extra_attempts += 1;
                    bucket.wasted_gb_s += wasted;
                    bucket.recovery_delay_s += (o.end - spec_launch).max(0.0);
                    o.attempts += 1;
                }
            }
        }

        let mut end = ready;
        let mut wstart = f64::MAX;
        let mut rend: f64 = 0.0;
        state.stage_launch[s.index()] = outcomes
            .iter()
            .map(|o| o.first_launch)
            .fold(f64::MAX, f64::min)
            .min(ready);
        // Mean as-executed step durations, for the drift detector. The
        // lineage-recovery wait lands on the read step: that is where the
        // first reader stalls, and what makes sustained object loss look
        // like storage drift to the monitor.
        let mut obs_sum = StepTimings::zero();
        let mut clean_sum = StepTimings::zero();
        for (t, st) in steps.iter().enumerate() {
            let slow = plan.slowdown(s, t as u32);
            obs_sum.accumulate(&StepTimings::new(
                st.setup,
                st.read * slow,
                st.compute * slow * drift,
                st.write * slow,
            ));
            clean_sum.accumulate(&StepTimings::new(st.setup, st.read, st.compute, st.write));
        }
        let inv = 1.0 / (steps.len().max(1)) as f64;
        let mut observed = obs_sum.scaled(inv);
        observed.read += recovery;
        state.stage_observed[s.index()] = observed;
        state.stage_clean[s.index()] = clean_sum.scaled(inv);
        // Per-task shuffle volume estimates for telemetry consumers.
        let d_f = (d as f64).max(1.0);
        let task_read_bytes: f64 =
            dag.in_edges(s).map(|e| e.bytes as f64).sum::<f64>() / d_f;
        let task_write_bytes: f64 =
            dag.out_edges(s).map(|e| e.bytes as f64).sum::<f64>() / d_f;
        for (t, mut o) in outcomes.into_iter().enumerate() {
            end = end.max(o.end);
            wstart = wstart.min(o.write_start);
            rend = rend.max(o.compute_start);
            if !o.records.is_empty() {
                // Close the sequence with the winning attempt.
                o.records.push(AttemptRecord {
                    stage: s.0,
                    task: t as u32,
                    attempt: o.final_attempt,
                    server: o.server,
                    start: o.launch,
                    end: o.end,
                    outcome: AttemptOutcome::Completed,
                    wasted_gb_s: 0.0,
                    speculative: o.final_is_spec,
                });
            }
            if obs.is_enabled() {
                let srv = o.server.index() as u32;
                obs.name_track(Track::SERVER_BASE + srv, &format!("server {srv}"));
                let lane = s.0 * 10_000 + t as u32;
                obs.span(
                    "task",
                    Track::server(srv, lane),
                    o.launch,
                    o.end,
                    vec![
                        ("stage", s.0.into()),
                        ("task", (t as u32).into()),
                        ("attempts", o.attempts.into()),
                        ("read_start", o.read_start.into()),
                        ("compute_start", o.compute_start.into()),
                        ("write_start", o.write_start.into()),
                        ("memory_gb", mem.into()),
                        ("bytes_read", task_read_bytes.into()),
                        ("bytes_written", task_write_bytes.into()),
                    ],
                );
                obs.observe("task.duration", "all", o.end - o.launch);
                for r in &o.records {
                    let (name, fault) = match r.outcome {
                        AttemptOutcome::Crashed => ("fault.crashed", true),
                        AttemptOutcome::ServerLost => ("fault.server_lost", true),
                        AttemptOutcome::Superseded => ("fault.superseded", true),
                        AttemptOutcome::Completed => ("", false),
                    };
                    obs.span(
                        "attempt",
                        Track::server(r.server.index() as u32, lane),
                        r.start,
                        r.end,
                        vec![
                            ("stage", r.stage.into()),
                            ("task", r.task.into()),
                            ("attempt", r.attempt.into()),
                            ("outcome", outcome_label(r.outcome).into()),
                            ("wasted_gb_s", r.wasted_gb_s.into()),
                        ],
                    );
                    if fault {
                        obs.event(
                            name,
                            Track::server(r.server.index() as u32, lane),
                            r.end,
                            vec![
                                ("stage", r.stage.into()),
                                ("task", r.task.into()),
                                ("attempt", r.attempt.into()),
                            ],
                        );
                    }
                }
                // Happens-before edges for the race checker: the surviving
                // output's commit instant, one read event per in-edge, and
                // slot-occupancy intervals per attempt.
                obs.event(
                    "hb.write",
                    Track::server(srv, lane),
                    o.end,
                    vec![
                        ("stage", s.0.into()),
                        ("task", (t as u32).into()),
                        ("server", srv.into()),
                        ("write_start", o.write_start.into()),
                    ],
                );
                for e in dag.in_edges(s) {
                    let medium = state.edge_medium[e.id.index()]
                        .unwrap_or_else(|| gt.edge_medium(schedule, e.id.index()));
                    obs.event(
                        "hb.read",
                        Track::server(srv, lane),
                        o.read_start,
                        vec![
                            ("stage", s.0.into()),
                            ("task", (t as u32).into()),
                            ("server", srv.into()),
                            ("edge", (e.id.index() as u64).into()),
                            ("src_stage", e.src.0.into()),
                            ("pipelined", (e.pipelined as u64).into()),
                            ("medium", medium_label(medium).into()),
                            ("compute_start", o.compute_start.into()),
                        ],
                    );
                }
                if o.records.is_empty() {
                    slot_pair(obs, srv, lane, s.0, t as u32, o.launch, o.end, false);
                } else {
                    for r in &o.records {
                        slot_pair(
                            obs,
                            r.server.index() as u32,
                            lane,
                            r.stage,
                            r.task,
                            r.start,
                            r.end,
                            r.speculative,
                        );
                    }
                }
            }
            state.trace.tasks.push(TaskTrace {
                stage: s.0,
                task: t as u32,
                server: o.server,
                launch: o.launch,
                read_start: o.read_start,
                compute_start: o.compute_start,
                write_start: o.write_start,
                end: o.end,
                memory_gb: mem,
            });
            if !o.records.is_empty() {
                state.trace.attempts.append(&mut o.records);
            }
        }
        state.stage_end[s.index()] = end;
        if obs.is_enabled() {
            // Most-external in-edge medium: where this stage's reads
            // actually came from (diff buckets carry it as the medium).
            let read_medium = dag
                .in_edges(s)
                .map(|e| {
                    state.edge_medium[e.id.index()]
                        .unwrap_or_else(|| gt.edge_medium(schedule, e.id.index()))
                })
                .max_by_key(|m| match m {
                    Medium::SharedMemory => 0,
                    Medium::Redis => 1,
                    Medium::S3 => 2,
                })
                .map_or("none", medium_label);
            obs.span(
                "stage",
                Track::job(s.0),
                state.stage_launch[s.index()],
                end,
                vec![
                    ("stage", s.0.into()),
                    ("dop", (d as u64).into()),
                    ("read_medium", read_medium.into()),
                ],
            );
            // Predicted-vs-observed per-task mean step durations: the
            // scorecard's Fig.-11 sample for this stage.
            let pred = state.stage_clean[s.index()];
            let realized = state.stage_observed[s.index()];
            obs.event(
                "predictor.sample",
                Track::job(s.0),
                end,
                vec![
                    ("stage", s.0.into()),
                    ("pred_setup", pred.setup.into()),
                    ("pred_read", pred.read.into()),
                    ("pred_compute", pred.compute.into()),
                    ("pred_write", pred.write.into()),
                    ("obs_setup", realized.setup.into()),
                    ("obs_read", realized.read.into()),
                    ("obs_compute", realized.compute.into()),
                    ("obs_write", realized.write.into()),
                ],
            );
        }
        state.stage_write_start[s.index()] = if wstart.is_finite() { wstart } else { end };
        state.stage_read_end[s.index()] = rend;
    }
    Ok(())
}

/// Close out a simulation: storage persistence cost over the recorded
/// per-edge media, final metrics. Consumes the state.
pub(crate) fn finish_pass(
    mut state: SimState,
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    obs: &Recorder,
) -> SimPass {
    // Canonical trace order: stages may have been simulated in any
    // tie-break order, but the returned trace sorts by (stage, task) —
    // stable, so a task's attempt sequence keeps its order. This is what
    // lets the model checker compare traces across interleavings
    // structurally.
    state.trace.tasks.sort_by_key(|t| (t.stage, t.task));
    state.trace.attempts.sort_by_key(|a| (a.stage, a.task));
    // Storage persistence cost: every edge's volume is resident in its
    // medium from the producer's first write until the consumer's last
    // read completes. The medium is the one recorded when the consumer
    // ran (falling back to the final schedule for edges that never ran).
    let mut storage_cost = 0.0;
    for e in dag.edges() {
        let medium = state.edge_medium[e.id.index()]
            .unwrap_or_else(|| gt.edge_medium(schedule, e.id.index()));
        let resident_from = state.stage_write_start[e.src.index()];
        let resident_to = state.stage_read_end[e.dst.index()].max(resident_from);
        storage_cost +=
            CostModel::for_medium(medium).persistence_cost(e.bytes, resident_to - resident_from);
        if obs.is_enabled() {
            obs.counter_add(
                "storage.bytes",
                medium_label(medium),
                e.bytes as f64,
                resident_from,
            );
        }
    }

    let faults = state.total_stats();
    let metrics = JobMetrics {
        jct: state.trace.jct(),
        compute_cost: state.trace.compute_cost() + faults.wasted_gb_s,
        storage_cost,
        faults,
    };
    SimPass {
        trace: state.trace,
        metrics,
        stage_launch: state.stage_launch,
    }
}

/// Emit a matched `hb.slot_acquire`/`hb.slot_release` pair for one slot
/// occupancy interval. `spec` marks speculative copies, which run without
/// reserving a slot (graded as a warning by the race checker, not an
/// error).
#[allow(clippy::too_many_arguments)]
pub(crate) fn slot_pair(
    obs: &Recorder,
    srv: u32,
    lane: u32,
    stage: u32,
    task: u32,
    start: f64,
    end: f64,
    spec: bool,
) {
    let kind = if spec { "spec" } else { "task" };
    let attrs = |k: &'static str| {
        vec![
            ("stage", stage.into()),
            ("task", task.into()),
            ("server", srv.into()),
            ("kind", k.into()),
        ]
    };
    obs.event("hb.slot_acquire", Track::server(srv, lane), start, attrs(kind));
    obs.event("hb.slot_release", Track::server(srv, lane), end, attrs(kind));
}

/// Static label of an [`AttemptOutcome`] for telemetry attributes.
pub(crate) fn outcome_label(outcome: AttemptOutcome) -> &'static str {
    match outcome {
        AttemptOutcome::Completed => "completed",
        AttemptOutcome::Crashed => "crashed",
        AttemptOutcome::ServerLost => "server_lost",
        AttemptOutcome::Superseded => "superseded",
    }
}

/// Static label of a [`Medium`] for telemetry counter series.
pub(crate) fn medium_label(medium: Medium) -> &'static str {
    match medium {
        Medium::SharedMemory => "shared-memory",
        Medium::Redis => "redis",
        Medium::S3 => "s3",
    }
}

/// Deterministic restart target after a server failure: the lowest
/// server id used anywhere in the schedule that is not the failed one
/// (the failed server itself when it is the only one — it "rebooted").
fn pick_survivor(schedule: &Schedule, failed: ServerId) -> ServerId {
    let mut best: Option<ServerId> = None;
    for (stage, p) in schedule.placement.iter().enumerate() {
        for t in 0..schedule.dop[stage] {
            let srv = p.server_of_task(t);
            if srv != failed && best.is_none_or(|b| srv < b) {
                best = Some(srv);
            }
        }
    }
    best.unwrap_or(failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::ExecConfig;
    use crate::sim::simulate;
    use ditto_core::baselines::EvenSplitScheduler;
    use ditto_core::{DittoScheduler, Scheduler, SchedulingContext};
    use ditto_timemodel::model::RateConfig;

    fn fixture(free: &[u32]) -> (JobDag, JobTimeModel, ResourceManager, Schedule, GroundTruth) {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        let schedule = DittoScheduler::new().schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        (dag, model, rm, schedule, GroundTruth::new(ExecConfig::default()))
    }

    #[test]
    fn empty_plan_matches_plain_simulate() {
        let (dag, _, _, schedule, gt) = fixture(&[96; 8]);
        let (plain_trace, plain_m) = simulate(&dag, &schedule, &gt);
        let (t, m) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &FaultPlan::none(),
            &RecoveryPolicy::none(),
            None,
        )
        .unwrap();
        assert_eq!(plain_m, m);
        assert_eq!(plain_trace.tasks, t.tasks);
        assert!(t.attempts.is_empty(), "no faults, no attempt records");
    }

    #[test]
    fn crash_delays_and_records_attempts() {
        let (dag, _, _, schedule, gt) = fixture(&[96; 8]);
        let (_, base) = simulate(&dag, &schedule, &gt);
        let plan = FaultPlan::from_events(vec![FaultEvent::TaskCrash {
            stage: StageId(0),
            task: 0,
            attempt: 0,
            at_fraction: 0.5,
        }]);
        let (t, m) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::retry_only(),
            None,
        )
        .unwrap();
        assert!(m.jct >= base.jct, "a crash cannot speed the job up");
        assert_eq!(m.faults.extra_attempts, 1);
        assert!(m.faults.wasted_gb_s > 0.0);
        assert!(m.faults.recovery_delay_s > 0.0);
        // Crashed attempt + the completing one.
        assert_eq!(t.attempts.len(), 2);
        assert_eq!(t.attempts[0].outcome, AttemptOutcome::Crashed);
        assert_eq!(t.attempts[1].outcome, AttemptOutcome::Completed);
    }

    #[test]
    fn retries_exhaust_into_typed_error() {
        let (dag, _, _, schedule, gt) = fixture(&[96; 8]);
        let events = (0..3)
            .map(|a| FaultEvent::TaskCrash {
                stage: StageId(0),
                task: 0,
                attempt: a,
                at_fraction: 0.5,
            })
            .collect();
        let policy = RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::retry_only()
        };
        let err = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &FaultPlan::from_events(events),
            &policy,
            None,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::RetriesExhausted {
                stage: 0,
                task: 0,
                attempts: 3
            }
        );
    }

    #[test]
    fn speculation_caps_injected_stragglers() {
        let (dag, _, _, schedule, gt) = fixture(&[96; 8]);
        let plan = FaultPlan::from_events(vec![FaultEvent::Straggler {
            stage: StageId(0),
            task: 0,
            slowdown: 20.0,
        }]);
        let (_, without) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::retry_only(),
            None,
        )
        .unwrap();
        let (t, with) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap();
        assert!(
            with.jct < without.jct,
            "speculation must beat a 20x straggler: {} vs {}",
            with.jct,
            without.jct
        );
        assert!(with.faults.speculative_copies >= 1);
        assert!(t
            .attempts
            .iter()
            .any(|a| a.outcome == AttemptOutcome::Superseded && a.wasted_gb_s > 0.0));
    }

    #[test]
    fn server_failure_reschedules_suffix_and_completes() {
        let (dag, model, rm, schedule, gt) = fixture(&[48; 4]);
        let (_, base) = simulate(&dag, &schedule, &gt);
        let failed = ServerId(0);
        let at_time = base.jct * 0.3;
        let plan = FaultPlan::none().and_server_failure(failed, at_time);
        let ctx = ReschedulingContext {
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        };
        let (trace, m) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::default(),
            Some(&ctx),
        )
        .unwrap();
        assert_eq!(m.faults.server_failures, 1);
        assert!(
            m.faults.rescheduled_stages > 0,
            "a mid-job failure must replan the suffix"
        );
        assert!(m.jct >= base.jct, "failure cannot speed the job up");
        // Everything placed after the failure avoids the dead server.
        for t in trace.tasks.iter().filter(|t| t.launch >= at_time) {
            assert_ne!(t.server, failed, "stage {} task {}", t.stage, t.task);
        }
        // The job still finishes: every stage has tasks in the trace.
        for s in 0..dag.num_stages() as u32 {
            assert!(trace.tasks.iter().any(|t| t.stage == s));
        }
    }

    #[test]
    fn server_failure_without_context_still_completes() {
        let (dag, _, _, schedule, gt) = fixture(&[48; 4]);
        let (_, base) = simulate(&dag, &schedule, &gt);
        let plan = FaultPlan::none().and_server_failure(ServerId(0), base.jct * 0.3);
        let (trace, m) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap();
        assert!(m.jct >= base.jct);
        assert_eq!(m.faults.rescheduled_stages, 0, "no context, no replan");
        for s in 0..dag.num_stages() as u32 {
            assert!(trace.tasks.iter().any(|t| t.stage == s));
        }
    }

    #[test]
    fn random_rates_are_deterministic_per_seed() {
        let (dag, _, _, schedule, gt) = fixture(&[96; 8]);
        let run = |seed| {
            let plan = FaultPlan::from_rates(FaultRates {
                crash_prob: 0.2,
                straggler_prob: 0.1,
                straggler_slowdown: 3.0,
                ..FaultRates::none(seed)
            });
            let policy = RecoveryPolicy {
                max_retries: 16,
                ..Default::default()
            };
            try_simulate_with_faults(&dag, &schedule, &gt, &plan, &policy, None).unwrap()
        };
        let (ta, ma) = run(9);
        let (tb, mb) = run(9);
        assert_eq!(ma, mb);
        assert_eq!(ta.attempts, tb.attempts);
        let (_, mc) = run(10);
        assert_ne!(ma, mc, "different seed, different fault history");
    }

    #[test]
    fn drift_inflation_slows_compute_only() {
        let (dag, _, _, schedule, gt) = fixture(&[96; 8]);
        let (base_t, base) = simulate(&dag, &schedule, &gt);
        let plan = FaultPlan::none().with_drift(2.0);
        assert!((plan.drift_factor() - 2.0).abs() < 1e-12);
        let (t, m) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::none(),
            None,
        )
        .unwrap();
        assert!(m.jct > base.jct, "2x compute drift must lengthen the job");
        // Compute steps exactly double; read and write steps untouched.
        for (a, b) in base_t.tasks.iter().zip(&t.tasks) {
            let (sa, sb) = (a.steps(), b.steps());
            assert!((sb.compute - 2.0 * sa.compute).abs() < 1e-9);
            assert!((sb.read - sa.read).abs() < 1e-9);
            assert!((sb.write - sa.write).abs() < 1e-9);
        }
        // Stacked drift events multiply.
        assert!((plan.clone().with_drift(1.5).drift_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn object_loss_triggers_lineage_reexec() {
        let (dag, _, _, schedule, gt) = fixture(&[96; 8]);
        let (_, base) = simulate(&dag, &schedule, &gt);
        let plan = FaultPlan::none().and_object_loss(StageId(0), 0);
        let (_, m) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::retry_only(),
            None,
        )
        .unwrap();
        assert_eq!(m.faults.object_losses, 1);
        assert_eq!(m.faults.lineage_reexecs, 1);
        assert!(m.jct > base.jct, "a lost object must delay its reader");
        assert!(m.faults.wasted_gb_s > 0.0, "the lost attempt was billed");
        assert!(m.faults.recovery_delay_s > 0.0);

        // Corruption is detected by checksum and healed the same way.
        let plan = FaultPlan::none().and_object_corruption(StageId(0), 1);
        let (_, mc) = try_simulate_with_faults(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::retry_only(),
            None,
        )
        .unwrap();
        assert_eq!(mc.faults.object_corruptions, 1);
        assert_eq!(mc.faults.lineage_reexecs, 1);
        assert!(mc.jct > base.jct);
    }

    #[test]
    fn object_fault_rates_are_deterministic_and_first_reader_pays() {
        let (dag, _, _, schedule, gt) = fixture(&[96; 8]);
        let run = |seed| {
            let plan = FaultPlan::from_rates(FaultRates {
                loss_prob: 0.2,
                corruption_prob: 0.1,
                ..FaultRates::none(seed)
            });
            try_simulate_with_faults(&dag, &schedule, &gt, &plan, &RecoveryPolicy::retry_only(), None)
                .unwrap()
        };
        let (_, a) = run(5);
        let (_, b) = run(5);
        assert_eq!(a, b, "same seed, same object-fault history");
        assert!(
            a.faults.object_losses + a.faults.object_corruptions > 0,
            "20%/10% rates over q95 must hit something"
        );
        assert_eq!(
            a.faults.lineage_reexecs,
            a.faults.object_losses + a.faults.object_corruptions,
            "each faulted object is healed exactly once (first reader pays)"
        );
        let (_, c) = run(6);
        assert_ne!(a, c, "different seed, different history");
    }

    #[test]
    fn jct_nondecreasing_in_crash_count() {
        let dag = ditto_dag::generators::fig1_join();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![16, 16]);
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let gt = GroundTruth::new(ExecConfig::default());
        let pool: Vec<(StageId, u32)> = (0..3)
            .flat_map(|s| (0..2).map(move |t| (StageId(s), t)))
            .collect();
        let mut last = 0.0;
        for k in 0..=pool.len() {
            let events = pool[..k]
                .iter()
                .map(|&(stage, task)| FaultEvent::TaskCrash {
                    stage,
                    task,
                    attempt: 0,
                    at_fraction: 0.6,
                })
                .collect();
            let (_, m) = try_simulate_with_faults(
                &dag,
                &schedule,
                &gt,
                &FaultPlan::from_events(events),
                &RecoveryPolicy::retry_only(),
                None,
            )
            .unwrap();
            assert!(
                m.jct >= last - 1e-9,
                "jct dropped from {last} to {} at {k} crashes",
                m.jct
            );
            last = m.jct;
        }
    }
}
