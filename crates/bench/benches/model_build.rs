//! Table 2: execution-time-model building overhead per query.
//!
//! The paper reports 194–216 ms per query (profiles at five DoPs,
//! least-squares fit per fine-grained step). This bench measures the fit
//! itself (the paper's number includes profile collection I/O that a
//! simulation doesn't pay, so absolute values here are much smaller).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ditto_exec::profile::profile_job;
use ditto_exec::{ExecConfig, GroundTruth};
use ditto_sql::queries::Query;
use ditto_sql::{Database, ScaleConfig};
use std::hint::black_box;

fn model_build(c: &mut Criterion) {
    let db = Database::generate(ScaleConfig::with_sf(0.5));
    let gt = GroundTruth::new(ExecConfig::default());
    let mut group = c.benchmark_group("table2_model_building");
    for q in Query::all() {
        let mut plan = q.prepared_plan(&db);
        plan.scale_volumes(ditto_bench::VOLUME_SCALE);
        let profile = profile_job(&plan.dag, &gt, &[10, 20, 40, 80, 120]);
        group.bench_with_input(BenchmarkId::from_parameter(q.name()), &profile, |b, p| {
            b.iter(|| black_box(p.build_model(&plan.dag)))
        });
    }
    group.finish();
}

criterion_group!(benches, model_build);
criterion_main!(benches);
