//! Synthetic TPC-DS-like database generator.
//!
//! The paper runs TPC-DS at scale factor 1000 (≈1 TB). Neither the data
//! nor a cluster that could hold it is available here, so this generator
//! produces a *scaled-down structural equivalent*: the same tables the four
//! evaluated queries touch, with
//!
//! * the benchmark's **relative table sizes** (fact tables ≫ dimensions),
//! * **skewed foreign keys** (Zipf-distributed warehouse/store/address
//!   references — the data skew the paper's straggler scaling factor
//!   exists for), and
//! * the **selectivity structure** the queries exploit (date ranges that
//!   keep a few percent of a fact table, states that keep ~1/20 of
//!   addresses, multi-warehouse orders for Q95's `ws_wh`).
//!
//! Absolute row counts are laptop-scale: `sf = 1.0` yields ~130k fact rows,
//! generated in tens of milliseconds. The simulator scales *byte volumes*
//! up to paper magnitudes separately (see `QueryPlan::scale_volumes`), so
//! scheduling behaves as if the data were TB-sized while execution stays
//! testable.

use crate::column::{Column, DataType};
use crate::table::{Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use std::collections::HashMap;

/// US state mnemonics used for dimension attributes.
const STATES: &[&str] = &[
    "TN", "CA", "NY", "GA", "TX", "WA", "OR", "IL", "OH", "FL", "PA", "MI", "NC", "VA", "NJ",
    "MA", "AZ", "CO", "MN", "WI",
];

const COUNTIES: &[&str] = &[
    "Williamson County",
    "Ziebach County",
    "Walker County",
    "Daviess County",
    "Barrow County",
    "Luce County",
    "Richland County",
    "Oglethorpe County",
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Scale factor: 1.0 ≈ 130k fact rows total.
    pub sf: f64,
    /// RNG seed; identical configs generate identical databases.
    pub seed: u64,
    /// Zipf exponent for foreign-key skew (≈1.1 matches retail data).
    pub skew: f64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            sf: 1.0,
            seed: 20230910, // SIGCOMM '23 started Sept 10
            skew: 1.1,
        }
    }
}

impl ScaleConfig {
    /// A config with the given scale factor and default seed/skew.
    pub fn with_sf(sf: f64) -> Self {
        ScaleConfig {
            sf,
            ..Default::default()
        }
    }

    fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.sf).round() as usize).max(8)
    }
}

/// The generated database: named tables.
#[derive(Debug, Clone)]
pub struct Database {
    tables: HashMap<String, Table>,
    /// The config used to generate it.
    pub config: ScaleConfig,
}

impl Database {
    /// Generate the full database.
    pub fn generate(config: ScaleConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tables = HashMap::new();

        // ---- dimensions (unscaled or lightly scaled) ----
        let n_dates = 2000usize; // ~5.5 years of days
        tables.insert("date_dim".into(), gen_date_dim(n_dates));

        let n_addr = config.rows(5000);
        tables.insert("customer_address".into(), gen_addresses(n_addr, &mut rng));

        let n_cust = config.rows(10_000);
        tables.insert("customer".into(), gen_customers(n_cust, n_addr, &mut rng));

        tables.insert("store".into(), gen_stores(20, &mut rng));
        tables.insert("call_center".into(), gen_call_centers(8, &mut rng));
        tables.insert("web_site".into(), gen_web_sites(12, &mut rng));
        tables.insert("warehouse".into(), gen_warehouses(10, &mut rng));

        let n_items = config.rows(1000);
        tables.insert("item".into(), gen_items(n_items, &mut rng));

        // ---- facts ----
        let cfg = &config;
        let ws = gen_web_sales(cfg.rows(30_000), n_dates, n_addr, 12, 10, cfg.skew, &mut rng);
        let wr = gen_returns("wr_order_number", &ws, "ws_order_number", 0.10, &mut rng);
        tables.insert("web_sales".into(), ws);
        tables.insert("web_returns".into(), wr);

        let cs = gen_catalog_sales(cfg.rows(40_000), n_dates, n_addr, 8, 10, cfg.skew, &mut rng);
        let cr = gen_returns("cr_order_number", &cs, "cs_order_number", 0.08, &mut rng);
        tables.insert("catalog_sales".into(), cs);
        tables.insert("catalog_returns".into(), cr);

        tables.insert(
            "store_sales".into(),
            gen_store_sales(cfg.rows(60_000), n_dates, n_cust, 20, n_items, cfg.skew, &mut rng),
        );
        tables.insert(
            "store_returns".into(),
            gen_store_returns(cfg.rows(6_000), n_dates, n_cust, 20, cfg.skew, &mut rng),
        );

        Database {
            tables,
            config,
        }
    }

    /// A table by name.
    ///
    /// # Panics
    /// Panics on unknown table names (generation is total over the schema).
    pub fn table(&self, name: &str) -> &Table {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("unknown table {name:?}"))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// Total bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.byte_size()).sum()
    }
}

fn zipf_key(rng: &mut StdRng, n: usize, skew: f64) -> i64 {
    let z = Zipf::new(n as u64, skew).expect("valid zipf");
    z.sample(rng) as i64
}

fn gen_date_dim(n: usize) -> Table {
    // Day i: year 1998 + i/365, month 1 + (i/30)%12.
    let sk: Vec<i64> = (1..=n as i64).collect();
    let year: Vec<i64> = (0..n).map(|i| 1998 + (i / 365) as i64).collect();
    let moy: Vec<i64> = (0..n).map(|i| 1 + ((i / 30) % 12) as i64).collect();
    Table::new(
        Schema::new(&[
            ("d_date_sk", DataType::I64),
            ("d_year", DataType::I64),
            ("d_moy", DataType::I64),
        ]),
        vec![Column::I64(sk), Column::I64(year), Column::I64(moy)],
    )
}

fn gen_addresses(n: usize, rng: &mut StdRng) -> Table {
    let sk: Vec<i64> = (1..=n as i64).collect();
    let state: Vec<String> = (0..n)
        .map(|_| STATES[rng.gen_range(0..STATES.len())].to_string())
        .collect();
    Table::new(
        Schema::new(&[("ca_address_sk", DataType::I64), ("ca_state", DataType::Str)]),
        vec![Column::I64(sk), Column::Str(state)],
    )
}

fn gen_customers(n: usize, n_addr: usize, rng: &mut StdRng) -> Table {
    let sk: Vec<i64> = (1..=n as i64).collect();
    let addr: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=n_addr as i64)).collect();
    Table::new(
        Schema::new(&[
            ("c_customer_sk", DataType::I64),
            ("c_current_addr_sk", DataType::I64),
        ]),
        vec![Column::I64(sk), Column::I64(addr)],
    )
}

fn gen_stores(n: usize, rng: &mut StdRng) -> Table {
    let sk: Vec<i64> = (1..=n as i64).collect();
    let state: Vec<String> = (0..n)
        .map(|i| {
            // Guarantee several TN stores (Q1 filters on TN).
            if i % 4 == 0 {
                "TN".to_string()
            } else {
                STATES[rng.gen_range(0..STATES.len())].to_string()
            }
        })
        .collect();
    Table::new(
        Schema::new(&[("s_store_sk", DataType::I64), ("s_state", DataType::Str)]),
        vec![Column::I64(sk), Column::Str(state)],
    )
}

fn gen_call_centers(n: usize, rng: &mut StdRng) -> Table {
    let sk: Vec<i64> = (1..=n as i64).collect();
    let county: Vec<String> = (0..n)
        .map(|_| COUNTIES[rng.gen_range(0..COUNTIES.len())].to_string())
        .collect();
    Table::new(
        Schema::new(&[
            ("cc_call_center_sk", DataType::I64),
            ("cc_county", DataType::Str),
        ]),
        vec![Column::I64(sk), Column::Str(county)],
    )
}

fn gen_web_sites(n: usize, rng: &mut StdRng) -> Table {
    let sk: Vec<i64> = (1..=n as i64).collect();
    let company: Vec<String> = (0..n).map(|_| format!("pri-{}", rng.gen_range(0..4))).collect();
    Table::new(
        Schema::new(&[
            ("web_site_sk", DataType::I64),
            ("web_company_name", DataType::Str),
        ]),
        vec![Column::I64(sk), Column::Str(company)],
    )
}

fn gen_warehouses(n: usize, rng: &mut StdRng) -> Table {
    let sk: Vec<i64> = (1..=n as i64).collect();
    let state: Vec<String> = (0..n)
        .map(|_| STATES[rng.gen_range(0..STATES.len())].to_string())
        .collect();
    Table::new(
        Schema::new(&[("w_warehouse_sk", DataType::I64), ("w_state", DataType::Str)]),
        vec![Column::I64(sk), Column::Str(state)],
    )
}

/// Web sales: several line items per order; ~15 % of orders ship from more
/// than one warehouse (Q95's `ws_wh` population).
fn gen_web_sales(
    n: usize,
    n_dates: usize,
    n_addr: usize,
    n_sites: usize,
    n_wh: usize,
    skew: f64,
    rng: &mut StdRng,
) -> Table {
    let mut order = Vec::with_capacity(n);
    let mut wh = Vec::with_capacity(n);
    let mut date = Vec::with_capacity(n);
    let mut addr = Vec::with_capacity(n);
    let mut site = Vec::with_capacity(n);
    let mut cost = Vec::with_capacity(n);
    let mut profit = Vec::with_capacity(n);
    let mut next_order = 1i64;
    while order.len() < n {
        let items = rng.gen_range(1..=6).min(n - order.len());
        let multi_wh = rng.gen_bool(0.25);
        let base_wh = zipf_key(rng, n_wh, skew);
        let o_date = rng.gen_range(1..=n_dates as i64);
        let o_addr = zipf_key(rng, n_addr, skew);
        let o_site = rng.gen_range(1..=n_sites as i64);
        for item in 0..items {
            order.push(next_order);
            wh.push(if multi_wh && item > 0 && rng.gen_bool(0.5) {
                // a different warehouse than the order's base
                1 + (base_wh % n_wh as i64)
            } else {
                base_wh
            });
            date.push(o_date);
            addr.push(o_addr);
            site.push(o_site);
            cost.push(rng.gen_range(1.0..500.0));
            profit.push(rng.gen_range(-100.0..400.0));
        }
        next_order += 1;
    }
    Table::new(
        Schema::new(&[
            ("ws_order_number", DataType::I64),
            ("ws_warehouse_sk", DataType::I64),
            ("ws_ship_date_sk", DataType::I64),
            ("ws_ship_addr_sk", DataType::I64),
            ("ws_web_site_sk", DataType::I64),
            ("ws_ext_ship_cost", DataType::F64),
            ("ws_net_profit", DataType::F64),
        ]),
        vec![
            Column::I64(order),
            Column::I64(wh),
            Column::I64(date),
            Column::I64(addr),
            Column::I64(site),
            Column::F64(cost),
            Column::F64(profit),
        ],
    )
}

fn gen_catalog_sales(
    n: usize,
    n_dates: usize,
    n_addr: usize,
    n_cc: usize,
    n_wh: usize,
    skew: f64,
    rng: &mut StdRng,
) -> Table {
    let mut order = Vec::with_capacity(n);
    let mut date = Vec::with_capacity(n);
    let mut addr = Vec::with_capacity(n);
    let mut cc = Vec::with_capacity(n);
    let mut wh = Vec::with_capacity(n);
    let mut cost = Vec::with_capacity(n);
    let mut profit = Vec::with_capacity(n);
    let mut next_order = 1i64;
    while order.len() < n {
        let items = rng.gen_range(1..=4).min(n - order.len());
        let o_date = rng.gen_range(1..=n_dates as i64);
        let o_addr = zipf_key(rng, n_addr, skew);
        let o_cc = rng.gen_range(1..=n_cc as i64);
        for _ in 0..items {
            order.push(next_order);
            date.push(o_date);
            addr.push(o_addr);
            cc.push(o_cc);
            wh.push(zipf_key(rng, n_wh, skew));
            cost.push(rng.gen_range(1.0..400.0));
            profit.push(rng.gen_range(-80.0..300.0));
        }
        next_order += 1;
    }
    Table::new(
        Schema::new(&[
            ("cs_order_number", DataType::I64),
            ("cs_ship_date_sk", DataType::I64),
            ("cs_ship_addr_sk", DataType::I64),
            ("cs_call_center_sk", DataType::I64),
            ("cs_warehouse_sk", DataType::I64),
            ("cs_ext_ship_cost", DataType::F64),
            ("cs_net_profit", DataType::F64),
        ]),
        vec![
            Column::I64(order),
            Column::I64(date),
            Column::I64(addr),
            Column::I64(cc),
            Column::I64(wh),
            Column::F64(cost),
            Column::F64(profit),
        ],
    )
}

/// Returns for a fraction of the sales orders.
fn gen_returns(
    out_col: &str,
    sales: &Table,
    order_col: &str,
    fraction: f64,
    rng: &mut StdRng,
) -> Table {
    let orders = sales.column_req(order_col).as_i64();
    let max_order = orders.iter().copied().max().unwrap_or(0);
    let returned: Vec<i64> = (1..=max_order)
        .filter(|_| rng.gen_bool(fraction))
        .collect();
    Table::new(
        Schema::new(&[(out_col, DataType::I64)]),
        vec![Column::I64(returned)],
    )
}

fn gen_store_sales(
    n: usize,
    n_dates: usize,
    n_cust: usize,
    n_stores: usize,
    n_items: usize,
    skew: f64,
    rng: &mut StdRng,
) -> Table {
    let date: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=n_dates as i64)).collect();
    let cust: Vec<i64> = (0..n).map(|_| zipf_key(rng, n_cust, skew)).collect();
    let store: Vec<i64> = (0..n).map(|_| zipf_key(rng, n_stores, skew)).collect();
    let item: Vec<i64> = (0..n).map(|_| zipf_key(rng, n_items, skew)).collect();
    let paid: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..300.0)).collect();
    Table::new(
        Schema::new(&[
            ("ss_sold_date_sk", DataType::I64),
            ("ss_customer_sk", DataType::I64),
            ("ss_store_sk", DataType::I64),
            ("ss_item_sk", DataType::I64),
            ("ss_net_paid", DataType::F64),
        ]),
        vec![
            Column::I64(date),
            Column::I64(cust),
            Column::I64(store),
            Column::I64(item),
            Column::F64(paid),
        ],
    )
}

/// Item dimension: surrogate key, brand id, category.
fn gen_items(n: usize, rng: &mut StdRng) -> Table {
    const CATEGORIES: &[&str] = &["Books", "Electronics", "Home", "Music", "Sports", "Shoes"];
    let sk: Vec<i64> = (1..=n as i64).collect();
    let brand: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=50)).collect();
    let category: Vec<String> = (0..n)
        .map(|_| CATEGORIES[rng.gen_range(0..CATEGORIES.len())].to_string())
        .collect();
    Table::new(
        Schema::new(&[
            ("i_item_sk", DataType::I64),
            ("i_brand_id", DataType::I64),
            ("i_category", DataType::Str),
        ]),
        vec![Column::I64(sk), Column::I64(brand), Column::Str(category)],
    )
}

fn gen_store_returns(
    n: usize,
    n_dates: usize,
    n_cust: usize,
    n_stores: usize,
    skew: f64,
    rng: &mut StdRng,
) -> Table {
    let date: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=n_dates as i64)).collect();
    let cust: Vec<i64> = (0..n).map(|_| zipf_key(rng, n_cust, skew)).collect();
    let store: Vec<i64> = (0..n).map(|_| zipf_key(rng, n_stores, skew)).collect();
    let amt: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..200.0)).collect();
    Table::new(
        Schema::new(&[
            ("sr_returned_date_sk", DataType::I64),
            ("sr_customer_sk", DataType::I64),
            ("sr_store_sk", DataType::I64),
            ("sr_return_amt", DataType::F64),
        ]),
        vec![
            Column::I64(date),
            Column::I64(cust),
            Column::I64(store),
            Column::F64(amt),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_tables() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        let names = db.table_names();
        for expect in [
            "call_center",
            "catalog_returns",
            "catalog_sales",
            "customer",
            "customer_address",
            "date_dim",
            "store",
            "store_returns",
            "store_sales",
            "warehouse",
            "web_returns",
            "web_sales",
            "web_site",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        assert!(db.total_bytes() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Database::generate(ScaleConfig::with_sf(0.05));
        let b = Database::generate(ScaleConfig::with_sf(0.05));
        assert_eq!(a.table("web_sales"), b.table("web_sales"));
        let c = Database::generate(ScaleConfig {
            seed: 1,
            ..ScaleConfig::with_sf(0.05)
        });
        assert_ne!(a.table("web_sales"), c.table("web_sales"));
    }

    #[test]
    fn fact_tables_dominate() {
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let facts = db.table("web_sales").num_rows()
            + db.table("catalog_sales").num_rows()
            + db.table("store_sales").num_rows();
        let dims = db.table("store").num_rows()
            + db.table("call_center").num_rows()
            + db.table("web_site").num_rows()
            + db.table("warehouse").num_rows();
        assert!(facts > 50 * dims, "facts={facts} dims={dims}");
    }

    #[test]
    fn scale_factor_scales_rows() {
        let small = Database::generate(ScaleConfig::with_sf(0.1));
        let big = Database::generate(ScaleConfig::with_sf(0.4));
        let r = big.table("web_sales").num_rows() as f64
            / small.table("web_sales").num_rows() as f64;
        assert!((r - 4.0).abs() < 0.3, "ratio={r}");
    }

    #[test]
    fn q95_premise_holds_multi_warehouse_orders_exist() {
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let ws = db.table("web_sales");
        let g = crate::ops::group_by(
            ws,
            &["ws_order_number"],
            &[crate::ops::AggSpec::new(
                crate::ops::group_by::AggFunc::CountDistinct,
                "ws_warehouse_sk",
                "wh",
            )],
            None,
        );
        let multi = g.column_req("wh").as_i64().iter().filter(|&&c| c > 1).count();
        let frac = multi as f64 / g.num_rows() as f64;
        assert!(frac > 0.02 && frac < 0.4, "multi-warehouse fraction {frac}");
    }

    #[test]
    fn q1_premise_holds_tn_stores_exist() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        let tn = db
            .table("store")
            .column_req("s_state")
            .as_str()
            .iter()
            .filter(|s| s.as_str() == "TN")
            .count();
        assert!(tn >= 3);
    }

    #[test]
    fn foreign_keys_in_range() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        let n_addr = db.table("customer_address").num_rows() as i64;
        for &a in db.table("web_sales").column_req("ws_ship_addr_sk").as_i64() {
            assert!(a >= 1 && a <= n_addr);
        }
        let n_dates = db.table("date_dim").num_rows() as i64;
        for &d in db.table("web_sales").column_req("ws_ship_date_sk").as_i64() {
            assert!(d >= 1 && d <= n_dates);
        }
    }

    #[test]
    fn keys_are_skewed() {
        // Zipf skew: the most popular warehouse gets far more than 1/n of
        // the rows.
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let wh = db.table("web_sales").column_req("ws_warehouse_sk").as_i64();
        let mut counts = HashMap::new();
        for &w in wh {
            *counts.entry(w).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max as f64 > 2.0 * wh.len() as f64 / 10.0, "no skew detected");
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn unknown_table_panics() {
        Database::generate(ScaleConfig::with_sf(0.05)).table("nope");
    }
}
