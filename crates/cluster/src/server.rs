//! A function server: a bounded pool of single-core function slots.

use std::fmt;

/// Identifier of a server in the cluster; dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

/// One function server. `capacity` is the hardware bound (number of CPU
/// cores available for functions); `free` is the currently available slot
/// count, which varies with runtime conditions (§6.1 models this with slot
/// usage / distribution knobs).
#[derive(Debug, Clone)]
pub struct Server {
    /// Dense identifier.
    pub id: ServerId,
    /// Hardware slot capacity.
    pub capacity: u32,
    /// Currently free slots, ≤ capacity.
    free: u32,
    /// Whether the server is up. A failed server offers no slots until
    /// [`Server::restore`] brings it back.
    online: bool,
}

impl Server {
    /// New server with all `capacity` slots free.
    pub fn new(id: ServerId, capacity: u32) -> Self {
        Server {
            id,
            capacity,
            free: capacity,
            online: true,
        }
    }

    /// New server with only `available` of `capacity` slots free (the rest
    /// occupied by other tenants).
    pub fn with_available(id: ServerId, capacity: u32, available: u32) -> Self {
        assert!(available <= capacity, "available slots exceed capacity");
        Server {
            id,
            capacity,
            free: available,
            online: true,
        }
    }

    /// Whether the server is up.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Take the server down: all free slots vanish and reservations fail
    /// until restored. Returns the free slots lost (idempotent — a second
    /// failure loses 0). Slots already reserved by running work are the
    /// caller's problem: the tasks holding them are dead and must be
    /// re-executed elsewhere.
    pub fn fail(&mut self) -> u32 {
        let lost = if self.online { self.free } else { 0 };
        self.free = 0;
        self.online = false;
        lost
    }

    /// Bring a failed server back with `available` free slots (capped at
    /// capacity). No-op beyond the state flip if already online.
    pub fn restore(&mut self, available: u32) {
        self.online = true;
        self.free = available.min(self.capacity);
    }

    /// Free slot count (0 while offline).
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Occupied slot count.
    pub fn used(&self) -> u32 {
        self.capacity - self.free
    }

    /// Reserve `n` slots; `false` (no change) if not enough are free or
    /// the server is offline.
    #[must_use]
    pub fn reserve(&mut self, n: u32) -> bool {
        if !self.online || n > self.free {
            return false;
        }
        self.free -= n;
        true
    }

    /// Release `n` slots back.
    ///
    /// # Panics
    /// Panics if releasing would exceed capacity (double release).
    pub fn release(&mut self, n: u32) {
        assert!(
            self.free + n <= self.capacity,
            "release of {n} slots would exceed capacity on {}",
            self.id
        );
        self.free += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip() {
        let mut s = Server::new(ServerId(0), 8);
        assert!(s.reserve(5));
        assert_eq!(s.free(), 3);
        assert_eq!(s.used(), 5);
        assert!(!s.reserve(4));
        assert_eq!(s.free(), 3, "failed reserve must not change state");
        s.release(5);
        assert_eq!(s.free(), 8);
    }

    #[test]
    fn with_available_caps_free() {
        let s = Server::with_available(ServerId(1), 96, 24);
        assert_eq!(s.free(), 24);
        assert_eq!(s.used(), 72);
    }

    #[test]
    #[should_panic(expected = "exceed capacity")]
    fn double_release_panics() {
        let mut s = Server::new(ServerId(0), 4);
        s.release(1);
    }

    #[test]
    #[should_panic(expected = "available slots exceed capacity")]
    fn available_above_capacity_panics() {
        Server::with_available(ServerId(0), 4, 5);
    }

    #[test]
    fn display() {
        assert_eq!(ServerId(3).to_string(), "srv3");
    }

    #[test]
    fn fail_and_restore_transitions() {
        let mut s = Server::new(ServerId(0), 8);
        assert!(s.reserve(3));
        assert!(s.is_online());
        assert_eq!(s.fail(), 5, "failure loses the remaining free slots");
        assert!(!s.is_online());
        assert_eq!(s.free(), 0);
        assert!(!s.reserve(1), "offline servers accept no reservations");
        assert_eq!(s.fail(), 0, "second failure is idempotent");
        s.restore(99);
        assert!(s.is_online());
        assert_eq!(s.free(), 8, "restore caps free at capacity");
        assert!(s.reserve(8));
    }
}
