//! Golden-file test for the flamegraph exporter: a fixed synthetic trace
//! must fold to byte-identical collapsed-stack lines, run after run.
//!
//! Regenerate the golden file after an intentional format change with:
//!
//! ```sh
//! DITTO_UPDATE_GOLDEN=1 cargo test -p ditto-obs --test folded_golden
//! ```

use ditto_obs::{to_folded, Recorder, SpanId, Track};
use std::path::PathBuf;

/// A small but representative trace: a scheduler span tree, two servers
/// running stage/task hierarchies with step attributes, and a storage
/// span — every folding rule (group roots, parent chains, task step
/// expansion, self-time subtraction, aggregation) fires at least once.
fn exemplar_trace() -> ditto_obs::TraceData {
    let rec = Recorder::new();
    rec.name_track(Track::SCHEDULER_GROUP, "scheduler");
    rec.name_track(Track::SERVER_BASE, "server 0");
    rec.name_track(Track::SERVER_BASE + 1, "server 1");

    // Scheduler: joint optimization with two rounds.
    let joint = rec.span("sched.joint", Track::scheduler(0), 0.0, 0.5, vec![]);
    rec.span_with_parent("sched.round", Track::scheduler(0), 0.05, 0.2, joint, vec![]);
    rec.span_with_parent("sched.round", Track::scheduler(0), 0.2, 0.4, joint, vec![]);

    // Server 0: stage 0 with two tasks, step-attributed.
    let task = |rec: &Recorder, server: u32, stage: u32, parent: SpanId, start: f64, end: f64| {
        rec.span_with_parent(
            "task",
            Track::server(server, stage),
            start,
            end,
            parent,
            vec![
                ("stage", stage.into()),
                ("read_start", (start + 0.2).into()),
                ("compute_start", (start + 1.0).into()),
                ("write_start", (end - 0.5).into()),
            ],
        );
    };
    let s0 = rec.span(
        "stage",
        Track::server(0, 0),
        0.5,
        4.5,
        vec![("stage", 0u32.into()), ("read_medium", "s3".into())],
    );
    task(&rec, 0, 0, s0, 0.5, 2.5);
    task(&rec, 0, 0, s0, 2.5, 4.5);

    // Server 1: stage 1, one task.
    let s1 = rec.span(
        "stage",
        Track::server(1, 1),
        4.5,
        8.0,
        vec![("stage", 1u32.into()), ("read_medium", "shm".into())],
    );
    task(&rec, 1, 1, s1, 4.5, 8.0);

    // Storage: one shuffle read span with no parent.
    rec.span("shuffle.read", Track::storage(), 2.5, 3.0, vec![]);

    rec.finish()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("folded.txt")
}

#[test]
fn folded_export_is_byte_stable() {
    assert_eq!(to_folded(&exemplar_trace()), to_folded(&exemplar_trace()));
}

#[test]
fn folded_export_matches_golden_file() {
    let folded = to_folded(&exemplar_trace());
    // Sanity: every folding rule produced output before comparing bytes.
    assert!(folded.contains("scheduler;sched.joint;sched.round "));
    assert!(folded.contains("server_0;stage;task;compute "));
    assert!(folded.contains("server_1;stage;task;read "));
    assert!(folded.contains("storage;shuffle.read "));
    let path = golden_path();
    if std::env::var_os("DITTO_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &folded).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with DITTO_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        folded, golden,
        "folded export drifted from the golden file; if intentional, regenerate with DITTO_UPDATE_GOLDEN=1"
    );
}
