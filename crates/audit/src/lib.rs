#![warn(missing_docs)]

//! # ditto-audit — schedule certificates, determinism lint, race detection
//!
//! Three independent correctness tools for the Ditto reproduction:
//!
//! 1. **The schedule auditor** ([`audit`]): a pure function
//!    `audit(dag, time_model, cluster, schedule)` that re-derives the
//!    paper's invariants from scratch and checks the schedule against
//!    them — DoP-ratio optimality (Algorithm 1, Eq. 3/4 and the cost
//!    reduction `dᵢ ∝ √(ρᵢαᵢ)`), stage-group well-formedness
//!    (Algorithm 2), placement feasibility against slot capacities and
//!    shared-memory co-location claims (Algorithm 3), slot-budget/
//!    deadline adherence, and structural DAG sanity. Every violation is
//!    a typed [`AuditFinding`] with stage/edge/server provenance,
//!    rendered human-readable ([`AuditReport::render`]) or as JSON
//!    ([`AuditReport::to_json`]).
//!
//! 2. **The determinism lint** ([`lint`], `cargo run -p ditto-audit
//!    --bin ditto-lint`): a line scanner over the workspace's own
//!    sources that flags nondeterminism and panic hazards in non-test
//!    scheduler/exec code, with an `audit.allow` file for justified
//!    sites.
//!
//! 3. **The happens-before race checker** ([`hb`], [`race`],
//!    `ditto-audit race <trace>`): rebuilds the intended ordering of an
//!    executor run from the `hb.*` events on its `ditto-obs` trace,
//!    assigns vector clocks, and grades recorded timestamps against it —
//!    read-before-write, missing writes, slot over-subscription,
//!    cross-server shared-memory use, replan-seam bypasses and stale
//!    lineage reads, each a typed [`RaceFinding`] with (stage, task,
//!    server, object) provenance.
//!
//! The auditor deliberately does **not** call `joint_optimize` or
//! `compute_dop`'s rounding: a scheduler bug must not be able to vouch
//! for its own output.
//!
//! ```
//! use ditto_core::{joint_optimize, JointOptions, Objective};
//! use ditto_timemodel::{model::RateConfig, JobTimeModel};
//!
//! let dag = ditto_dag::generators::fig1_join();
//! let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
//! let rm = ditto_cluster::ResourceManager::from_free_slots(vec![30, 30]);
//! let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
//! let report = ditto_audit::audit(&dag, &model, &rm, &s);
//! assert!(report.is_clean(), "{}", report.render());
//!
//! // Corrupt the schedule: the auditor names the exact stage.
//! let mut bad = s.clone();
//! bad.dop[0] *= 3;
//! let report = ditto_audit::audit(&dag, &model, &rm, &bad);
//! assert!(!report.is_clean());
//! assert_eq!(report.findings[0].stage, Some(0));
//! ```

pub mod checks;
pub mod hb;
pub mod lint;
pub mod race;
pub mod report;

pub use checks::{
    audit, audit_model, audit_placement, audit_ratios, audit_splice, audit_structure,
    audit_with, derive_fractional_dops, AuditOptions,
};
pub use hb::{EdgeRule, HbEdge, HbGraph, Op, OpKind};
pub use race::{check_trace, RaceFinding, RaceOptions, RaceReport, RaceRule};
pub use report::{AuditFinding, AuditReport, CheckId, Severity};
