#![warn(missing_docs)]

//! # ditto-core — the Ditto scheduler (the paper's contribution)
//!
//! Ditto schedules a serverless analytics job — a DAG of stages — onto a
//! cluster of function servers, jointly choosing each stage's **degree of
//! parallelism** (DoP) and its **placement**, to minimize either job
//! completion time (JCT) or cost. The key idea is a new scheduling
//! granularity, the **stage group**: stages bundled by data dependency and
//! I/O characteristics, placed on one server so their shuffle runs through
//! zero-copy shared memory.
//!
//! The three algorithms of §4, implemented faithfully:
//!
//! * [`dop`] — *DoP ratio computing* (Algorithm 1): a bottom-up
//!   stage-merging pass over the DAG. Consecutive (parent–child) stages get
//!   DoPs in the ratio `dᵢ/dⱼ = √(αᵢ/αⱼ)` (optimal by Cauchy–Schwarz,
//!   Appendix A.1); sibling stages get `dᵢ/dⱼ = αᵢ/αⱼ` (balanced paths,
//!   Appendix A.2). Cost optimization reduces to single-path JCT with
//!   weights `ρᵢαᵢ` (§4.2).
//! * [`grouping`] — *greedy grouping* (Algorithm 2): traverse edges in
//!   descending shuffle weight — re-deriving the critical path after each
//!   grouping for the JCT objective — and bundle their endpoint stages.
//! * [`placement`] — the best-fit *placement check* (§4.4) with gather
//!   decomposition of stage groups into task groups (§4.5, Fig. 7).
//! * [`joint`] — the *joint iterative optimization* (Algorithm 3) combining
//!   all three with backtracking; the objective is non-increasing across
//!   iterations (Inequality 6).
//!
//! [`baselines`] implements the comparison points of the evaluation:
//! NIMBLE (DoP ∝ input size, random placement), NIMBLE+Group, NIMBLE+DoP,
//! fixed and even-split parallelism.

pub mod baselines;
pub mod deadline;
pub mod dop;
pub mod grouping;
pub mod joint;
pub mod objective;
pub mod placement;
pub mod predict;
pub mod reference;
pub mod schedule;
pub mod scheduler;

pub use deadline::{deadline_constrained_dop, schedule_with_deadline};
pub use dop::{compute_dop, DopAssignment};
pub use grouping::{greedy_group_order, ColocationIndex, StageGroups};
pub use joint::{
    joint_optimize, joint_optimize_traced, joint_optimize_with_stats, GroupOrderPolicy,
    JointOptions, JointStats,
};
pub use objective::Objective;
pub use placement::{can_place, can_place_with, FitStrategy, PlacementPlan};
pub use reference::{joint_optimize_reference, joint_optimize_reference_with_stats};
pub use predict::{predicted_cost, predicted_jct};
pub use schedule::{Schedule, TaskPlacement};
pub use scheduler::{DittoScheduler, Scheduler, SchedulingContext};
