//! Dictionary encoding for string columns.
//!
//! A [`StrDict`] maps each distinct string of a column to a dense `u32`
//! code in **first-appearance order**. Codes are what the vectorized
//! kernels operate on: joins and group-bys compare codes instead of string
//! bytes, the shuffle partitioner hashes each distinct string once instead
//! of once per row, and the wire codec ships `(dictionary, codes)` instead
//! of repeating every cell.
//!
//! The dictionary borrows the column's strings (`&'a str`) — encoding a
//! column never clones a `String`. Internally the distinct strings are
//! also packed into a small byte arena so the per-row probe compares
//! against contiguous, cache-resident bytes instead of chasing pointers
//! back into the (much larger) column heap.

use crate::hash::fx_str;

/// A borrowed string → dense `u32` code dictionary (see module docs).
pub struct StrDict<'a> {
    /// Distinct strings in first-appearance order; index = code.
    entries: Vec<&'a str>,
    /// The same distinct strings, concatenated — the compare target.
    arena: Vec<u8>,
    /// `arena` offsets; entry `c` is `arena[offsets[c]..offsets[c + 1]]`.
    offsets: Vec<u32>,
    /// Open-addressing slot array: `code + 1`, `0` = empty.
    slots: Vec<u32>,
    mask: u64,
}

impl<'a> StrDict<'a> {
    /// An empty dictionary with room for roughly `distinct_hint` entries
    /// before the first rehash. The slot table starts small and doubles
    /// on load — a low-cardinality column (the common dimension-value
    /// shape) keeps its whole table in L1 instead of paying a cache miss
    /// per row on a worst-case-sized array.
    pub fn with_capacity(distinct_hint: usize) -> StrDict<'a> {
        let cap = (distinct_hint.clamp(4, 512) * 2).next_power_of_two();
        StrDict {
            entries: Vec::new(),
            arena: Vec::new(),
            offsets: vec![0],
            slots: vec![0u32; cap],
            mask: (cap - 1) as u64,
        }
    }

    /// Dictionary-encode a whole column: returns the dictionary plus one
    /// code per input row.
    pub fn encode_column(values: &'a [String]) -> (StrDict<'a>, Vec<u32>) {
        let mut dict = StrDict::with_capacity(values.len());
        let codes = values.iter().map(|s| dict.intern(s)).collect();
        (dict, codes)
    }

    /// Double the slot table and re-seat every entry (codes are stable —
    /// only slot positions move).
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(8);
        self.mask = (cap - 1) as u64;
        self.slots.clear();
        self.slots.resize(cap, 0);
        for (code, s) in self.entries.iter().enumerate() {
            let mut i = fx_str(s) & self.mask;
            while self.slots[i as usize] != 0 {
                i = (i + 1) & self.mask;
            }
            self.slots[i as usize] = code as u32 + 1;
        }
    }

    /// Entry `code`'s bytes in the arena.
    #[inline]
    fn arena_bytes(&self, code: u32) -> &[u8] {
        &self.arena[self.offsets[code as usize] as usize..self.offsets[code as usize + 1] as usize]
    }

    /// The code for `s`, interning it when unseen.
    pub fn intern(&mut self, s: &'a str) -> u32 {
        // Keep load factor under 1/2 so probe chains stay short.
        if (self.entries.len() as u64 + 1) * 2 > self.mask {
            self.grow();
        }
        let mut i = fx_str(s) & self.mask;
        loop {
            let slot = self.slots[i as usize];
            if slot == 0 {
                let code = self.entries.len() as u32;
                self.entries.push(s);
                self.arena.extend_from_slice(s.as_bytes());
                self.offsets.push(self.arena.len() as u32);
                self.slots[i as usize] = code + 1;
                return code;
            }
            let code = slot - 1;
            if self.arena_bytes(code) == s.as_bytes() {
                return code;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The code for `s`, or `None` when it was never interned (a probe
    /// string with no build-side match).
    pub fn lookup(&self, s: &str) -> Option<u32> {
        let mut i = fx_str(s) & self.mask;
        loop {
            let slot = self.slots[i as usize];
            if slot == 0 {
                return None;
            }
            let code = slot - 1;
            if self.arena_bytes(code) == s.as_bytes() {
                return Some(code);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The string for `code`.
    pub fn get(&self, code: u32) -> &'a str {
        self.entries[code as usize]
    }

    /// The distinct strings, in first-appearance (= code) order.
    pub fn entries(&self) -> &[&'a str] {
        &self.entries
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no strings were interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[&str]) -> Vec<String> {
        vals.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn codes_are_first_appearance_order() {
        let v = col(&["tn", "ca", "tn", "ny", "ca"]);
        let (dict, codes) = StrDict::encode_column(&v);
        assert_eq!(codes, vec![0, 1, 0, 2, 1]);
        assert_eq!(dict.entries(), &["tn", "ca", "ny"]);
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn lookup_hits_and_misses() {
        let v = col(&["a", "b"]);
        let (dict, _) = StrDict::encode_column(&v);
        assert_eq!(dict.lookup("a"), Some(0));
        assert_eq!(dict.lookup("b"), Some(1));
        assert_eq!(dict.lookup("c"), None);
        assert_eq!(dict.get(1), "b");
    }

    #[test]
    fn empty_column() {
        let v: Vec<String> = Vec::new();
        let (dict, codes) = StrDict::encode_column(&v);
        assert!(dict.is_empty());
        assert!(codes.is_empty());
        assert_eq!(dict.lookup("x"), None);
    }

    #[test]
    fn empty_string_is_a_normal_entry() {
        let v = col(&["", "x", ""]);
        let (dict, codes) = StrDict::encode_column(&v);
        assert_eq!(codes, vec![0, 1, 0]);
        assert_eq!(dict.get(0), "");
    }

    #[test]
    fn many_distinct_strings() {
        let v: Vec<String> = (0..1000).map(|i| format!("s{i}")).collect();
        let (dict, codes) = StrDict::encode_column(&v);
        assert_eq!(dict.len(), 1000);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(c as usize, i);
            assert_eq!(dict.get(c), v[i]);
        }
    }

    /// Growth across many rehashes keeps codes stable and lookups exact.
    #[test]
    fn growth_preserves_codes() {
        let v: Vec<String> = (0..10_000).map(|i| format!("value-{i:05}")).collect();
        let mut dict = StrDict::with_capacity(4);
        let codes: Vec<u32> = v.iter().map(|s| dict.intern(s)).collect();
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(c as usize, i);
            assert_eq!(dict.lookup(&v[i]), Some(c));
        }
    }
}
