//! Job-level metrics: JCT and cost.

use crate::faults::FaultStats;

/// Metrics of one job execution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct JobMetrics {
    /// Job completion time, seconds (submission → last task end).
    pub jct: f64,
    /// Compute cost: Σ memory×time over tasks, GB·s — including work
    /// billed for attempts that crashed or were superseded.
    pub compute_cost: f64,
    /// Storage persistence cost (shared memory + Redis; S3 free), GB·s
    /// priced.
    pub storage_cost: f64,
    /// Fault and recovery accounting (all zeros for fault-free runs).
    pub faults: FaultStats,
}

impl JobMetrics {
    /// Total cost (compute + storage persistence) — the paper's cost
    /// metric.
    pub fn total_cost(&self) -> f64 {
        self.compute_cost + self.storage_cost
    }

    /// `self` relative to a baseline: `(jct_speedup, cost_ratio)` where
    /// speedup > 1 means `self` is faster/cheaper.
    ///
    /// Division-safe: a zero denominator yields `1.0` when the numerator
    /// is also zero (both degenerate — neither is better) and
    /// `f64::INFINITY` otherwise (the baseline took time/cost, `self`
    /// took none), never `NaN`.
    pub fn vs(&self, baseline: &JobMetrics) -> (f64, f64) {
        (
            safe_ratio(baseline.jct, self.jct),
            safe_ratio(baseline.total_cost(), self.total_cost()),
        )
    }
}

/// `num / den` with the 0/0 and x/0 cases pinned to 1 and ∞.
fn safe_ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        if num == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_ratio() {
        let a = JobMetrics {
            jct: 10.0,
            compute_cost: 100.0,
            storage_cost: 20.0,
            faults: FaultStats::default(),
        };
        let b = JobMetrics {
            jct: 25.0,
            compute_cost: 180.0,
            storage_cost: 0.0,
            faults: FaultStats::default(),
        };
        assert_eq!(a.total_cost(), 120.0);
        let (speedup, cost_ratio) = a.vs(&b);
        assert!((speedup - 2.5).abs() < 1e-12);
        assert!((cost_ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn vs_never_divides_by_zero() {
        let zero = JobMetrics {
            jct: 0.0,
            compute_cost: 0.0,
            storage_cost: 0.0,
            faults: FaultStats::default(),
        };
        let real = JobMetrics {
            jct: 10.0,
            compute_cost: 100.0,
            storage_cost: 0.0,
            faults: FaultStats::default(),
        };
        // 0/0 → neutral 1.0, x/0 → +∞, 0/x → 0; no NaN anywhere.
        assert_eq!(zero.vs(&zero), (1.0, 1.0));
        assert_eq!(real.vs(&zero), (0.0, 0.0));
        let (s, c) = zero.vs(&real);
        assert!(s.is_infinite() && s > 0.0);
        assert!(c.is_infinite() && c > 0.0);
        for m in [zero.vs(&zero), real.vs(&zero), zero.vs(&real)] {
            assert!(!m.0.is_nan() && !m.1.is_nan());
        }
    }
}
