//! In-memory object store simulating S3/Redis: keyed blobs with optional
//! capacity bounds, per-object checksums, and usage statistics.

use crate::checksum::{checksum64, STORE_SEED};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// Errors from object-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A put would exceed the store's capacity (Redis is bounded; §6.3
    /// scales the benchmark down to fit it).
    CapacityExceeded {
        /// Bytes the store can hold.
        capacity: u64,
        /// Bytes that would be resident after the put.
        requested: u64,
    },
    /// Get of a key that was never put (or was deleted).
    NotFound(String),
    /// Get of a key whose bytes no longer match the checksum recorded at
    /// put time — the intermediate object was silently corrupted.
    Corrupted {
        /// The corrupted key.
        key: String,
        /// Checksum recorded on put.
        expected: u64,
        /// Checksum of the bytes as read.
        actual: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::CapacityExceeded {
                capacity,
                requested,
            } => write!(f, "capacity exceeded: {requested} > {capacity} bytes"),
            StoreError::NotFound(k) => write!(f, "object not found: {k:?}"),
            StoreError::Corrupted {
                key,
                expected,
                actual,
            } => write!(
                f,
                "object {key:?} corrupted: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Usage statistics of an [`ObjectStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of put operations served.
    pub puts: u64,
    /// Number of successful get operations served.
    pub gets: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Peak resident bytes over the store's lifetime.
    pub peak_bytes: u64,
    /// Total bytes ever written.
    pub bytes_written: u64,
    /// Total bytes ever read.
    pub bytes_read: u64,
    /// Gets that failed checksum verification.
    pub corrupt_reads: u64,
}

/// A thread-safe keyed blob store.
///
/// `Bytes` values make gets zero-copy (reference-counted slices), so the
/// store is cheap enough to use on the local runtime's data path, not only
/// in simulation.
pub struct ObjectStore {
    name: String,
    /// `None` = unbounded (S3-like); `Some(bytes)` = bounded (Redis-like).
    capacity: Option<u64>,
    inner: Mutex<Inner>,
}

/// One stored blob plus the checksum recorded when it was put.
struct StoredObject {
    data: Bytes,
    checksum: u64,
}

#[derive(Default)]
struct Inner {
    objects: HashMap<String, StoredObject>,
    stats: StoreStats,
}

impl ObjectStore {
    /// Unbounded store (S3-like).
    pub fn unbounded(name: impl Into<String>) -> Self {
        ObjectStore {
            name: name.into(),
            capacity: None,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Capacity-bounded store (Redis-like).
    pub fn bounded(name: impl Into<String>, capacity: u64) -> Self {
        ObjectStore {
            name: name.into(),
            capacity: Some(capacity),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The store's name (for ledger labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Store a blob under `key`, replacing any previous value. The blob's
    /// checksum is recorded so later [`get`]s can detect corruption.
    ///
    /// [`get`]: ObjectStore::get
    pub fn put(&self, key: impl Into<String>, value: Bytes) -> Result<(), StoreError> {
        let key = key.into();
        let mut inner = self.inner.lock();
        let old = inner
            .objects
            .get(&key)
            .map(|o| o.data.len() as u64)
            .unwrap_or(0);
        let new_resident = inner.stats.resident_bytes - old + value.len() as u64;
        if let Some(cap) = self.capacity {
            if new_resident > cap {
                return Err(StoreError::CapacityExceeded {
                    capacity: cap,
                    requested: new_resident,
                });
            }
        }
        inner.stats.puts += 1;
        inner.stats.bytes_written += value.len() as u64;
        inner.stats.resident_bytes = new_resident;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(new_resident);
        let checksum = checksum64(&value, STORE_SEED);
        inner.objects.insert(
            key,
            StoredObject {
                data: value,
                checksum,
            },
        );
        Ok(())
    }

    /// Fetch a blob (zero-copy clone of the stored `Bytes`), verifying it
    /// against the checksum recorded at put time.
    pub fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        let mut inner = self.inner.lock();
        let (v, expected) = match inner.objects.get(key) {
            Some(o) => (o.data.clone(), o.checksum),
            None => return Err(StoreError::NotFound(key.to_string())),
        };
        let actual = checksum64(&v, STORE_SEED);
        if actual != expected {
            inner.stats.corrupt_reads += 1;
            return Err(StoreError::Corrupted {
                key: key.to_string(),
                expected,
                actual,
            });
        }
        inner.stats.gets += 1;
        inner.stats.bytes_read += v.len() as u64;
        Ok(v)
    }

    /// Delete a blob; `true` if it existed. Freed bytes reduce residency
    /// (how Redis recovers capacity once downstream consumed the data).
    pub fn delete(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        if let Some(o) = inner.objects.remove(key) {
            inner.stats.resident_bytes -= o.data.len() as u64;
            true
        } else {
            false
        }
    }

    /// Flip bits in the stored blob without updating its recorded checksum
    /// — a corruption injector for fault testing. `true` if the key existed.
    pub fn tamper(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        let grew = match inner.objects.get_mut(key) {
            Some(o) => {
                let mut data = o.data.to_vec();
                if data.is_empty() {
                    // An empty blob has no bit to flip; grow it instead.
                    data.push(0xFF);
                } else {
                    let mid = data.len() / 2;
                    data[mid] ^= 0x5A;
                }
                let grew = data.len() as u64 - o.data.len() as u64;
                o.data = Bytes::from(data);
                grew
            }
            None => return false,
        };
        inner.stats.resident_bytes += grew;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.resident_bytes);
        true
    }

    /// `true` if the key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().objects.contains_key(key)
    }

    /// Snapshot of usage statistics.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectStore")
            .field("name", &self.name)
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s = ObjectStore::unbounded("s3");
        s.put("a/0", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.get("a/0").unwrap(), Bytes::from_static(b"hello"));
        assert!(s.contains("a/0"));
        let st = s.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 1);
        assert_eq!(st.resident_bytes, 5);
        assert_eq!(st.bytes_read, 5);
    }

    #[test]
    fn get_missing_errors() {
        let s = ObjectStore::unbounded("s3");
        assert!(matches!(s.get("nope"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn tampered_object_fails_checksum() {
        let s = ObjectStore::unbounded("s3");
        s.put("a/0", Bytes::from_static(b"payload")).unwrap();
        assert!(s.tamper("a/0"));
        let err = s.get("a/0").unwrap_err();
        assert!(matches!(err, StoreError::Corrupted { .. }), "{err}");
        assert_eq!(s.stats().corrupt_reads, 1);
        // Re-putting clean bytes heals the key.
        s.put("a/0", Bytes::from_static(b"payload")).unwrap();
        assert_eq!(s.get("a/0").unwrap(), Bytes::from_static(b"payload"));
        assert!(!s.tamper("missing"));
    }

    #[test]
    fn tamper_empty_object_detected() {
        let s = ObjectStore::unbounded("s3");
        s.put("e", Bytes::new()).unwrap();
        assert!(s.tamper("e"));
        assert!(matches!(s.get("e"), Err(StoreError::Corrupted { .. })));
    }

    #[test]
    fn bounded_capacity_enforced() {
        let s = ObjectStore::bounded("redis", 10);
        s.put("k1", Bytes::from(vec![0u8; 6])).unwrap();
        let err = s.put("k2", Bytes::from(vec![0u8; 6])).unwrap_err();
        assert!(matches!(err, StoreError::CapacityExceeded { .. }));
        // Replacing a key only counts the delta.
        s.put("k1", Bytes::from(vec![0u8; 10])).unwrap();
        assert_eq!(s.stats().resident_bytes, 10);
    }

    #[test]
    fn delete_frees_capacity() {
        let s = ObjectStore::bounded("redis", 10);
        s.put("k1", Bytes::from(vec![0u8; 8])).unwrap();
        assert!(s.delete("k1"));
        assert!(!s.delete("k1"));
        s.put("k2", Bytes::from(vec![0u8; 8])).unwrap();
        assert_eq!(s.stats().peak_bytes, 8);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let s = Arc::new(ObjectStore::unbounded("s3"));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        s.put(format!("{t}/{i}"), Bytes::from(vec![t as u8; 64])).unwrap();
                        assert_eq!(s.get(&format!("{t}/{i}")).unwrap().len(), 64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.stats().puts, 400);
        assert_eq!(s.stats().resident_bytes, 400 * 64);
    }
}
