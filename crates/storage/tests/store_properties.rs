//! Property-based tests of the object store's accounting invariants.

use bytes::Bytes;
use ditto_storage::{ObjectStore, StoreError};
use proptest::prelude::*;

/// A random sequence of store operations.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, usize),
    Get(u8),
    Delete(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..16, 0usize..512).prop_map(|(k, n)| Op::Put(k, n)),
            (0u8..16).prop_map(Op::Get),
            (0u8..16).prop_map(Op::Delete),
        ],
        0..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Residency always equals the sum of live object sizes; peak is a
    /// running maximum; reads return exactly what was written.
    #[test]
    fn accounting_invariants(ops in arb_ops()) {
        let store = ObjectStore::unbounded("test");
        let mut shadow: std::collections::HashMap<u8, usize> = Default::default();
        let mut peak = 0usize;
        for op in ops {
            match op {
                Op::Put(k, n) => {
                    store.put(format!("k{k}"), Bytes::from(vec![k; n])).unwrap();
                    shadow.insert(k, n);
                    peak = peak.max(shadow.values().sum());
                }
                Op::Get(k) => match store.get(&format!("k{k}")) {
                    Ok(v) => {
                        prop_assert_eq!(v.len(), shadow[&k]);
                        prop_assert!(v.iter().all(|&b| b == k));
                    }
                    Err(StoreError::NotFound(_)) => prop_assert!(!shadow.contains_key(&k)),
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                },
                Op::Delete(k) => {
                    let existed = store.delete(&format!("k{k}"));
                    prop_assert_eq!(existed, shadow.remove(&k).is_some());
                }
            }
            let expect: usize = shadow.values().sum();
            prop_assert_eq!(store.stats().resident_bytes as usize, expect);
            prop_assert!(store.stats().peak_bytes as usize >= expect);
        }
        prop_assert_eq!(store.stats().peak_bytes as usize, peak);
    }

    /// A bounded store never exceeds its capacity, and a failed put leaves
    /// the store unchanged.
    #[test]
    fn bounded_store_never_overflows(cap in 64u64..512, ops in arb_ops()) {
        let store = ObjectStore::bounded("bounded", cap);
        for op in ops {
            if let Op::Put(k, n) = op {
                let before = store.stats();
                match store.put(format!("k{k}"), Bytes::from(vec![0u8; n])) {
                    Ok(()) => prop_assert!(store.stats().resident_bytes <= cap),
                    Err(StoreError::CapacityExceeded { .. }) => {
                        let after = store.stats();
                        prop_assert_eq!(before.resident_bytes, after.resident_bytes);
                        prop_assert_eq!(before.puts, after.puts);
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
    }
}
