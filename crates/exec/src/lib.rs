#![warn(missing_docs)]

//! # ditto-exec — execution engines for scheduled jobs
//!
//! Two execution paths, sharing the `Schedule` produced by `ditto-core`:
//!
//! * **Simulation** ([`sim`]): a discrete-event simulator that plays a
//!   schedule against a *ground-truth* performance model
//!   ([`groundtruth`]) — per-task data skew, deterministic straggler
//!   noise, medium-dependent transfer times (shared memory / Redis / S3).
//!   The ground truth deliberately differs from the scheduler's fitted
//!   `α/d + β` model the way reality differs from a regression: that gap
//!   is what the paper's Fig. 11 measures. The simulator yields the JCT,
//!   cost and per-task timeline ([`trace`]) behind every evaluation
//!   figure.
//! * **Local runtime** ([`runner`]): a real multi-threaded executor that
//!   physically runs a `ditto-sql` query plan under a schedule — tasks on
//!   worker threads, intermediate tables encoded through the
//!   `ditto-storage` data plane (zero-copy shared-memory bus when the
//!   schedule co-locates, object store otherwise). It exists to prove the
//!   scheduling machinery drives a working analytics system, and to
//!   cross-check distributed results against single-threaded references.
//!
//! Both engines consume the same fault vocabulary ([`faults`]): a
//! deterministic seed-driven [`FaultPlan`] (task crashes, stragglers,
//! whole-server failures) plus a [`RecoveryPolicy`] (bounded retry with
//! backoff, speculative re-execution, failure-aware rescheduling through
//! the joint optimizer). Typed failures are [`error::ExecError`].
//!
//! [`profile`] generates recurring-job profiles by "running" stages at a
//! few DoPs in the simulator — the input to `ditto-timemodel`'s fitting
//! (Table 2) and the accuracy experiment (Fig. 11).

pub mod adaptive;
pub mod error;
pub mod explore;
pub mod faults;
pub mod groundtruth;
pub mod journal;
pub mod metrics;
pub mod multi;
pub mod profile;
pub(crate) mod queue;
pub mod runner;
pub mod sim;
pub mod trace;

pub use adaptive::{
    try_simulate_adaptive, try_simulate_adaptive_traced, AdaptiveConfig, ReplanRecord,
    ReplanTrigger,
};
pub use error::ExecError;
pub use explore::{explore_random_dags, explore_schedule, Divergence, ExploreConfig, ExploreOutcome};
pub use faults::{
    try_simulate_with_faults, try_simulate_with_faults_traced, AttemptOutcome, AttemptRecord,
    FaultEvent, FaultPlan, FaultRates, FaultStats, RecoveryPolicy, ReschedulingContext,
};
pub use groundtruth::{ExecConfig, GroundTruth};
pub use journal::{
    compact_journal, cross_check, decode_journal, recover, schedule_fingerprint,
    try_simulate_adaptive_journaled, try_simulate_with_faults_journaled, validate_journal,
    DecodedJournal, EngineKind, JournalRecord, JournalSession, JournalWriter, LineageHit,
    ResumedJob, StageCheckpoint, TornReason, TornTail,
};
pub use metrics::JobMetrics;
pub use profile::profile_job;
pub use runner::LocalRuntime;
pub use sim::{simulate, simulate_traced, try_simulate};
pub use trace::{ExecutionTrace, StageBreakdown, TaskTrace};
