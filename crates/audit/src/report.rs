//! Typed audit findings and the report they roll up into.

use std::fmt;

/// How bad a finding is.
///
/// `Error` means the schedule violates an invariant the paper (or this
/// codebase) guarantees — executing it would oversubscribe a server, read
/// a shuffle over shared memory that is not actually shared, or run DoPs
/// that are not the Algorithm-1 optimum it claims to be. `Warning` marks
/// conditions that are legal but worth a look (a multi-sink DAG, a stage
/// with zero parallelizable work, an unexploited co-location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not a correctness violation.
    Warning,
    /// A broken invariant; the schedule must not be trusted.
    Error,
}

impl Severity {
    /// Stable lowercase name (used in JSON and the rendered report).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Which invariant a finding is about. One variant per certificate the
/// auditor emits; the DESIGN.md §6f table maps each to its paper equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckId {
    /// DAG structural sanity: acyclic, non-empty, aligned vector lengths.
    Structure,
    /// Every stage in exactly one group; `group_of` consistent with `groups`.
    GroupPartition,
    /// Each multi-stage group is connected through DAG edges (Algorithm 2
    /// only ever merges along an edge).
    GroupConnectivity,
    /// A co-located edge's endpoints share a group *and* a server set, so
    /// the zero-copy shared-memory claim is realizable.
    ColocationClaim,
    /// A spread placement covers exactly the stage's DoP.
    PlacementCoverage,
    /// No server hosts more tasks than it had free slots (Algorithm 3).
    SlotCapacity,
    /// Σ DoP within the slot budget `max(C, #stages)` (§4.5 rounding).
    SlotBudget,
    /// Per-stage / per-subtree DoP agrees with the independently re-derived
    /// Algorithm-1 optimum within rounding tolerance (Eq. 3/4, §4.2).
    DopRatio,
    /// Positive, finite α/β and scaling ≥ 1 in the time model.
    ModelSanity,
    /// Predicted JCT within the caller-supplied deadline.
    Deadline,
    /// Predicted cost within the caller-supplied GB·s budget.
    CostBudget,
}

impl CheckId {
    /// Stable kebab-case name (used in JSON and the rendered report).
    pub fn as_str(&self) -> &'static str {
        match self {
            CheckId::Structure => "structure",
            CheckId::GroupPartition => "group-partition",
            CheckId::GroupConnectivity => "group-connectivity",
            CheckId::ColocationClaim => "colocation-claim",
            CheckId::PlacementCoverage => "placement-coverage",
            CheckId::SlotCapacity => "slot-capacity",
            CheckId::SlotBudget => "slot-budget",
            CheckId::DopRatio => "dop-ratio",
            CheckId::ModelSanity => "model-sanity",
            CheckId::Deadline => "deadline",
            CheckId::CostBudget => "cost-budget",
        }
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One violated (or suspicious) invariant, with provenance: which stage,
/// edge and/or server the violation is anchored at.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    /// The invariant this certificate checks.
    pub check: CheckId,
    /// Error (broken invariant) or warning (legal but suspicious).
    pub severity: Severity,
    /// Offending stage index, if the finding is stage-anchored.
    pub stage: Option<u32>,
    /// Offending edge index, if edge-anchored.
    pub edge: Option<u32>,
    /// Offending server index, if server-anchored.
    pub server: Option<u32>,
    /// Human-readable explanation with the measured vs certified values.
    pub detail: String,
}

impl AuditFinding {
    /// An error finding with no provenance (filled in by builder methods).
    pub fn error(check: CheckId, detail: impl Into<String>) -> Self {
        AuditFinding {
            check,
            severity: Severity::Error,
            stage: None,
            edge: None,
            server: None,
            detail: detail.into(),
        }
    }

    /// A warning finding with no provenance.
    pub fn warning(check: CheckId, detail: impl Into<String>) -> Self {
        AuditFinding {
            severity: Severity::Warning,
            ..AuditFinding::error(check, detail)
        }
    }

    /// Anchor at a stage.
    pub fn at_stage(mut self, stage: u32) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Anchor at an edge.
    pub fn at_edge(mut self, edge: u32) -> Self {
        self.edge = Some(edge);
        self
    }

    /// Anchor at a server.
    pub fn at_server(mut self, server: u32) -> Self {
        self.server = Some(server);
        self
    }
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.severity.as_str(), self.check)?;
        if let Some(s) = self.stage {
            write!(f, " stage={s}")?;
        }
        if let Some(e) = self.edge {
            write!(f, " edge={e}")?;
        }
        if let Some(srv) = self.server {
            write!(f, " server={srv}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The auditor's output: all findings plus the count of checks that ran
/// (so "zero findings" can be told apart from "nothing was checked").
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Every finding, in deterministic (check, stage, edge) order of
    /// discovery.
    pub findings: Vec<AuditFinding>,
    /// Certificates evaluated, including the ones that passed.
    pub checks_run: usize,
}

impl AuditReport {
    /// No error-severity findings (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.findings.extend(other.findings);
        self.checks_run += other.checks_run;
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit: {} checks, {} errors, {} warnings",
            self.checks_run,
            self.error_count(),
            self.warning_count()
        );
        for fnd in &self.findings {
            let _ = writeln!(out, "  {fnd}");
        }
        out
    }

    /// The report as a JSON document (machine-checkable certificate form).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"checks_run\":{},\"errors\":{},\"warnings\":{},\"findings\":[",
            self.checks_run,
            self.error_count(),
            self.warning_count()
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"check\":\"{}\",\"severity\":\"{}\"",
                f.check.as_str(),
                f.severity.as_str()
            );
            if let Some(s) = f.stage {
                let _ = write!(out, ",\"stage\":{s}");
            }
            if let Some(e) = f.edge {
                let _ = write!(out, ",\"edge\":{e}");
            }
            if let Some(srv) = f.server {
                let _ = write!(out, ",\"server\":{srv}");
            }
            let _ = write!(out, ",\"detail\":\"{}\"}}", json_escape(&f.detail));
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_render() {
        let mut r = AuditReport {
            checks_run: 5,
            ..Default::default()
        };
        r.findings.push(
            AuditFinding::error(CheckId::SlotCapacity, "server 2 hosts 97 tasks, 96 free")
                .at_server(2)
                .at_stage(4),
        );
        r.findings
            .push(AuditFinding::warning(CheckId::Structure, "2 sink stages"));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        let text = r.render();
        assert!(text.contains("slot-capacity"), "{text}");
        assert!(text.contains("server=2"), "{text}");
        assert!(text.contains("stage=4"), "{text}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = AuditReport {
            checks_run: 1,
            ..Default::default()
        };
        r.findings.push(
            AuditFinding::error(CheckId::ColocationClaim, "stage \"map\\1\"\nbad").at_edge(3),
        );
        let j = r.to_json();
        assert!(j.contains("\\\"map\\\\1\\\"\\nbad"), "{j}");
        assert!(j.contains("\"edge\":3"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn clean_report() {
        let r = AuditReport {
            findings: vec![],
            checks_run: 10,
        };
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"findings\":[]"));
    }
}
