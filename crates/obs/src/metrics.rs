//! Metrics registry: counters, gauges, log-scale histograms.
//!
//! Metrics are keyed by a static metric name plus a free-form series
//! label (`("storage.bytes", "s3")`, `("task.duration", "stage2")`).
//! Histograms are log₂-bucketed (4 buckets per octave) so p50/p95/p99
//! come out within ±9% of the true quantile over ~19 orders of
//! magnitude with a fixed 256-slot footprint.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Number of histogram buckets.
const BUCKETS: usize = 256;
/// Buckets per octave (powers of two).
const PER_OCTAVE: f64 = 4.0;
/// Bucket index of value 1.0 (allows sub-1.0 values down to ~2^-32).
const ONE_IDX: f64 = 128.0;

/// What kind of metric a [`MetricSnapshot`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum of increments.
    Counter,
    /// Last-written value.
    Gauge,
    /// Log-scale distribution of observed values.
    Histogram,
}

impl MetricKind {
    /// Lower-case name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Fixed-footprint log-scale histogram.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        let idx = (v.log2() * PER_OCTAVE).floor() + ONE_IDX;
        idx.clamp(0.0, (BUCKETS - 1) as f64) as usize
    }

    /// Geometric midpoint of a bucket — the value reported for quantiles.
    fn bucket_mid(idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        ((idx as f64 - ONE_IDX + 0.5) / PER_OCTAVE).exp2()
    }

    /// Record one value (non-positive / non-finite values land in bucket 0).
    pub fn observe(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest finite observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            0.0
        }
    }

    /// Largest finite observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket geometric midpoint).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_mid(idx);
            }
        }
        self.max()
    }
}

enum Metric {
    Counter(f64),
    Gauge(f64),
    Histogram(LogHistogram),
}

/// Point-in-time view of one metric series.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Series label ("" when unlabelled).
    pub series: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Counter total, gauge value, or histogram sum.
    pub value: f64,
    /// Histogram observation count (0 for counters/gauges).
    pub count: u64,
    /// Histogram p50 (0 for counters/gauges).
    pub p50: f64,
    /// Histogram p95 (0 for counters/gauges).
    pub p95: f64,
    /// Histogram p99 (0 for counters/gauges).
    pub p99: f64,
    /// Histogram max (0 for counters/gauges).
    pub max: f64,
}

/// Thread-safe registry of counters, gauges and histograms.
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<(&'static str, String), Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Add `delta` to a counter; returns the new total.
    pub fn counter_add(&self, name: &'static str, series: &str, delta: f64) -> f64 {
        let mut m = self.metrics.lock();
        let entry = m
            .entry((name, series.to_string()))
            .or_insert(Metric::Counter(0.0));
        match entry {
            Metric::Counter(total) => {
                *total += delta;
                *total
            }
            _ => delta,
        }
    }

    /// Read a counter total (0 when absent).
    pub fn counter_value(&self, name: &'static str, series: &str) -> f64 {
        match self.metrics.lock().get(&(name, series.to_string())) {
            Some(Metric::Counter(total)) => *total,
            _ => 0.0,
        }
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &'static str, series: &str, value: f64) {
        self.metrics
            .lock()
            .insert((name, series.to_string()), Metric::Gauge(value));
    }

    /// Observe a histogram value.
    pub fn observe(&self, name: &'static str, series: &str, value: f64) {
        let mut m = self.metrics.lock();
        let entry = m
            .entry((name, series.to_string()))
            .or_insert_with(|| Metric::Histogram(LogHistogram::new()));
        if let Metric::Histogram(h) = entry {
            h.observe(value);
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.lock().is_empty()
    }

    /// Snapshot every series, sorted by (name, series).
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        self.metrics
            .lock()
            .iter()
            .map(|((name, series), metric)| match metric {
                Metric::Counter(total) => MetricSnapshot {
                    name,
                    series: series.clone(),
                    kind: MetricKind::Counter,
                    value: *total,
                    count: 0,
                    p50: 0.0,
                    p95: 0.0,
                    p99: 0.0,
                    max: 0.0,
                },
                Metric::Gauge(v) => MetricSnapshot {
                    name,
                    series: series.clone(),
                    kind: MetricKind::Gauge,
                    value: *v,
                    count: 0,
                    p50: 0.0,
                    p95: 0.0,
                    p99: 0.0,
                    max: 0.0,
                },
                Metric::Histogram(h) => MetricSnapshot {
                    name,
                    series: series.clone(),
                    kind: MetricKind::Histogram,
                    value: h.sum(),
                    count: h.count(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                    max: h.max(),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.counter_add("bytes", "s3", 10.0), 10.0);
        assert_eq!(reg.counter_add("bytes", "s3", 5.0), 15.0);
        assert_eq!(reg.counter_add("bytes", "redis", 1.0), 1.0);
        assert_eq!(reg.counter_value("bytes", "s3"), 15.0);
        assert_eq!(reg.counter_value("bytes", "missing"), 0.0);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].series, "redis"); // BTreeMap order
        assert_eq!(snap[1].value, 15.0);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("dop", "stage0", 8.0);
        reg.gauge_set("dop", "stage0", 4.0);
        let snap = reg.snapshot();
        assert_eq!(snap[0].kind, MetricKind::Gauge);
        assert_eq!(snap[0].value, 4.0);
    }

    #[test]
    fn histogram_quantiles_are_log_accurate() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 / 100.0); // 0.01 .. 10.0
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 5.005).abs() < 1e-9);
        // Bucket width is 2^(1/4) ≈ 1.19; midpoint readout error ≤ ~9%.
        let p50 = h.quantile(0.50);
        assert!((p50 / 5.0 - 1.0).abs() < 0.10, "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 / 9.9 - 1.0).abs() < 0.10, "p99={p99}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        assert_eq!(h.min(), 0.01);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn histogram_edge_cases() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        let mut h = LogHistogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), 0.0); // all in the underflow bucket
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", "", 1.0);
        reg.gauge_set("g", "", 2.0);
        reg.observe("h", "", 4.0);
        reg.observe("h", "", 4.0);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 3);
        let h = snap.iter().find(|s| s.name == "h").unwrap();
        assert_eq!(h.kind, MetricKind::Histogram);
        assert_eq!(h.count, 2);
        assert!((h.p50 / 4.0 - 1.0).abs() < 0.10);
        assert_eq!(h.max, 4.0);
    }
}
