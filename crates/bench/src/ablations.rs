//! Ablations of Ditto's design choices (DESIGN.md §6).
//!
//! Each function isolates one decision and compares it against the
//! alternatives the paper implicitly rejects:
//!
//! * the **√-ratio** for consecutive stages (vs linear-in-α and even
//!   splits) — the Appendix A.1 optimality, measured end to end;
//! * the **critical-path-aware greedy order** (vs globally descending and
//!   random orders) in grouping;
//! * **gather decomposition** of stage groups (vs whole-group placement
//!   only) under tight clusters;
//! * the **straggler scaling factor** in the fitted model (vs ignoring
//!   straggler evidence);
//! * **joint iterative optimization** (vs one-shot group-then-DoP).

use crate::setup::{prepare, PreparedQuery};
use ditto_cluster::ResourceManager;
use ditto_core::dop::{compute_dop, round_dops};
use ditto_core::grouping::{greedy_group_order, StageGroups};
use ditto_core::joint::{joint_optimize, GroupOrderPolicy, JointOptions};
use ditto_core::placement::can_place;
use ditto_core::predict::predicted_jct;
use ditto_core::{Objective, Schedule};
use ditto_dag::EdgeId;
use ditto_exec::simulate;
use ditto_sql::queries::Query;
use ditto_storage::Medium;
use serde::Serialize;

/// One ablation measurement.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Which design axis.
    pub ablation: String,
    /// The variant measured.
    pub variant: String,
    /// Simulated (or predicted, for the ratio ablation) JCT, seconds.
    pub jct_seconds: f64,
}

fn zipf_testbed() -> ResourceManager {
    crate::setup::default_testbed()
}

/// Intra-path ratio ablation: √α-proportional vs α-proportional vs even
/// DoP splits on Q95 (predicted JCT under the fitted model, all-remote).
pub fn ablate_intra_ratio() -> Vec<AblationRow> {
    let p = prepare(Query::Q95, Medium::S3);
    let dag = &p.plan.dag;
    let none = p.model.no_colocation();
    let c = zipf_testbed().total_free();
    let alphas: Vec<f64> = dag
        .stages()
        .iter()
        .map(|s| p.model.stage_alpha(dag, s.id, &none))
        .collect();

    let weights_to_jct = |w: &[f64], label: &str| -> AblationRow {
        let total: f64 = w.iter().sum();
        let frac: Vec<f64> = w.iter().map(|x| x / total * c as f64).collect();
        AblationRow {
            ablation: "intra-ratio".into(),
            variant: label.into(),
            jct_seconds: predicted_jct(dag, &p.model, &frac, &none),
        }
    };

    let sqrt_w: Vec<f64> = alphas.iter().map(|a| a.sqrt()).collect();
    let linear_w = alphas.clone();
    let even_w = vec![1.0; alphas.len()];
    // The real Ditto assignment (merge-tree, not a plain normalization).
    let ditto = compute_dop(dag, &p.model, &none, Objective::Jct, c);

    vec![
        AblationRow {
            ablation: "intra-ratio".into(),
            variant: "ditto-merge-tree".into(),
            jct_seconds: predicted_jct(dag, &p.model, &ditto.fractional, &none),
        },
        weights_to_jct(&sqrt_w, "sqrt-alpha"),
        weights_to_jct(&linear_w, "linear-alpha (data size)"),
        weights_to_jct(&even_w, "even"),
    ]
}

/// One-shot grouping with a fixed edge order (grouping ablations):
/// try each edge once under the *initial* DoPs, then recompute DoPs for
/// the final mask.
fn oneshot_with_order(p: &PreparedQuery, rm: &ResourceManager, order: &[EdgeId]) -> Schedule {
    let dag = &p.plan.dag;
    let n = dag.num_stages();
    let c = rm.total_free();
    let base = compute_dop(dag, &p.model, &p.model.no_colocation(), Objective::Jct, c);
    let mut groups = StageGroups::singletons(n);
    for &e in order {
        let edge = dag.edge(e);
        let mut trial = groups.clone();
        trial.union(edge.src, edge.dst);
        if can_place(dag, &base.dop, &trial, rm, true).is_some() {
            groups = trial;
        }
    }
    let mask = groups.colocation_mask(dag);
    let a = compute_dop(dag, &p.model, &mask, Objective::Jct, c);
    let dop = round_dops(&a.fractional, c);
    let plan = can_place(dag, &dop, &groups, rm, true)
        .or_else(|| can_place(dag, &base.dop, &groups, rm, true))
        .expect("some placement exists");
    Schedule {
        scheduler: "ablation".into(),
        dop: if can_place(dag, &dop, &groups, rm, true).is_some() {
            dop
        } else {
            base.dop
        },
        group_of: groups.group_of(n),
        groups: groups.groups(n),
        colocated: mask,
        placement: plan.stage_placement,
    }
}

/// Grouping-order ablation on Q95: the full joint optimizer run with the
/// critical-path-aware greedy order vs globally descending vs random
/// orders, plus no grouping at all (simulated JCT). Random is averaged
/// over several seeds.
pub fn ablate_group_order() -> Vec<AblationRow> {
    let p = prepare(Query::Q95, Medium::S3);
    let dag = &p.plan.dag;
    let rm = zipf_testbed();

    let run_policy = |policy: GroupOrderPolicy| -> f64 {
        let opts = JointOptions {
            order_policy: policy,
            ..Default::default()
        };
        let schedule = joint_optimize(dag, &p.model, &rm, Objective::Jct, &opts);
        simulate(dag, &schedule, &p.gt).1.jct
    };

    let random_mean = (0..5u64)
        .map(|seed| run_policy(GroupOrderPolicy::Random(seed)))
        .sum::<f64>()
        / 5.0;
    // No grouping = NIMBLE+DoP's configuration.
    let none = {
        let c = rm.total_free();
        let base = compute_dop(dag, &p.model, &p.model.no_colocation(), Objective::Jct, c);
        let schedule = oneshot_with_order(&p, &rm, &[]);
        debug_assert_eq!(schedule.dop.len(), base.dop.len());
        simulate(dag, &schedule, &p.gt).1.jct
    };

    vec![
        AblationRow {
            ablation: "group-order".into(),
            variant: "critical-path (ditto)".into(),
            jct_seconds: run_policy(GroupOrderPolicy::Greedy),
        },
        AblationRow {
            ablation: "group-order".into(),
            variant: "global-descending".into(),
            jct_seconds: run_policy(GroupOrderPolicy::GlobalDescending),
        },
        AblationRow {
            ablation: "group-order".into(),
            variant: "random (mean of 5 seeds)".into(),
            jct_seconds: random_mean,
        },
        AblationRow {
            ablation: "group-order".into(),
            variant: "none".into(),
            jct_seconds: none,
        },
    ]
}

/// One gather-decomposition measurement: JCT plus how many edges the
/// placement managed to co-locate.
#[derive(Debug, Clone, Serialize)]
pub struct DecompositionRow {
    /// `on` (Ditto) or `off`.
    pub variant: String,
    /// Simulated JCT, seconds.
    pub jct_seconds: f64,
    /// Edges whose shuffle runs through shared memory.
    pub colocated_edges: usize,
}

/// Gather-decomposition ablation: Ditto with and without §4.5's task-group
/// decomposition under a tight cluster (many small servers). Decomposition
/// strictly widens the set of placeable groupings, so the `on` variant
/// co-locates at least as many edges; the JCT effect depends on how much
/// of the shuffle volume those extra edges carry.
pub fn ablate_gather_decomposition() -> Vec<DecompositionRow> {
    let p = prepare(Query::Q95, Medium::S3);
    // 16 small servers: whole groups rarely fit one server.
    let rm = ResourceManager::from_free_slots(vec![24; 16]);
    [true, false]
        .iter()
        .map(|&on| {
            let opts = JointOptions {
                gather_decomposition: on,
                ..Default::default()
            };
            let schedule = joint_optimize(&p.plan.dag, &p.model, &rm, Objective::Jct, &opts);
            let (_, m) = simulate(&p.plan.dag, &schedule, &p.gt);
            DecompositionRow {
                variant: if on { "on (ditto)" } else { "off" }.into(),
                jct_seconds: m.jct,
                colocated_edges: schedule.colocated.iter().filter(|&&c| c).count(),
            }
        })
        .collect()
}

/// Straggler-scaling ablation: model accuracy (mean relative error of
/// stage-time prediction at DoP 60) with and without the fitted scaling
/// factor. `jct_seconds` carries the mean relative error here.
pub fn ablate_straggler_scaling() -> Vec<AblationRow> {
    let p = prepare(Query::Q95, Medium::S3);
    let dag = &p.plan.dag;
    let none = p.model.no_colocation();
    let mut unscaled = p.model.clone();
    for s in dag.stages() {
        unscaled.set_scaling(s.id, 1.0);
    }
    let probe = ditto_exec::profile::probe_schedule(dag, 60);
    let mean_err = |model: &ditto_timemodel::JobTimeModel| -> f64 {
        let errs: Vec<f64> = dag
            .stages()
            .iter()
            .map(|s| {
                // The stage time is its slowest task (§4.1): compare the
                // straggler-aware prediction against the ground-truth max.
                let actual = p
                    .gt
                    .stage_tasks(dag, &probe, s.id)
                    .iter()
                    .map(|t| t.read + t.compute + t.write)
                    .fold(0.0, f64::max);
                let predicted = model.exec_time(dag, s.id, 60.0, &none);
                (predicted - actual).abs() / actual.max(1e-9)
            })
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    };
    vec![
        AblationRow {
            ablation: "straggler-scaling".into(),
            variant: "scaled (ditto)".into(),
            jct_seconds: mean_err(&p.model),
        },
        AblationRow {
            ablation: "straggler-scaling".into(),
            variant: "unscaled".into(),
            jct_seconds: mean_err(&unscaled),
        },
    ]
}

/// Joint-vs-one-shot ablation: Algorithm 3's iterative recomputation vs
/// grouping once under initial DoPs (simulated JCT, Q95, Zipf-0.9).
pub fn ablate_joint_vs_oneshot() -> Vec<AblationRow> {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = zipf_testbed();
    let joint = joint_optimize(
        &p.plan.dag,
        &p.model,
        &rm,
        Objective::Jct,
        &JointOptions::default(),
    );
    let (_, mj) = simulate(&p.plan.dag, &joint, &p.gt);
    let base = compute_dop(
        &p.plan.dag,
        &p.model,
        &p.model.no_colocation(),
        Objective::Jct,
        rm.total_free(),
    );
    let order = greedy_group_order(
        &p.plan.dag,
        &p.model,
        &base.dop,
        &p.model.no_colocation(),
        Objective::Jct,
    );
    let oneshot = oneshot_with_order(&p, &rm, &order);
    let (_, mo) = simulate(&p.plan.dag, &oneshot, &p.gt);
    vec![
        AblationRow {
            ablation: "joint-vs-oneshot".into(),
            variant: "joint iterative (ditto)".into(),
            jct_seconds: mj.jct,
        },
        AblationRow {
            ablation: "joint-vs-oneshot".into(),
            variant: "one-shot".into(),
            jct_seconds: mo.jct,
        },
    ]
}

/// Pipelining ablation (§4.5): Q95 with its gather edges annotated as
/// pipelined vs un-annotated (simulated JCT, Zipf-0.9).
pub fn ablate_pipelining() -> Vec<AblationRow> {
    let rm = zipf_testbed();
    [false, true]
        .iter()
        .map(|&piped| {
            let db = ditto_sql::Database::generate(ditto_sql::ScaleConfig::with_sf(
                crate::setup::EXPERIMENT_SF,
            ));
            let mut plan = Query::Q95.prepared_plan(&db);
            plan.scale_volumes(crate::setup::VOLUME_SCALE);
            if piped {
                plan.annotate_gather_pipelining();
            }
            let gt = ditto_exec::GroundTruth::new(ditto_exec::ExecConfig::default());
            let profile = ditto_exec::profile_job(&plan.dag, &gt, &crate::setup::PROFILE_DOPS);
            let (model, _) = profile.build_model(&plan.dag);
            let schedule =
                joint_optimize(&plan.dag, &model, &rm, Objective::Jct, &JointOptions::default());
            let (_, m) = simulate(&plan.dag, &schedule, &gt);
            AblationRow {
                ablation: "pipelining".into(),
                variant: if piped {
                    "gather edges pipelined"
                } else {
                    "no pipelining"
                }
                .into(),
                jct_seconds: m.jct,
            }
        })
        .collect()
}

/// Placement-fit ablation: best fit (§4.4) vs first fit vs worst fit,
/// full joint optimization on Q95 (simulated JCT, Zipf-0.9).
pub fn ablate_fit_strategy() -> Vec<AblationRow> {
    use ditto_core::FitStrategy;
    let p = prepare(Query::Q95, Medium::S3);
    let rm = zipf_testbed();
    [
        ("best-fit (ditto)", FitStrategy::BestFit),
        ("first-fit", FitStrategy::FirstFit),
        ("worst-fit", FitStrategy::WorstFit),
    ]
    .iter()
    .map(|&(label, strategy)| {
        let opts = JointOptions {
            fit_strategy: strategy,
            ..Default::default()
        };
        let schedule = joint_optimize(&p.plan.dag, &p.model, &rm, Objective::Jct, &opts);
        let (_, m) = simulate(&p.plan.dag, &schedule, &p.gt);
        AblationRow {
            ablation: "fit-strategy".into(),
            variant: label.into(),
            jct_seconds: m.jct,
        }
    })
    .collect()
}

/// Rounding ablation: the paper's floor-and-clamp vs the
/// largest-remainder extension that spends every leftover slot
/// (predicted JCT of the resulting integer DoPs, all-remote).
pub fn ablate_rounding() -> Vec<AblationRow> {
    use ditto_core::dop::round_dops_largest_remainder;
    let p = prepare(Query::Q95, Medium::S3);
    let dag = &p.plan.dag;
    let none = p.model.no_colocation();
    let c = zipf_testbed().total_free();
    let a = compute_dop(dag, &p.model, &none, Objective::Jct, c);
    let floor = round_dops(&a.fractional, c);
    let remainder = round_dops_largest_remainder(&a.fractional, c);
    let as_f64 = |v: &[u32]| v.iter().map(|&d| d as f64).collect::<Vec<_>>();
    vec![
        AblationRow {
            ablation: "rounding".into(),
            variant: format!("floor (paper), {} slots", floor.iter().sum::<u32>()),
            jct_seconds: predicted_jct(dag, &p.model, &as_f64(&floor), &none),
        },
        AblationRow {
            ablation: "rounding".into(),
            variant: format!("largest-remainder, {} slots", remainder.iter().sum::<u32>()),
            jct_seconds: predicted_jct(dag, &p.model, &as_f64(&remainder), &none),
        },
    ]
}

/// All JCT-valued ablations in one list (for the `figures` binary; the
/// decomposition ablation reports extra columns and prints separately).
pub fn all_ablations() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    rows.extend(ablate_intra_ratio());
    rows.extend(ablate_group_order());
    for d in ablate_gather_decomposition() {
        rows.push(AblationRow {
            ablation: format!("gather-decomposition ({} colocated edges)", d.colocated_edges),
            variant: d.variant,
            jct_seconds: d.jct_seconds,
        });
    }
    rows.extend(ablate_straggler_scaling());
    rows.extend(ablate_joint_vs_oneshot());
    rows.extend(ablate_pipelining());
    rows.extend(ablate_fit_strategy());
    rows.extend(ablate_rounding());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jct_of(rows: &[AblationRow], variant: &str) -> f64 {
        rows.iter()
            .find(|r| r.variant.starts_with(variant))
            .unwrap_or_else(|| panic!("variant {variant} missing"))
            .jct_seconds
    }

    #[test]
    fn merge_tree_beats_linear_and_even() {
        let rows = ablate_intra_ratio();
        let ditto = jct_of(&rows, "ditto-merge-tree");
        assert!(ditto <= jct_of(&rows, "linear-alpha") + 1e-9);
        assert!(ditto <= jct_of(&rows, "even") + 1e-9);
    }

    #[test]
    fn grouping_beats_none() {
        let rows = ablate_group_order();
        let cp = jct_of(&rows, "critical-path");
        assert!(cp <= jct_of(&rows, "none") + 1e-9);
    }

    #[test]
    fn decomposition_widens_placement() {
        // End-to-end the greedy loop is path-dependent (the first commit
        // changes every later feasibility check), so compare JCT loosely…
        let rows = ablate_gather_decomposition();
        let on = rows.iter().find(|r| r.variant.starts_with("on")).unwrap();
        let off = rows.iter().find(|r| r.variant == "off").unwrap();
        assert!(on.jct_seconds <= off.jct_seconds * 1.05);

        // …and verify the *placement-level* guarantee directly: a gather
        // group too big for any server places only with decomposition.
        let dag = ditto_dag::generators::q95_shape();
        let mut groups = StageGroups::singletons(dag.num_stages());
        // reduce1 (id 3) and join1 (id 5) are joined by a gather edge.
        groups.union(ditto_dag::StageId(3), ditto_dag::StageId(5));
        let mut dop = vec![1u32; dag.num_stages()];
        dop[3] = 20;
        dop[5] = 20; // group needs 40 slots; servers have 24
        let rm = ResourceManager::from_free_slots(vec![24; 16]);
        assert!(can_place(&dag, &dop, &groups, &rm, true).is_some());
        assert!(can_place(&dag, &dop, &groups, &rm, false).is_none());
    }

    #[test]
    fn scaling_improves_straggler_prediction() {
        let rows = ablate_straggler_scaling();
        assert!(jct_of(&rows, "scaled") <= jct_of(&rows, "unscaled") + 1e-9);
    }

    #[test]
    fn joint_not_worse_than_oneshot() {
        let rows = ablate_joint_vs_oneshot();
        // Allow small tolerance: rounding can favour either slightly.
        assert!(jct_of(&rows, "joint") <= jct_of(&rows, "one-shot") * 1.05);
    }

    #[test]
    fn pipelining_helps() {
        let rows = ablate_pipelining();
        assert!(jct_of(&rows, "gather edges pipelined") <= jct_of(&rows, "no pipelining") + 1e-9);
    }

    #[test]
    fn best_fit_competitive() {
        let rows = ablate_fit_strategy();
        let best = jct_of(&rows, "best-fit");
        for v in ["first-fit", "worst-fit"] {
            assert!(best <= jct_of(&rows, v) * 1.10, "{v} dramatically beat best-fit");
        }
    }

    #[test]
    fn largest_remainder_not_worse() {
        let rows = ablate_rounding();
        assert!(jct_of(&rows, "largest-remainder") <= jct_of(&rows, "floor") + 1e-9);
    }
}
