//! SQL data-plane benchmark: vectorized columnar kernels vs the retained
//! row-at-a-time reference implementations, plus the end-to-end effect on
//! the local runtime.
//!
//! Two tiers, both deterministic in everything except wall time:
//!
//! * **micro** — join (i64 and dictionary-string keys), group-by and
//!   fused partition+encode on synthetic tables of [`SQL_BENCH_ROWS`]
//!   rows, timing the vectorized kernel against the bit-identical
//!   reference from [`ditto_sql::reference`] (equivalence is proven in
//!   `crates/sql/tests/kernel_equivalence.rs`; this sweep measures only
//!   speed). The partition rows also report wire vs logical bytes — the
//!   codec's dictionary compression showing up as smaller frames.
//! * **e2e** — the five TPC-DS query plans through both single-node
//!   interpreters, plus a distributed [`LocalRuntime`] run (even-split
//!   schedule, 2×8 slots, S3 external medium) whose
//!   [`TransferLedger`](ditto_storage::TransferLedger)
//!   supplies shuffle wire bytes and pre-encoding logical bytes. The
//!   byte columns are placement- and codec-deterministic: two runs of
//!   the same sweep differ only in the `_ms` columns.
//!
//! `figures -- sqlbench` renders the full sweep and writes
//! `BENCH_sql.json`; `sqlbench-smoke` is the CI subset (smaller tables,
//! sf 0.2). The release-only test at the bottom enforces the ISSUE's
//! ≥3× floor on the join/group-by/partition micro-kernels at 1M rows.

use ditto_core::baselines::EvenSplitScheduler;
use ditto_core::{Objective, Scheduler, SchedulingContext};
use ditto_cluster::ResourceManager;
use ditto_exec::LocalRuntime;
use ditto_sql::column::{Column, DataType};
use ditto_sql::ops::group_by::{AggFunc, AggSpec};
use ditto_sql::ops::{group_by, hash_join, JoinKind};
use ditto_sql::queries::Query;
use ditto_sql::reference as refimpl;
use ditto_sql::{Database, ScaleConfig, Schema, Table};
use ditto_storage::{DataPlane, Medium};
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use serde::Serialize;
use std::time::Instant;

/// Rows in the micro-benchmark probe tables for the full sweep (the
/// build side is a quarter of this). Matches the ISSUE's ≥3× floor.
pub const SQL_BENCH_ROWS: usize = 1_000_000;
/// Micro rows for the CI smoke subset (debug-build friendly).
pub const SQL_SMOKE_ROWS: usize = 60_000;
/// Database scale factor for the full e2e tier.
pub const SQL_BENCH_SF: f64 = 0.5;
/// Database scale factor for the smoke e2e tier.
pub const SQL_SMOKE_SF: f64 = 0.2;

/// One benchmark measurement: a micro kernel or an e2e query.
#[derive(Debug, Clone, Serialize)]
pub struct SqlBenchRow {
    /// `join_i64`, `join_str`, `group_by`, `partition`, or `q1`…`q95`.
    pub op: String,
    /// Input rows (probe-side rows for joins, fact-table rows for e2e).
    pub rows: u64,
    /// Median wall time of the row-at-a-time reference, milliseconds.
    pub reference_ms: f64,
    /// Median wall time of the vectorized kernel, milliseconds.
    pub vectorized_ms: f64,
    /// `reference_ms / vectorized_ms`.
    pub speedup: f64,
    /// Distributed `LocalRuntime` wall time (e2e rows only), ms.
    pub runner_ms: f64,
    /// Encoded bytes on the wire (partition micro + e2e shuffles).
    pub wire_bytes: u64,
    /// Pre-encoding logical bytes the wire traffic carried.
    pub logical_bytes: u64,
}

/// splitmix64: the deterministic generator behind the micro tables.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A synthetic fact table in TPC-DS shape: an i64 key with ~8 rows per
/// key, a low-cardinality dimension-value string column (1024 distinct
/// customers — the shape dictionary encoding exists for), an i64 payload
/// and an f64 payload.
fn micro_table(n: usize, seed: u64) -> Table {
    let mut s = seed;
    let key_range = (n as u64 / 8).max(1);
    let mut k = Vec::with_capacity(n);
    let mut cust = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    let mut x = Vec::with_capacity(n);
    for _ in 0..n {
        let r = splitmix(&mut s);
        k.push((r % key_range) as i64);
        cust.push(format!("cust-{:04}", (r >> 16) % 1024));
        v.push((r >> 32) as i64 % 1000);
        x.push(((r >> 8) % 10_000) as f64 / 100.0);
    }
    Table::new(
        Schema::new(&[
            ("k", DataType::I64),
            ("cust", DataType::Str),
            ("v", DataType::I64),
            ("x", DataType::F64),
        ]),
        vec![
            Column::I64(k),
            Column::Str(cust),
            Column::I64(v),
            Column::F64(x),
        ],
    )
}

/// Median wall time of `iters` calls, in milliseconds.
fn timed_ms<F: FnMut()>(iters: usize, mut call: F) -> f64 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        call();
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Join inputs in the classic fact ⋈ dimension shape: a probe side of
/// `n` rows whose key column draws from `n/8` values (~8-row chains) and
/// a dimension build side with exactly those `n/8` keys, unique — so the
/// join output is exactly `n` rows and the measurement stays on the
/// hash-table build/probe, not on materializing a blown-up result.
fn join_tables(n: usize, string_key: bool) -> (Table, Table) {
    let mut s = 0xd177_05e3u64;
    let key_range = (n as u64 / 8).max(1);
    let key_col = |vals: Vec<i64>| -> (DataType, Column) {
        if string_key {
            (
                DataType::Str,
                Column::Str(vals.iter().map(|k| format!("cust-{k:07}")).collect()),
            )
        } else {
            (DataType::I64, Column::I64(vals))
        }
    };
    let mut pk = Vec::with_capacity(n);
    let mut pv = Vec::with_capacity(n);
    for _ in 0..n {
        let r = splitmix(&mut s);
        pk.push((r % key_range) as i64);
        pv.push((r >> 32) as i64 % 1000);
    }
    let (dt, kc) = key_col(pk);
    let probe = Table::new(
        Schema::new(&[("k", dt), ("v", DataType::I64)]),
        vec![kc, Column::I64(pv)],
    );
    let dim: Vec<i64> = (0..key_range as i64).collect();
    let weights = Column::I64(dim.iter().map(|k| k * 3 % 97).collect());
    let (dt, kc) = key_col(dim);
    let build = Table::new(
        Schema::new(&[("dk", dt), ("w", DataType::I64)]),
        vec![kc, weights],
    );
    (probe, build)
}

/// The micro tier: both implementations on identical tables.
fn micro_rows(n: usize, iters: usize) -> Vec<SqlBenchRow> {
    let probe = micro_table(n, 0xd177_05e1);
    let aggs = [
        AggSpec {
            func: AggFunc::Sum,
            input: "x".into(),
            output: "sum_x".into(),
        },
        AggSpec {
            func: AggFunc::Count,
            input: "v".into(),
            output: "cnt".into(),
        },
    ];
    let mut rows = Vec::new();
    let mut push = |op: &str, reference_ms: f64, vectorized_ms: f64, wire: u64, logical: u64| {
        rows.push(SqlBenchRow {
            op: op.to_string(),
            rows: n as u64,
            reference_ms,
            vectorized_ms,
            speedup: reference_ms / vectorized_ms,
            runner_ms: 0.0,
            wire_bytes: wire,
            logical_bytes: logical,
        });
    };

    for (op, string_key) in [("join_i64", false), ("join_str", true)] {
        let (jp, jb) = join_tables(n, string_key);
        let r = timed_ms(iters, || {
            std::hint::black_box(refimpl::hash_join_reference(
                &jp,
                &jb,
                "k",
                "dk",
                JoinKind::Inner,
            ));
        });
        let v = timed_ms(iters, || {
            std::hint::black_box(hash_join(&jp, &jb, "k", "dk", JoinKind::Inner));
        });
        push(op, r, v, 0, 0);
    }

    let r = timed_ms(iters, || {
        std::hint::black_box(refimpl::group_by_reference(&probe, &["k"], &aggs, None));
    });
    let v = timed_ms(iters, || {
        std::hint::black_box(group_by(&probe, &["k"], &aggs, None));
    });
    push("group_by", r, v, 0, 0);

    // Fused partition+encode vs the two-step reference (partition, then
    // encode each bucket with the v1 row-at-a-time codec).
    const BUCKETS: usize = 16;
    let r = timed_ms(iters, || {
        for p in refimpl::hash_partition_reference(&probe, "cust", BUCKETS) {
            std::hint::black_box(refimpl::encode_reference(&p));
        }
    });
    let v = timed_ms(iters, || {
        std::hint::black_box(probe.encode_partitions("cust", BUCKETS));
    });
    let encoded = probe.encode_partitions("cust", BUCKETS);
    let wire: u64 = encoded.iter().map(|p| p.data.len() as u64).sum();
    push("partition", r, v, wire, probe.byte_size());
    rows
}

/// The e2e tier: the five query plans through both interpreters, plus a
/// distributed even-split run whose ledger supplies the byte columns.
fn e2e_rows(sf: f64) -> Vec<SqlBenchRow> {
    let db = Database::generate(ScaleConfig::with_sf(sf));
    let mut rows = Vec::new();
    for q in Query::all_extended() {
        let plan = q.prepared_plan(&db);
        let reference_ms = {
            let start = Instant::now();
            std::hint::black_box(refimpl::execute_plan_reference(&plan, &db));
            start.elapsed().as_secs_f64() * 1e3
        };
        let vectorized_ms = {
            let start = Instant::now();
            std::hint::black_box(plan.execute_reference(&db));
            start.elapsed().as_secs_f64() * 1e3
        };
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![8, 8]);
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let dataplane = DataPlane::new(Medium::S3, 2);
        let out = LocalRuntime::new().execute(&plan, &db, &schedule, &dataplane);
        let l = out.ledger;
        let (wire, logical) = [l.shared_memory, l.redis, l.s3]
            .iter()
            .fold((0u64, 0u64), |(w, g), m| {
                (w + m.bytes_in, g + m.logical_bytes)
            });
        rows.push(SqlBenchRow {
            op: q.name().to_string(),
            rows: db.table("store_sales").num_rows() as u64,
            reference_ms,
            vectorized_ms,
            speedup: reference_ms / vectorized_ms,
            runner_ms: out.wall_seconds * 1e3,
            wire_bytes: wire,
            logical_bytes: logical,
        });
    }
    rows
}

/// Micro + e2e at the given scale — shared core of both entry points.
pub fn sql_bench_with(micro_n: usize, iters: usize, sf: f64) -> Vec<SqlBenchRow> {
    let mut rows = micro_rows(micro_n, iters);
    rows.extend(e2e_rows(sf));
    rows
}

/// The full sweep (1M-row micros, sf 0.5 e2e) — the source of
/// `BENCH_sql.json`.
pub fn sql_bench() -> Vec<SqlBenchRow> {
    sql_bench_with(SQL_BENCH_ROWS, 3, SQL_BENCH_SF)
}

/// The CI smoke sweep (60k-row micros, sf 0.2 e2e).
pub fn sql_bench_smoke() -> Vec<SqlBenchRow> {
    sql_bench_with(SQL_SMOKE_ROWS, 1, SQL_SMOKE_SF)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke sweep covers every micro kernel and every query, and its
    /// byte columns — the deterministic part of the artifact — are stable
    /// across runs.
    #[test]
    fn smoke_rows_are_complete_and_bytes_deterministic() {
        let rows = sql_bench_with(4_000, 1, 0.05);
        let ops: Vec<&str> = rows.iter().map(|r| r.op.as_str()).collect();
        for expect in ["join_i64", "join_str", "group_by", "partition"] {
            assert!(ops.contains(&expect), "missing micro op {expect}");
        }
        assert_eq!(rows.len(), 4 + Query::all_extended().len());
        for r in &rows {
            assert!(r.reference_ms > 0.0 && r.vectorized_ms > 0.0, "{}", r.op);
            assert!(r.speedup > 0.0, "{}", r.op);
        }
        // Partition and e2e rows carry byte accounting; the codec's
        // dictionary compression keeps wire at or below logical.
        let part = rows.iter().find(|r| r.op == "partition").unwrap();
        assert!(part.wire_bytes > 0 && part.wire_bytes <= part.logical_bytes);
        // E2e wire bytes include frame headers and Gather empty markers
        // (wire > 0, logical 0), so only the accounting itself is
        // asserted here — the wire-vs-logical saving is a partition-row
        // claim, where the payload dominates the headers.
        for r in rows.iter().filter(|r| r.op.starts_with('q')) {
            assert!(r.runner_ms > 0.0, "{}", r.op);
            assert!(r.wire_bytes > 0, "{}", r.op);
            assert!(r.logical_bytes > 0, "{}", r.op);
        }
        let again = sql_bench_with(4_000, 1, 0.05);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!((&a.op, a.rows), (&b.op, b.rows));
            assert_eq!(a.wire_bytes, b.wire_bytes, "{}", a.op);
            assert_eq!(a.logical_bytes, b.logical_bytes, "{}", a.op);
        }
    }

    /// The ISSUE's performance floor: at 1M rows the vectorized i64 join,
    /// group-by and fused partition+encode are each ≥3× the reference.
    /// Release-only — debug builds skew the constant factors.
    #[cfg(not(debug_assertions))]
    #[test]
    fn vectorized_kernels_are_at_least_3x_faster_at_1m_rows() {
        let rows = micro_rows(SQL_BENCH_ROWS, 3);
        for op in ["join_i64", "group_by", "partition"] {
            let r = rows.iter().find(|r| r.op == op).unwrap();
            assert!(
                r.speedup >= 3.0,
                "{op}: reference {:.1}ms vs vectorized {:.1}ms (speedup {:.2}x)",
                r.reference_ms,
                r.vectorized_ms,
                r.speedup
            );
        }
    }
}
