//! Stage groups and the greedy grouping order (paper §4.3, Algorithm 2).

use crate::objective::Objective;
use ditto_dag::paths::{CriticalPathCache, DagWeights};
use ditto_dag::{EdgeId, JobDag, StageId};
use ditto_timemodel::JobTimeModel;

/// One undone-able union step (see [`StageGroups::rollback_to`]).
#[derive(Debug, Clone)]
struct UndoEntry {
    /// The root that was attached under `parent`.
    child: u32,
    /// The surviving tree root.
    parent: u32,
    /// Whether the union incremented `parent`'s rank.
    rank_bumped: bool,
    /// `parent`'s canonical (smallest-id) member before the union.
    old_min: u32,
}

/// A union-find over stages tracking which stages share a group.
///
/// The *stage group* is Ditto's scheduling granularity: all tasks of all
/// stages in a group are placed on the same server so intermediate data
/// moves through zero-copy shared memory.
///
/// Internally this is a union-by-rank forest with an undo log, so the joint
/// optimizer can trial a merge and [`StageGroups::rollback_to`] it in O(1)
/// instead of cloning the whole structure per candidate. The tree root is
/// an internal detail; the *public* representative returned by
/// [`StageGroups::find`] is always the smallest stage id in the group
/// (tracked per root), preserving the original deterministic contract.
/// Path compression runs only on committed state ([`StageGroups::commit`]),
/// never mid-trial — compressed pointers must not cross an undone union.
#[derive(Debug, Clone)]
pub struct StageGroups {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Smallest stage id in the set, valid at root indices.
    min_of_root: Vec<u32>,
    undo: Vec<UndoEntry>,
}

impl StageGroups {
    /// Every stage in its own group.
    pub fn singletons(n_stages: usize) -> Self {
        StageGroups {
            parent: (0..n_stages as u32).collect(),
            rank: vec![0; n_stages],
            min_of_root: (0..n_stages as u32).collect(),
            undo: Vec::new(),
        }
    }

    /// Internal tree root of a stage's set. Never mutates (rollback-safe).
    pub(crate) fn root_of(&self, s: StageId) -> u32 {
        let mut x = s.0;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Group representative of a stage: the smallest stage id in its group.
    pub fn find(&self, s: StageId) -> StageId {
        StageId(self.min_of_root[self.root_of(s) as usize])
    }

    /// Merge the groups of two stages. The group representative stays the
    /// smallest member id regardless of which tree root survives.
    pub fn union(&mut self, a: StageId, b: StageId) {
        let (ra, rb) = (self.root_of(a), self.root_of(b));
        if ra == rb {
            return;
        }
        let (child, parent) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let rank_bumped = self.rank[child as usize] == self.rank[parent as usize];
        if rank_bumped {
            self.rank[parent as usize] += 1;
        }
        self.undo.push(UndoEntry {
            child,
            parent,
            rank_bumped,
            old_min: self.min_of_root[parent as usize],
        });
        self.parent[child as usize] = parent;
        let child_min = self.min_of_root[child as usize];
        if child_min < self.min_of_root[parent as usize] {
            self.min_of_root[parent as usize] = child_min;
        }
    }

    /// A token for the current union-log position; pass to
    /// [`StageGroups::rollback_to`] to undo every union made after it.
    pub fn checkpoint(&self) -> usize {
        self.undo.len()
    }

    /// Undo every union made after `token` (from [`StageGroups::checkpoint`]),
    /// in reverse order. O(1) per undone union.
    pub fn rollback_to(&mut self, token: usize) {
        while self.undo.len() > token {
            let e = self.undo.pop().expect("len > token");
            self.parent[e.child as usize] = e.child;
            if e.rank_bumped {
                self.rank[e.parent as usize] -= 1;
            }
            self.min_of_root[e.parent as usize] = e.old_min;
        }
    }

    /// Accept all unions made so far: clears the undo log and fully
    /// path-compresses the forest (every stage points straight at its tree
    /// root), so subsequent [`StageGroups::find`]s are O(1). Compression is
    /// only safe here — with an empty log there is nothing left to undo.
    pub fn commit(&mut self) {
        self.undo.clear();
        for i in 0..self.parent.len() {
            let root = self.root_of(StageId(i as u32));
            let mut x = i as u32;
            while self.parent[x as usize] != root {
                let next = self.parent[x as usize];
                self.parent[x as usize] = root;
                x = next;
            }
        }
    }

    /// `true` if the two stages share a group.
    pub fn same_group(&self, a: StageId, b: StageId) -> bool {
        self.root_of(a) == self.root_of(b)
    }

    /// Per-edge co-location mask: `mask[EdgeId]` is `true` iff the edge's
    /// endpoints share a group (its I/O then costs ~nothing, §4.1).
    pub fn colocation_mask(&self, dag: &JobDag) -> Vec<bool> {
        dag.edges()
            .iter()
            .map(|e| self.same_group(e.src, e.dst))
            .collect()
    }

    /// Materialize the groups as sorted stage lists (including singletons),
    /// ordered by representative id.
    pub fn groups(&self, n_stages: usize) -> Vec<Vec<StageId>> {
        let mut buckets: Vec<Vec<StageId>> = vec![Vec::new(); n_stages];
        for i in 0..n_stages {
            let s = StageId(i as u32);
            buckets[self.find(s).index()].push(s);
        }
        buckets.into_iter().filter(|b| !b.is_empty()).collect()
    }

    /// Group index of every stage, aligned with [`StageGroups::groups`].
    pub fn group_of(&self, n_stages: usize) -> Vec<usize> {
        let groups = self.groups(n_stages);
        let mut idx = vec![usize::MAX; n_stages];
        for (gi, g) in groups.iter().enumerate() {
            for s in g {
                idx[s.index()] = gi;
            }
        }
        idx
    }
}

/// Delta-maintained co-location state alongside a [`StageGroups`]: the
/// per-edge mask, its bit-packed fingerprint (the `compute_dop` memo key),
/// and per-tree-root incident-edge and member lists. On a trial union only
/// edges incident to the two merged groups can flip, so a trial costs
/// O(smaller group's incident edges) instead of O(E), and reverting costs
/// O(flips).
#[derive(Debug, Clone)]
pub struct ColocationIndex {
    mask: Vec<bool>,
    words: Vec<u64>,
    /// Incident edges per DSU tree root (an internal edge may appear twice
    /// after its endpoints' lists merge; the mask check skips duplicates).
    edges_of: Vec<Vec<EdgeId>>,
    /// Stage ids per DSU tree root.
    members_of: Vec<Vec<u32>>,
}

impl ColocationIndex {
    /// Build the index for the current state of `groups`.
    pub fn new(dag: &JobDag, groups: &StageGroups) -> Self {
        let n = dag.num_stages();
        let ne = dag.num_edges();
        let mut edges_of: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut members_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            members_of[groups.root_of(StageId(i as u32)) as usize].push(i as u32);
        }
        let mut mask = vec![false; ne];
        let mut words = vec![0u64; ne.div_ceil(64)];
        for e in dag.edges() {
            let (ra, rb) = (groups.root_of(e.src), groups.root_of(e.dst));
            edges_of[ra as usize].push(e.id);
            if ra == rb {
                mask[e.id.index()] = true;
                words[e.id.index() / 64] |= 1 << (e.id.index() % 64);
            } else {
                edges_of[rb as usize].push(e.id);
            }
        }
        ColocationIndex { mask, words, edges_of, members_of }
    }

    /// The co-location mask (aligned with `dag.edges()`).
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Bit-packed mask fingerprint (bit `e` set iff `mask[e]`), the compact
    /// memo key for `compute_dop` results.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Stages of the group rooted (in DSU-tree terms) at `root`.
    pub fn members(&self, root: u32) -> &[u32] {
        &self.members_of[root as usize]
    }

    /// Incident edges of the group rooted at `root` (may contain internal
    /// duplicates; filter by mask).
    pub fn edges_touching(&self, root: u32) -> &[EdgeId] {
        &self.edges_of[root as usize]
    }

    /// After `groups.union(...)` merged the trees rooted at `ra` and `rb`,
    /// flip every edge that just became internal, appending each to
    /// `flipped` (for [`ColocationIndex::revert`]). Scans only the smaller
    /// group's incident-edge list. Does *not* merge the per-root lists —
    /// that happens at [`ColocationIndex::merge_committed`] so a rollback
    /// stays O(flips).
    pub fn apply_union(
        &mut self,
        dag: &JobDag,
        groups: &StageGroups,
        ra: u32,
        rb: u32,
        flipped: &mut Vec<EdgeId>,
    ) {
        let small = if self.edges_of[ra as usize].len() <= self.edges_of[rb as usize].len() {
            ra
        } else {
            rb
        };
        let list = std::mem::take(&mut self.edges_of[small as usize]);
        for &e in &list {
            if !self.mask[e.index()] {
                let edge = dag.edge(e);
                if groups.same_group(edge.src, edge.dst) {
                    self.mask[e.index()] = true;
                    self.words[e.index() / 64] ^= 1 << (e.index() % 64);
                    flipped.push(e);
                }
            }
        }
        self.edges_of[small as usize] = list;
    }

    /// Undo [`ColocationIndex::apply_union`]: clear exactly the flipped
    /// edges.
    pub fn revert(&mut self, flipped: &[EdgeId]) {
        for &e in flipped {
            self.mask[e.index()] = false;
            self.words[e.index() / 64] ^= 1 << (e.index() % 64);
        }
    }

    /// After a trial union is accepted and `groups.commit()` ran, fold the
    /// absorbed root's edge and member lists into the surviving root's.
    pub fn merge_committed(&mut self, surviving: u32, absorbed: u32) {
        debug_assert_ne!(surviving, absorbed);
        let es = std::mem::take(&mut self.edges_of[absorbed as usize]);
        self.edges_of[surviving as usize].extend(es);
        let ms = std::mem::take(&mut self.members_of[absorbed as usize]);
        self.members_of[surviving as usize].extend(ms);
    }
}

/// Grouping weights for the current DoP configuration (§4.3):
///
/// * JCT: node weight `C(sᵢ)`, edge weight `W(sᵢ) + R(sⱼ)`;
/// * cost: node weight `M(sᵢ)·C(sᵢ)`, edge weight
///   `M(sᵢ)·W(sᵢ) + M(sⱼ)·R(sⱼ)`.
///
/// Grouped edges weigh (nearly) zero thanks to zero-copy shared memory.
pub fn grouping_weights(
    dag: &JobDag,
    model: &JobTimeModel,
    dop: &[u32],
    colocated: &[bool],
    objective: Objective,
) -> DagWeights {
    let mut w = DagWeights::zeros(dag);
    grouping_weights_into(dag, model, dop, colocated, objective, &mut w);
    w
}

/// [`grouping_weights`] writing into an existing buffer (must be sized for
/// `dag`), so hot loops can reuse the allocation.
pub fn grouping_weights_into(
    dag: &JobDag,
    model: &JobTimeModel,
    dop: &[u32],
    colocated: &[bool],
    objective: Objective,
    w: &mut DagWeights,
) {
    debug_assert_eq!(w.node.len(), dag.num_stages());
    debug_assert_eq!(w.edge.len(), dag.num_edges());
    for s in dag.stages() {
        let d = dop[s.id.index()].max(1) as f64;
        let c = model.compute_time(s.id, d);
        w.node[s.id.index()] = match objective {
            Objective::Jct => c,
            Objective::Cost => model.resource(s.id).usage(d) * c,
        };
    }
    for e in dag.edges() {
        if colocated[e.id.index()] {
            w.edge[e.id.index()] = 0.0;
            continue;
        }
        let io = model.edge_io(e.id);
        let d_src = dop[e.src.index()].max(1) as f64;
        let d_dst = dop[e.dst.index()].max(1) as f64;
        let wt = io.write.eval(d_src);
        let rt = io.read.eval(d_dst);
        w.edge[e.id.index()] = match objective {
            Objective::Jct => wt + rt,
            Objective::Cost => {
                model.resource(e.src).usage(d_src) * wt + model.resource(e.dst).usage(d_dst) * rt
            }
        };
    }
}

/// Sort edge ids by descending weight, ties toward the smaller id. The id
/// tie-break makes the comparator total (no two elements compare equal), so
/// the unstable sort is deterministic; `total_cmp` keeps a NaN weight from
/// panicking the scheduler. Shared by the cost-objective grouping order and
/// the `GlobalDescending` ablation policy.
pub fn sort_edges_by_weight_desc(edges: &mut [EdgeId], w: &DagWeights) {
    edges.sort_unstable_by(|&a, &b| {
        w.edge[b.index()].total_cmp(&w.edge[a.index()]).then(a.cmp(&b))
    });
}

/// `max_by` comparator selecting the heaviest edge, smallest id on weight
/// ties (`.then(b.cmp(&a))` makes the *smaller* id compare greater).
pub(crate) fn heavier_edge(w: &DagWeights, a: EdgeId, b: EdgeId) -> std::cmp::Ordering {
    w.edge[a.index()].total_cmp(&w.edge[b.index()]).then(b.cmp(&a))
}

/// The greedy grouping *order*: the sequence in which Algorithm 2 traverses
/// edges. For the cost objective this is simply all edges in descending
/// weight. For JCT, each next edge is the heaviest ungrouped edge on the
/// *current* critical path (re-deriving the critical path after zeroing the
/// chosen edge, as in Fig. 6b); when the critical path holds no ungrouped
/// edge, the globally heaviest ungrouped edge is taken so every edge is
/// eventually traversed.
pub fn greedy_group_order(
    dag: &JobDag,
    model: &JobTimeModel,
    dop: &[u32],
    colocated: &[bool],
    objective: Objective,
) -> Vec<EdgeId> {
    let mut w = grouping_weights(dag, model, dop, colocated, objective);
    let ne = dag.num_edges();
    let mut order: Vec<EdgeId> = dag.edges().iter().map(|e| e.id).collect();

    match objective {
        Objective::Cost => {
            sort_edges_by_weight_desc(&mut order, &w);
        }
        Objective::Jct => {
            order.clear();
            // Bitset membership instead of O(E) `contains`/`retain` scans.
            let mut remaining = vec![true; ne];
            let mut remaining_count = ne;
            let mut cache = CriticalPathCache::new(dag);
            while remaining_count > 0 {
                let cp = cache.critical_path(dag, &w);
                // Heaviest not-yet-ordered edge on the critical path.
                let pick = cp
                    .edges
                    .iter()
                    .copied()
                    .filter(|e| remaining[e.index()])
                    .max_by(|&a, &b| heavier_edge(&w, a, b));
                // Fall back to the globally heaviest remaining edge when the
                // critical path is fully grouped already.
                let pick = pick.unwrap_or_else(|| {
                    (0..ne)
                        .map(|i| EdgeId(i as u32))
                        .filter(|e| remaining[e.index()])
                        .max_by(|&a, &b| heavier_edge(&w, a, b))
                        .expect("remaining_count > 0")
                });
                w.edge[pick.index()] = 0.0; // re-profile: ω(e) ← 0
                remaining[pick.index()] = false;
                remaining_count -= 1;
                order.push(pick);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::{DagBuilder, EdgeKind, StageKind};
    use ditto_timemodel::model::RateConfig;

    #[test]
    fn dsu_union_find() {
        let mut g = StageGroups::singletons(4);
        assert!(!g.same_group(StageId(0), StageId(1)));
        g.union(StageId(0), StageId(1));
        g.union(StageId(2), StageId(3));
        assert!(g.same_group(StageId(0), StageId(1)));
        assert!(!g.same_group(StageId(1), StageId(2)));
        g.union(StageId(1), StageId(3));
        assert!(g.same_group(StageId(0), StageId(2)));
        assert_eq!(g.groups(4).len(), 1);
        assert_eq!(g.group_of(4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn colocation_mask_follows_groups() {
        let dag = ditto_dag::generators::fig1_join();
        let mut g = StageGroups::singletons(3);
        assert_eq!(g.colocation_mask(&dag), vec![false, false]);
        g.union(StageId(0), StageId(2)); // map1 with join
        assert_eq!(g.colocation_mask(&dag), vec![true, false]);
    }

    #[test]
    fn rollback_undoes_unions_exactly() {
        let mut g = StageGroups::singletons(6);
        g.union(StageId(4), StageId(5));
        let before = g.groups(6);
        let token = g.checkpoint();
        g.union(StageId(0), StageId(1));
        g.union(StageId(1), StageId(4));
        assert!(g.same_group(StageId(0), StageId(5)));
        g.rollback_to(token);
        assert_eq!(g.groups(6), before);
        assert!(!g.same_group(StageId(0), StageId(1)));
        assert!(g.same_group(StageId(4), StageId(5)));
        assert_eq!(g.find(StageId(5)), StageId(4));
    }

    /// Path compression (on commit) must preserve the smallest-id
    /// representative contract: `find`, `groups` and `group_of` are
    /// identical before and after compression, under any union order.
    #[test]
    fn path_compression_preserves_smallest_id_representative() {
        let n = 32usize;
        // A deterministic, adversarial-ish union order: larger ids first,
        // chains, then cross-links.
        let pairs: Vec<(u32, u32)> = (0..14)
            .map(|i| (31 - i, 17 - i))
            .chain([(0, 31), (16, 2), (9, 25)])
            .collect();
        let mut compressed = StageGroups::singletons(n);
        let mut plain = StageGroups::singletons(n);
        for &(a, b) in &pairs {
            compressed.union(StageId(a), StageId(b));
            compressed.commit(); // compress after every accepted union
            plain.union(StageId(a), StageId(b));
            for i in 0..n as u32 {
                assert_eq!(
                    compressed.find(StageId(i)),
                    plain.find(StageId(i)),
                    "stage {i} after union ({a},{b})"
                );
            }
        }
        // Every representative is its group's smallest member.
        for g in compressed.groups(n) {
            let rep = compressed.find(g[0]);
            assert_eq!(rep, *g.iter().min().unwrap());
            assert!(g.contains(&rep));
        }
        assert_eq!(compressed.groups(n), plain.groups(n));
        assert_eq!(compressed.group_of(n), plain.group_of(n));
    }

    #[test]
    fn colocation_index_tracks_mask_incrementally() {
        let dag = ditto_dag::generators::q95_shape();
        let mut g = StageGroups::singletons(dag.num_stages());
        let mut idx = ColocationIndex::new(&dag, &g);
        assert_eq!(idx.mask(), g.colocation_mask(&dag).as_slice());
        let mut flips = Vec::new();
        // Trial a union, check the delta, revert, check we're back.
        let e = dag.edges()[0].clone();
        let (ra, rb) = (g.root_of(e.src), g.root_of(e.dst));
        let token = g.checkpoint();
        g.union(e.src, e.dst);
        idx.apply_union(&dag, &g, ra, rb, &mut flips);
        assert_eq!(idx.mask(), g.colocation_mask(&dag).as_slice());
        assert!(flips.contains(&e.id));
        idx.revert(&flips);
        g.rollback_to(token);
        assert_eq!(idx.mask(), g.colocation_mask(&dag).as_slice());
        assert!(idx.words().iter().all(|&w| w == 0));
        // Commit a few unions and keep the index in sync.
        for e in dag.edges().iter().take(4) {
            let (ra, rb) = (g.root_of(e.src), g.root_of(e.dst));
            if ra == rb {
                continue;
            }
            flips.clear();
            g.union(e.src, e.dst);
            idx.apply_union(&dag, &g, ra, rb, &mut flips);
            g.commit();
            let surviving = g.root_of(e.src);
            let absorbed = if surviving == ra { rb } else { ra };
            idx.merge_committed(surviving, absorbed);
            assert_eq!(idx.mask(), g.colocation_mask(&dag).as_slice());
        }
        // Fingerprint bits mirror the mask.
        for (i, &m) in idx.mask().iter().enumerate() {
            assert_eq!(idx.words()[i / 64] >> (i % 64) & 1 == 1, m);
        }
    }

    /// Reproduces the paper's Fig. 6a: single path, traverse edges in
    /// descending weight: [e1, e2] with ω(e1)=100 > ω(e2)=50.
    #[test]
    fn fig6a_single_path_order() {
        // Three-stage chain; edge bytes chosen so shuffle times are 100, 50.
        let dag = DagBuilder::new("fig6a")
            .stage("a", StageKind::Map, 0, 0)
            .stage("b", StageKind::Map, 0, 0)
            .stage("c", StageKind::Map, 0, 0)
            .edge("a", "b", EdgeKind::Shuffle, 5_000_000_000)
            .edge("b", "c", EdgeKind::Shuffle, 2_500_000_000)
            .build()
            .unwrap();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![1, 1, 1];
        let colocated = vec![false, false];
        let order = greedy_group_order(&dag, &model, &dop, &colocated, Objective::Jct);
        assert_eq!(order, vec![EdgeId(0), EdgeId(1)]);
    }

    /// Reproduces the paper's Fig. 6b: two paths; order [e3, e1, e4, e2].
    /// Node weights are equal per path; edge weights: path1 = 100, 50;
    /// path2 = 120, 80 — wait, the figure has path2's weights at 120 after
    /// grouping e3; we encode ω(e1)=100(→120 in fig), exact values below.
    #[test]
    fn fig6b_multi_path_order() {
        // Build: a1-e0->a2-e2->sink ; b1-e1->b2-e3->sink
        // Weights (bytes scaled): e0=120, e1=100, e2=50, e3=80.
        // Critical path initially via b (120+80=200)?? The figure's path2
        // carries ω(e3)=100 and ω(e4)=80 with path1 ω(e1)=120 after the
        // first grouping. We set: path1 edges 120, 50; path2 edges 100, 80.
        // path2 total 180 > path1 170 → pick e(100)=path2's heavier (100);
        // then path1 (170) → pick 120; then path2 (80) → 80; then 50.
        let bw = 100e6; // shuffle_bw used below, 1 byte ≈ 1/bw s at d=1
        let b = |secs: f64| (secs * bw) as u64;
        let dag = DagBuilder::new("fig6b")
            .stage("a1", StageKind::Map, 0, 0)
            .stage("a2", StageKind::Map, 0, 0)
            .stage("b1", StageKind::Map, 0, 0)
            .stage("b2", StageKind::Map, 0, 0)
            .stage("sink", StageKind::Reduce, 0, 0)
            .edge("a1", "a2", EdgeKind::Shuffle, b(60.0)) // e0: W+R=120
            .edge("b1", "b2", EdgeKind::Shuffle, b(50.0)) // e1: 100
            .edge("a2", "sink", EdgeKind::Shuffle, b(25.0)) // e2: 50
            .edge("b2", "sink", EdgeKind::Shuffle, b(40.0)) // e3: 80
            .build()
            .unwrap();
        let cfg = RateConfig {
            io_beta: 0.0,
            compute_beta: 0.0,
            straggler_scale: 1.0,
            ..RateConfig::default()
        };
        let model = JobTimeModel::from_rates(&dag, &cfg);
        let dop = vec![1; 5];
        let colocated = vec![false; 4];
        let order = greedy_group_order(&dag, &model, &dop, &colocated, Objective::Jct);
        // path2 (b) total 180 > path1 170: pick e1 (100). Then path1 (170):
        // pick e0 (120). Then path2 (80): pick e3. Then e2.
        assert_eq!(order, vec![EdgeId(1), EdgeId(0), EdgeId(3), EdgeId(2)]);
    }

    #[test]
    fn cost_order_is_global_descending() {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![4; dag.num_stages()];
        let colocated = vec![false; dag.num_edges()];
        let order = greedy_group_order(&dag, &model, &dop, &colocated, Objective::Cost);
        assert_eq!(order.len(), dag.num_edges());
        let w = grouping_weights(&dag, &model, &dop, &colocated, Objective::Cost);
        for pair in order.windows(2) {
            assert!(w.edge[pair[0].index()] >= w.edge[pair[1].index()] - 1e-12);
        }
    }

    #[test]
    fn grouped_edges_have_zero_weight() {
        let dag = ditto_dag::generators::fig1_join();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![4, 4, 4];
        let w_all = grouping_weights(&dag, &model, &dop, &[false, false], Objective::Jct);
        let w_grp = grouping_weights(&dag, &model, &dop, &[true, false], Objective::Jct);
        assert!(w_all.edge[0] > 0.0);
        assert_eq!(w_grp.edge[0], 0.0);
        assert_eq!(w_grp.edge[1], w_all.edge[1]);
    }

    #[test]
    fn order_contains_every_edge_once() {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![8; dag.num_stages()];
        let colocated = vec![false; dag.num_edges()];
        for obj in [Objective::Jct, Objective::Cost] {
            let order = greedy_group_order(&dag, &model, &dop, &colocated, obj);
            let mut sorted: Vec<u32> = order.iter().map(|e| e.0).collect();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..dag.num_edges() as u32).collect::<Vec<_>>());
        }
    }
}
