//! Property tests for the trace diff engine: for arbitrary task sets,
//! a trace diffed against itself is all-zero, and the per-bucket deltas
//! of any two traces sum to the end-to-end JCT delta — the "no residual
//! unexplained time" invariant [`diff_traces`] promises by construction.

use ditto_obs::{diff_traces, Recorder, Track};
use proptest::prelude::*;

/// One random task: `(stage, server, start, setup, read, compute, write)`
/// with step durations in seconds.
type RandTask = (u32, u32, f64, f64, f64, f64, f64);

fn build_trace(tasks: &[RandTask]) -> ditto_obs::TraceData {
    let rec = Recorder::new();
    for &(stage, server, start, sd, rd, cd, wd) in tasks {
        let r = start + sd;
        let c = r + rd;
        let w = c + cd;
        let end = w + wd;
        rec.span(
            "task",
            Track::server(server, stage),
            start,
            end,
            vec![
                ("stage", stage.into()),
                ("read_start", r.into()),
                ("compute_start", c.into()),
                ("write_start", w.into()),
            ],
        );
    }
    rec.finish()
}

fn task_set() -> impl Strategy<Value = Vec<RandTask>> {
    proptest::collection::vec(
        (
            0u32..6,      // stage
            0u32..3,      // server
            0.0f64..20.0, // start offset
            0.0f64..0.5,  // setup
            0.0f64..3.0,  // read
            0.0f64..5.0,  // compute
            0.0f64..3.0,  // write
        ),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Diffing a trace against itself attributes exactly nothing: no
    /// stage carries a step, wait or total delta above noise.
    #[test]
    fn self_diff_is_all_zero(tasks in task_set()) {
        let t = build_trace(&tasks);
        let d = diff_traces(&t, &t);
        prop_assert!(d.is_zero(1e-9), "nonzero self-diff:\n{}", d.render());
        prop_assert_eq!(d.delta(), 0.0);
        prop_assert_eq!(d.step_attributed(), 0.0);
    }

    /// For any two runs, the attributed per-bucket deltas (lead wait +
    /// per-stage steps and waits) sum to the measured JCT delta within
    /// 1e-6 — no bucket is double-counted and none is dropped.
    #[test]
    fn attribution_sums_to_jct_delta(a in task_set(), b in task_set()) {
        let d = diff_traces(&build_trace(&a), &build_trace(&b));
        let gap = (d.attributed() - d.delta()).abs();
        prop_assert!(
            gap <= 1e-6,
            "attributed {} vs delta {} (gap {gap}):\n{}",
            d.attributed(),
            d.delta(),
            d.render()
        );
        // Stage rows are unique and sorted, so the JSON is well-formed.
        let stages: Vec<u32> = d.stages.iter().map(|s| s.stage).collect();
        prop_assert!(
            stages.windows(2).all(|w| w[0] < w[1]),
            "stage rows not strictly sorted: {stages:?}"
        );
    }
}
