//! Minimal offline stand-in for `rand_distr`: the `Zipf` distribution used
//! by the TPC-DS-like data generator, over the shim `rand` crate.

use rand::RngCore;

/// A distribution sampling values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Zipf distribution over ranks `1..=n` with exponent `s`: P(k) ∝ k^{-s}.
///
/// Sampling inverts the precomputed CDF by binary search — O(log n) per
/// draw, exact for any `s ≥ 0` (upstream uses rejection sampling; for the
/// table sizes the data generator draws from, the table walk is simpler and
/// deterministic).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// New Zipf over `1..=n` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Zipf, Error> {
        if n == 0 {
            return Err(Error("Zipf requires n >= 1"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(Error("Zipf requires finite s >= 0"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // First rank whose cumulative mass reaches u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, 1.0).is_ok());
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(100, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ones = 0usize;
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
            if v == 1.0 {
                ones += 1;
            }
        }
        // Rank 1 carries the largest mass under any positive skew.
        assert!(ones > 1_000, "rank-1 mass too small: {ones}");
    }

    #[test]
    fn zero_skew_is_uniformish() {
        let z = Zipf::new(4, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng) as usize - 1] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }
}
