//! Deadline-constrained scheduling: "finish by X, as cheap as possible".
//!
//! Sweeps deadlines between the JCT-optimal and cost-optimal extremes on
//! Q95 and shows the cost/latency frontier the blend explores — an
//! extension beyond the paper's fixed JCT-or-cost objectives.
//!
//! ```sh
//! cargo run --release --example deadline
//! ```

use ditto::cluster::{Cluster, ResourceManager, SlotDistribution};
use ditto::core::deadline::schedule_with_deadline;
use ditto::core::{joint_optimize, JointOptions, Objective};
use ditto::exec::{profile_job, simulate, ExecConfig, GroundTruth};
use ditto::sql::queries::Query;
use ditto::sql::{Database, ScaleConfig};

fn main() {
    let db = Database::generate(ScaleConfig::with_sf(0.5));
    let mut plan = Query::Q95.prepared_plan(&db);
    plan.scale_volumes(40_000.0);
    let gt = GroundTruth::new(ExecConfig::default());
    let profile = profile_job(&plan.dag, &gt, &[10, 20, 40, 80, 120]);
    let (model, _) = profile.build_model(&plan.dag);
    let rm = ResourceManager::snapshot(&Cluster::paper_testbed(&SlotDistribution::zipf_09()));

    // The two extremes.
    let fast = joint_optimize(&plan.dag, &model, &rm, Objective::Jct, &JointOptions::default());
    let cheap = joint_optimize(&plan.dag, &model, &rm, Objective::Cost, &JointOptions::default());
    let (_, m_fast) = simulate(&plan.dag, &fast, &gt);
    let (_, m_cheap) = simulate(&plan.dag, &cheap, &gt);
    println!("JCT-optimal : {:>6.1}s  {:>8.1} GB·s", m_fast.jct, m_fast.total_cost());
    println!("cost-optimal: {:>6.1}s  {:>8.1} GB·s", m_cheap.jct, m_cheap.total_cost());

    // The scheduler promises deadlines against its *predicted* JCT, which
    // is conservative (it budgets for the slowest task of every stage);
    // deadlines below that floor are reported unreachable even though a
    // lucky run may beat them.
    let frac: Vec<f64> = fast.dop.iter().map(|&d| d as f64).collect();
    let floor = ditto::core::predicted_jct(&plan.dag, &model, &frac, &fast.colocated);
    println!("predicted floor (slowest-task budget): {floor:.1}s\n");

    println!("deadline    simulated JCT    cost");
    let lo = floor * 0.95; // include one unreachable row for illustration
    let hi = m_cheap.jct.max(floor * 1.5);
    for i in 0..6 {
        let deadline = lo + (hi - lo) * i as f64 / 5.0;
        match schedule_with_deadline(&plan.dag, &model, &rm, deadline, &JointOptions::default()) {
            Some(schedule) => {
                let (_, m) = simulate(&plan.dag, &schedule, &gt);
                let met = if m.jct <= deadline * 1.1 { "✓" } else { "≈" };
                println!(
                    "{deadline:>7.1}s {:>11.1}s {met} {:>8.1} GB·s",
                    m.jct,
                    m.total_cost()
                );
            }
            None => println!("{deadline:>7.1}s   unreachable"),
        }
    }
    println!("\nTighter deadlines buy speed with slots; looser ones shed cost.");
}
