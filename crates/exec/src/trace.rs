//! Execution traces: per-task timelines and per-stage breakdowns.
//!
//! The simulator emits a [`TaskTrace`] per task; aggregations over them
//! regenerate the paper's Fig. 14 (per-stage step breakdown) and Fig. 15
//! (stage-and-task Gantt view of fixed vs elastic parallelism).

use crate::adaptive::ReplanRecord;
use crate::faults::{AttemptOutcome, AttemptRecord};
use ditto_cluster::ServerId;
use ditto_obs::StepTimings;

/// One task's timeline (all times are seconds since job submission).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TaskTrace {
    /// Stage index.
    pub stage: u32,
    /// Task index within the stage.
    pub task: u32,
    /// Server the task ran on.
    pub server: ServerId,
    /// Launch (container start).
    pub launch: f64,
    /// End of setup / start of read.
    pub read_start: f64,
    /// End of read / start of compute.
    pub compute_start: f64,
    /// End of compute / start of write.
    pub write_start: f64,
    /// Task completion.
    pub end: f64,
    /// Memory footprint, GB.
    pub memory_gb: f64,
}

impl TaskTrace {
    /// Wall-clock duration.
    pub fn duration(&self) -> f64 {
        self.end - self.launch
    }

    /// Step durations as the shared [`StepTimings`] shape.
    pub fn steps(&self) -> StepTimings {
        StepTimings::new(
            self.read_start - self.launch,
            self.compute_start - self.read_start,
            self.write_start - self.compute_start,
            self.end - self.write_start,
        )
    }
}

/// Mean per-step durations of one stage (the Fig. 14 bars).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct StageBreakdown {
    /// Stage index.
    pub stage: u32,
    /// Number of tasks.
    pub tasks: u32,
    /// Stage start (earliest launch).
    pub start: f64,
    /// Stage end (latest task end).
    pub end: f64,
    /// Mean setup seconds.
    pub setup: f64,
    /// Mean read seconds.
    pub read: f64,
    /// Mean compute seconds.
    pub compute: f64,
    /// Mean write seconds.
    pub write: f64,
}

/// A complete execution trace.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// All task timelines, ordered by (stage, task). For tasks that were
    /// retried or speculated, this is the *winning* attempt's timeline.
    pub tasks: Vec<TaskTrace>,
    /// Attempt-level history for every task that experienced a fault or
    /// speculation (empty for fault-free runs): each failed / superseded
    /// attempt plus the final completed one.
    pub attempts: Vec<AttemptRecord>,
    /// Suffix re-optimizations performed by the adaptive engine (empty
    /// for frozen-schedule runs): trigger, learned corrections, old/new
    /// predicted JCT and the feasibility-certificate outcome of each.
    pub replans: Vec<ReplanRecord>,
}

impl ExecutionTrace {
    /// Attempts beyond one per task (crashed, server-lost or superseded).
    pub fn extra_attempts(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| a.outcome != AttemptOutcome::Completed)
            .count()
    }

    /// Total billed-but-discarded work across failed attempts, GB·s.
    pub fn wasted_gb_s(&self) -> f64 {
        self.attempts.iter().map(|a| a.wasted_gb_s).sum()
    }

    /// Job completion time: the latest task end.
    pub fn jct(&self) -> f64 {
        self.tasks.iter().map(|t| t.end).fold(0.0, f64::max)
    }

    /// Stage completion time.
    pub fn stage_end(&self, stage: u32) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.stage == stage)
            .map(|t| t.end)
            .fold(0.0, f64::max)
    }

    /// Per-stage step breakdowns, ordered by stage index (Fig. 14).
    pub fn stage_breakdowns(&self) -> Vec<StageBreakdown> {
        let max_stage = self.tasks.iter().map(|t| t.stage).max().unwrap_or(0);
        (0..=max_stage)
            .filter_map(|s| {
                let ts: Vec<&TaskTrace> = self.tasks.iter().filter(|t| t.stage == s).collect();
                if ts.is_empty() {
                    return None;
                }
                let mut sum = StepTimings::zero();
                for t in &ts {
                    sum.accumulate(&t.steps());
                }
                let mean = sum.scaled(1.0 / ts.len() as f64);
                Some(StageBreakdown {
                    stage: s,
                    tasks: ts.len() as u32,
                    start: ts.iter().map(|t| t.launch).fold(f64::MAX, f64::min),
                    end: ts.iter().map(|t| t.end).fold(f64::MIN, f64::max),
                    setup: mean.setup,
                    read: mean.read,
                    compute: mean.compute,
                    write: mean.write,
                })
            })
            .collect()
    }

    /// Compute cost in GB·s: Σ memory × duration per task (the paper's
    /// billing definition).
    pub fn compute_cost(&self) -> f64 {
        self.tasks.iter().map(|t| t.memory_gb * t.duration()).sum()
    }

    /// Peak concurrent tasks per server over the whole execution — the
    /// invariant check that a schedule's placement is honored *in time*:
    /// no server ever hosts more simultaneous tasks than it had free
    /// slots. Computed exactly by a sweep over launch/end events. The
    /// result is ordered by server id so iteration is deterministic.
    pub fn peak_server_occupancy(&self) -> std::collections::BTreeMap<u32, u32> {
        let mut events: Vec<(f64, i32, u32)> = Vec::with_capacity(self.tasks.len() * 2);
        for t in &self.tasks {
            events.push((t.launch, 1, t.server.0));
            events.push((t.end, -1, t.server.0));
        }
        // Ends before starts at the same instant (half-open intervals).
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut current: std::collections::BTreeMap<u32, i32> = Default::default();
        let mut peak: std::collections::BTreeMap<u32, u32> = Default::default();
        for (_, delta, server) in events {
            let c = current.entry(server).or_insert(0);
            *c += delta;
            let p = peak.entry(server).or_insert(0);
            *p = (*p).max(*c as u32);
        }
        peak
    }

    /// Slot occupancy over time: sample the number of busy function slots
    /// at `samples` evenly spaced instants across the job. This is the
    /// quantity behind the paper's §4.5 utilization remark — slots
    /// reserved for a job idle whenever its stages don't overlap.
    pub fn utilization(&self, samples: usize) -> Vec<(f64, u32)> {
        assert!(samples >= 2, "need at least two sample points");
        let jct = self.jct();
        (0..samples)
            .map(|i| {
                let t = jct * i as f64 / (samples - 1) as f64;
                let busy = self
                    .tasks
                    .iter()
                    .filter(|task| task.launch <= t && t < task.end)
                    .count() as u32;
                (t, busy)
            })
            .collect()
    }

    /// Mean slot occupancy over the job's lifetime as a fraction of
    /// `total_slots` (1.0 = the reserved slots never idle).
    pub fn mean_utilization(&self, total_slots: u32) -> f64 {
        if total_slots == 0 {
            return 0.0;
        }
        let jct = self.jct().max(1e-12);
        let busy_slot_seconds: f64 = self.tasks.iter().map(|t| t.duration()).sum();
        busy_slot_seconds / (jct * total_slots as f64)
    }

    /// Export the trace in Chrome Trace Event format (load in
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)): one
    /// duration event per step of every task, with the server as the
    /// process and the task as the thread — the interactive version of
    /// the paper's Fig. 15. Attempt history renders as `attempt` spans
    /// with `fault.*` instants at each failed attempt's end, and every
    /// [`ReplanRecord`] appears as a `sched.replan` instant on the
    /// scheduler pseudo-process carrying the full decision record
    /// (trigger, corrections, predicted JCTs, risk penalty, certificate
    /// verdict) — replans no longer live only on the in-memory trace.
    pub fn to_chrome_trace(&self) -> String {
        use serde_json::{Map, Number, Value};
        /// Scheduler pseudo-process id, clear of real server ids.
        const SCHED_PID: u64 = 1_000_000;
        let us = |secs: f64| (secs * 1e6).round() as u64;
        let uint = |v: u64| Value::Number(Number::PosInt(v));
        let num = |v: f64| Value::Number(Number::Float(v));
        let mut events: Vec<Value> = Vec::with_capacity(self.tasks.len() * 4);
        let mut push = |fields: Vec<(&str, Value)>| {
            let mut m = Map::new();
            for (k, v) in fields {
                m.insert(k.to_string(), v);
            }
            events.push(Value::Object(m));
        };
        for t in &self.tasks {
            let tid = t.stage * 10_000 + t.task;
            let steps = t.steps();
            for (name, start, dur) in [
                ("setup", t.launch, steps.setup),
                ("read", t.read_start, steps.read),
                ("compute", t.compute_start, steps.compute),
                ("write", t.write_start, steps.write),
            ] {
                if dur <= 0.0 {
                    continue;
                }
                push(vec![
                    ("name", Value::String(name.to_string())),
                    ("cat", Value::String("task".to_string())),
                    ("ph", Value::String("X".to_string())),
                    ("ts", uint(us(start))),
                    ("dur", uint(us(dur))),
                    ("pid", uint(t.server.0 as u64)),
                    ("tid", uint(tid as u64)),
                ]);
            }
        }
        for a in &self.attempts {
            let tid = a.stage * 10_000 + a.task;
            let mut args = Map::new();
            args.insert("stage".to_string(), uint(a.stage as u64));
            args.insert("task".to_string(), uint(a.task as u64));
            args.insert("attempt".to_string(), uint(a.attempt as u64));
            args.insert("wasted_gb_s".to_string(), num(a.wasted_gb_s));
            push(vec![
                ("name", Value::String("attempt".to_string())),
                ("cat", Value::String("fault".to_string())),
                ("ph", Value::String("X".to_string())),
                ("ts", uint(us(a.start))),
                ("dur", uint(us(a.end - a.start))),
                ("pid", uint(a.server.0 as u64)),
                ("tid", uint(tid as u64)),
                ("args", Value::Object(args)),
            ]);
            if a.outcome != AttemptOutcome::Completed {
                let name = match a.outcome {
                    AttemptOutcome::Crashed => "fault.crashed",
                    AttemptOutcome::ServerLost => "fault.server_lost",
                    AttemptOutcome::Superseded => "fault.superseded",
                    AttemptOutcome::Completed => unreachable!(),
                };
                let mut args = Map::new();
                args.insert("stage".to_string(), uint(a.stage as u64));
                args.insert("task".to_string(), uint(a.task as u64));
                args.insert("attempt".to_string(), uint(a.attempt as u64));
                push(vec![
                    ("name", Value::String(name.to_string())),
                    ("cat", Value::String("fault".to_string())),
                    ("ph", Value::String("i".to_string())),
                    ("s", Value::String("t".to_string())),
                    ("ts", uint(us(a.end))),
                    ("pid", uint(a.server.0 as u64)),
                    ("tid", uint(tid as u64)),
                    ("args", Value::Object(args)),
                ]);
            }
        }
        for r in &self.replans {
            let mut args = Map::new();
            args.insert(
                "trigger".to_string(),
                Value::String(
                    match r.trigger {
                        crate::adaptive::ReplanTrigger::Drift => "drift",
                        crate::adaptive::ReplanTrigger::ObjectRecovery => "object-recovery",
                    }
                    .to_string(),
                ),
            );
            args.insert("at_stage".to_string(), uint(r.at_stage as u64));
            args.insert("factor".to_string(), num(r.factor));
            args.insert("suffix_stages".to_string(), uint(r.suffix_stages as u64));
            args.insert("old_predicted_jct".to_string(), num(r.old_predicted_jct));
            args.insert("new_predicted_jct".to_string(), num(r.new_predicted_jct));
            args.insert("applied".to_string(), uint(r.applied as u64));
            args.insert("risk_penalty".to_string(), num(r.risk_penalty));
            args.insert("audit_clean".to_string(), uint(r.audit_clean as u64));
            args.insert("decision_seq".to_string(), uint(r.decision_seq));
            args.insert("corr_read".to_string(), num(r.corrections.read));
            args.insert("corr_compute".to_string(), num(r.corrections.compute));
            args.insert("corr_write".to_string(), num(r.corrections.write));
            push(vec![
                ("name", Value::String("sched.replan".to_string())),
                ("cat", Value::String("sched".to_string())),
                ("ph", Value::String("i".to_string())),
                ("s", Value::String("g".to_string())),
                ("ts", uint(us(r.sim_time))),
                ("pid", uint(SCHED_PID)),
                ("tid", uint(0)),
                ("args", Value::Object(args)),
            ]);
        }
        Value::Array(events).to_string()
    }

    /// Render an ASCII Gantt of stages over time (Fig. 15's shape), with
    /// `width` columns; one row per stage, bar spans start..end, the label
    /// shows the task count.
    pub fn ascii_gantt(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let jct = self.jct().max(1e-9);
        let mut out = String::new();
        for b in self.stage_breakdowns() {
            let s = ((b.start / jct) * width as f64).round() as usize;
            let e = (((b.end / jct) * width as f64).round() as usize).max(s + 1);
            let mut row = vec![' '; width.max(e)];
            for c in row.iter_mut().take(e).skip(s) {
                *c = '█';
            }
            let bar: String = row.into_iter().collect();
            let _ = writeln!(out, "stage {:>2} [{:>3} tasks] |{}|", b.stage, b.tasks, bar);
        }
        let _ = writeln!(out, "JCT = {jct:.2}s");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(stage: u32, task: u32, launch: f64, steps: (f64, f64, f64, f64)) -> TaskTrace {
        let (s, r, c, w) = steps;
        TaskTrace {
            stage,
            task,
            server: ServerId(0),
            launch,
            read_start: launch + s,
            compute_start: launch + s + r,
            write_start: launch + s + r + c,
            end: launch + s + r + c + w,
            memory_gb: 2.0,
        }
    }

    #[test]
    fn steps_and_duration() {
        let t = task(0, 0, 1.0, (0.5, 2.0, 3.0, 1.0));
        assert_eq!(t.steps().as_tuple(), (0.5, 2.0, 3.0, 1.0));
        assert!((t.duration() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn jct_is_latest_end() {
        let tr = ExecutionTrace {
            attempts: vec![],
            replans: vec![],
            tasks: vec![
                task(0, 0, 0.0, (0.1, 1.0, 1.0, 0.5)),
                task(1, 0, 3.0, (0.1, 1.0, 2.0, 0.5)),
            ],
        };
        assert!((tr.jct() - 6.6).abs() < 1e-9);
        assert!((tr.stage_end(0) - 2.6).abs() < 1e-9);
    }

    #[test]
    fn breakdown_averages_tasks() {
        let tr = ExecutionTrace {
            attempts: vec![],
            replans: vec![],
            tasks: vec![
                task(0, 0, 0.0, (0.2, 1.0, 2.0, 1.0)),
                task(0, 1, 0.0, (0.2, 3.0, 4.0, 1.0)),
            ],
        };
        let b = tr.stage_breakdowns();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].tasks, 2);
        assert!((b[0].read - 2.0).abs() < 1e-12);
        assert!((b[0].compute - 3.0).abs() < 1e-12);
    }

    #[test]
    fn compute_cost_sums_gb_seconds() {
        let tr = ExecutionTrace {
            attempts: vec![],
            replans: vec![],
            tasks: vec![task(0, 0, 0.0, (0.0, 1.0, 1.0, 0.0))],
        };
        assert!((tr.compute_cost() - 4.0).abs() < 1e-12); // 2 GB × 2 s
    }

    #[test]
    fn utilization_counts_busy_slots() {
        let tr = ExecutionTrace {
            attempts: vec![],
            replans: vec![],
            tasks: vec![
                task(0, 0, 0.0, (0.0, 1.0, 1.0, 0.0)), // busy 0..2
                task(0, 1, 0.0, (0.0, 1.0, 1.0, 0.0)), // busy 0..2
                task(1, 0, 2.0, (0.0, 1.0, 1.0, 0.0)), // busy 2..4
            ],
        };
        let u = tr.utilization(5); // t = 0, 1, 2, 3, 4
        assert_eq!(u.len(), 5);
        assert_eq!(u[0].1, 2);
        assert_eq!(u[1].1, 2);
        assert_eq!(u[2].1, 1); // stage 0 ended exactly at 2
        assert_eq!(u[3].1, 1);
        assert_eq!(u[4].1, 0); // end instant exclusive
        // Mean utilization: 6 busy slot-seconds over 4 s × 2 slots = 0.75.
        assert!((tr.mean_utilization(2) - 0.75).abs() < 1e-12);
        assert_eq!(tr.mean_utilization(0), 0.0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let tr = ExecutionTrace {
            attempts: vec![],
            replans: vec![],
            tasks: vec![
                task(0, 0, 0.0, (0.1, 1.0, 1.0, 0.5)),
                task(1, 0, 2.6, (0.1, 1.0, 1.0, 0.5)),
            ],
        };
        let j = tr.to_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 8, "4 steps x 2 tasks");
        assert!(events.iter().all(|e| e["ph"] == "X"));
        // Zero-duration steps are dropped.
        let tr2 = ExecutionTrace {
            attempts: vec![],
            replans: vec![],
            tasks: vec![task(0, 0, 0.0, (0.0, 1.0, 1.0, 0.0))],
        };
        let v2: serde_json::Value = serde_json::from_str(&tr2.to_chrome_trace()).unwrap();
        assert_eq!(v2.as_array().unwrap().len(), 2);
    }

    #[test]
    fn gantt_renders_rows() {
        let tr = ExecutionTrace {
            attempts: vec![],
            replans: vec![],
            tasks: vec![
                task(0, 0, 0.0, (0.1, 1.0, 1.0, 0.5)),
                task(1, 0, 2.6, (0.1, 1.0, 1.0, 0.5)),
            ],
        };
        let g = tr.ascii_gantt(40);
        assert!(g.contains("stage  0"));
        assert!(g.contains("stage  1"));
        assert!(g.contains("JCT"));
        assert!(g.contains('█'));
    }
}
