//! Property tests for the control-plane write-ahead journal.
//!
//! Two families:
//!
//! * **Crash/recovery** — for random DAGs, fault histories and crash
//!   record indices, on both engines: the armed run dies exactly at the
//!   requested record, recovery terminates, the recovered run is
//!   bit-identical to the crash-free run (metrics, task timelines,
//!   attempt history, replan decisions), its telemetry certifies
//!   race-free, and the resumed journal re-validates clean.
//! * **Corruption** — a journal with a mid-frame truncation, a flipped
//!   CRC byte, or a duplicated commit frame is detected with *exact*
//!   record-index provenance, checked against an independent re-scan of
//!   the frame layout.

use ditto_audit::RaceOptions;
use ditto_cluster::ResourceManager;
use ditto_core::{
    DittoScheduler, JointOptions, Objective, Schedule, Scheduler, SchedulingContext,
};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_dag::JobDag;
use ditto_exec::{
    decode_journal, try_simulate_adaptive_journaled, try_simulate_with_faults_journaled,
    validate_journal, AdaptiveConfig, ExecConfig, ExecError, ExecutionTrace, FaultPlan,
    FaultRates, GroundTruth, JobMetrics, JournalRecord, JournalSession, RecoveryPolicy,
    ReschedulingContext,
};
use ditto_obs::Recorder;
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use proptest::prelude::*;

/// Two-server slot capacities shared by the schedule and the race check.
const SLOTS: &[u32] = &[12, 10];

fn setup(dag_seed: u64, stages: usize) -> (JobDag, JobTimeModel, ResourceManager, Schedule) {
    let dag = random_dag(dag_seed, &RandomDagConfig::sized(stages));
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let rm = ResourceManager::from_free_slots(SLOTS.to_vec());
    let schedule = DittoScheduler::new().schedule(&SchedulingContext {
        dag: &dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    (dag, model, rm, schedule)
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    adaptive: bool,
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    model: &JobTimeModel,
    rm: &ResourceManager,
    obs: &Recorder,
    session: &mut JournalSession,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    let ctx = ReschedulingContext {
        model,
        resources: rm,
        objective: Objective::Jct,
        options: JointOptions::default(),
    };
    if adaptive {
        try_simulate_adaptive_journaled(
            dag,
            schedule,
            gt,
            plan,
            &policy(),
            &ctx,
            &AdaptiveConfig::default(),
            obs,
            session,
        )
    } else {
        try_simulate_with_faults_journaled(
            dag,
            schedule,
            gt,
            plan,
            &policy(),
            Some(&ctx),
            obs,
            session,
        )
    }
}

/// A crash-free journal of a random run, for the corruption properties.
fn sample_journal(dag_seed: u64) -> Vec<u8> {
    let (dag, model, rm, schedule) = setup(dag_seed, 6);
    let gt = GroundTruth::new(ExecConfig::default());
    let plan = FaultPlan::from_rates(FaultRates {
        loss_prob: 0.03,
        ..FaultRates::none(dag_seed.wrapping_add(7))
    });
    let mut session = JournalSession::fresh(None);
    run(
        false,
        &dag,
        &schedule,
        &gt,
        &plan,
        &model,
        &rm,
        &Recorder::disabled(),
        &mut session,
    )
    .expect("crash-free journaled run");
    session.durable_bytes().to_vec()
}

/// Independent re-scan of the frame layout: 9-byte header
/// (`DITTOWAL` + version), then `[len u32][crc u64][payload]` frames.
/// Returns each frame's start offset. Deliberately NOT built on the
/// journal decoder — provenance assertions below compare the decoder's
/// claims against this second opinion.
fn frame_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut pos = 9;
    while pos + 12 <= bytes.len() {
        starts.push(pos);
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 12 + len;
    }
    assert_eq!(pos, bytes.len(), "sample journal must end on a frame boundary");
    starts
}

/// Map a fraction in [0, 1) onto an index of `len` items.
fn pick(frac: f64, len: usize) -> usize {
    ((frac * len as f64) as usize).min(len - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash at a random journal record of a random DAG's run, on either
    /// engine: recovery terminates and is bit-identical, the recovered
    /// telemetry is race-free, and the resumed journal validates clean.
    #[test]
    fn crash_resume_is_bit_identical_on_random_dags(
        dag_seed in 0u64..512,
        stages in 5usize..9,
        loss in 0.0f64..0.10,
        fault_seed in 0u64..1024,
        crash_frac in 0.0f64..1.0,
        engine_bit in 0u64..2,
    ) {
        let adaptive = engine_bit == 1;
        let (dag, model, rm, schedule) = setup(dag_seed, stages);
        let gt = GroundTruth::new(ExecConfig::default());
        let mut plan = FaultPlan::from_rates(FaultRates {
            loss_prob: loss,
            ..FaultRates::none(fault_seed)
        });
        if adaptive {
            // Give the adaptive engine a reason to replan, so recovery
            // also exercises journaled replan splices.
            plan = plan.with_drift(2.0);
        }

        let mut clean = JournalSession::fresh(None);
        let (bt, bm) = run(
            adaptive, &dag, &schedule, &gt, &plan, &model, &rm,
            &Recorder::disabled(), &mut clean,
        ).expect("crash-free journaled run");
        let total = clean.records_written();
        let k = pick(crash_frac, total as usize) as u64;

        let mut armed = JournalSession::fresh(Some(k));
        let err = run(
            adaptive, &dag, &schedule, &gt, &plan, &model, &rm,
            &Recorder::disabled(), &mut armed,
        ).expect_err("armed crash must kill the run");
        prop_assert!(
            matches!(err, ExecError::CoordinatorCrash { at_record } if at_record == k),
            "crash at {k} surfaced {err}"
        );

        let mut resumed = JournalSession::resume(armed.durable_bytes())
            .expect("torn journal must resume");
        let obs = Recorder::new();
        let (rt, rmx) = run(
            adaptive, &dag, &schedule, &gt, &plan, &model, &rm, &obs, &mut resumed,
        ).expect("recovery must terminate");

        prop_assert_eq!(rmx.jct.to_bits(), bm.jct.to_bits(), "JCT must be bit-identical");
        prop_assert!(rmx == bm, "recovered metrics diverged");
        prop_assert!(rt.tasks == bt.tasks, "recovered task timelines diverged");
        prop_assert!(rt.attempts == bt.attempts, "recovered attempt history diverged");
        prop_assert!(rt.replans == bt.replans, "recovered replan decisions diverged");

        let race = ditto_audit::check_trace(&obs.finish(), &RaceOptions {
            capacities: Some(SLOTS.to_vec()),
            ..Default::default()
        });
        prop_assert!(race.is_clean(), "recovered run races:\n{}", race.render());

        let decoded = decode_journal(resumed.durable_bytes()).expect("resumed journal decodes");
        prop_assert!(decoded.torn.is_none(), "resumed journal still torn");
        let findings = validate_journal(&decoded.records);
        prop_assert!(findings.is_empty(), "resumed journal dirty: {findings:?}");
    }

    /// Cutting a journal anywhere strictly inside frame `r` is reported
    /// as a torn tail at record `r`, at that frame's byte offset.
    #[test]
    fn truncation_mid_frame_is_detected_with_provenance(
        dag_seed in 0u64..64,
        rec_frac in 0.0f64..1.0,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = sample_journal(dag_seed);
        let starts = frame_starts(&bytes);
        let r = pick(rec_frac, starts.len());
        let start = starts[r];
        let end = starts.get(r + 1).copied().unwrap_or(bytes.len());
        let cut = start + 1 + pick(cut_frac, end - start - 1);
        prop_assert!(cut > start && cut < end);

        let d = decode_journal(&bytes[..cut]).expect("a torn tail is not a hard error");
        prop_assert_eq!(d.records.len(), r, "records before the cut survive");
        let torn = d.torn.expect("mid-frame cut must be flagged");
        prop_assert_eq!(torn.at_record, r as u64);
        prop_assert_eq!(torn.byte_offset, start);
        prop_assert_eq!(torn.reason.label(), "truncated");
    }

    /// Flipping any byte of frame `r`'s checksum is reported as a
    /// checksum mismatch at record `r`; the prefix still decodes.
    #[test]
    fn flipped_crc_byte_is_detected_with_provenance(
        dag_seed in 0u64..64,
        rec_frac in 0.0f64..1.0,
        crc_byte in 0usize..8,
    ) {
        let mut bytes = sample_journal(dag_seed);
        let starts = frame_starts(&bytes);
        let r = pick(rec_frac, starts.len());
        bytes[starts[r] + 4 + crc_byte] ^= 0x40;

        let d = decode_journal(&bytes).expect("a corrupt frame is not a hard error");
        prop_assert_eq!(d.records.len(), r, "records before the corruption survive");
        let torn = d.torn.expect("flipped CRC byte must be flagged");
        prop_assert_eq!(torn.at_record, r as u64);
        prop_assert_eq!(torn.byte_offset, starts[r]);
        prop_assert_eq!(torn.reason.label(), "checksum-mismatch");
    }

    /// Splicing a copy of an object-commit frame after itself decodes
    /// fine (the copy is CRC-valid) but the validator names the copy's
    /// record index as a duplicated commit.
    #[test]
    fn duplicated_commit_frame_is_flagged_with_index(
        dag_seed in 0u64..64,
        pick_frac in 0.0f64..1.0,
    ) {
        let bytes = sample_journal(dag_seed);
        let starts = frame_starts(&bytes);
        let d = decode_journal(&bytes).expect("sample journal decodes");
        let commits: Vec<usize> = d.records.iter().enumerate()
            .filter(|(_, rec)| matches!(rec, JournalRecord::ObjectCommit { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assert!(!commits.is_empty(), "sample run must commit objects");
        let r = commits[pick(pick_frac, commits.len())];
        let start = starts[r];
        let end = starts.get(r + 1).copied().unwrap_or(bytes.len());

        let mut dup = bytes[..end].to_vec();
        dup.extend_from_slice(&bytes[start..end]);
        dup.extend_from_slice(&bytes[end..]);

        let dd = decode_journal(&dup).expect("duplicated frame is CRC-valid");
        prop_assert!(dd.torn.is_none());
        prop_assert_eq!(dd.records.len(), d.records.len() + 1);
        let findings = validate_journal(&dd.records);
        let expected = format!("record {}: duplicated object-commit", r + 1);
        prop_assert!(
            findings.iter().any(|f| f.starts_with(&expected)),
            "expected {expected:?} among {findings:?}"
        );
    }
}
