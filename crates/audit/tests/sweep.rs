//! Acceptance sweep: every scheduler's output is certified clean across
//! seeded random DAGs, both objectives, and (via proptest) randomized
//! DAG shapes.

use ditto_audit::{audit, audit_with, AuditOptions};
use ditto_cluster::ResourceManager;
use ditto_core::reference::joint_optimize_reference;
use ditto_core::{joint_optimize, JointOptions, Objective, Scheduler as _};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_dag::JobDag;
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use proptest::prelude::*;

fn sweep_cluster() -> ResourceManager {
    ResourceManager::from_free_slots(vec![24, 24, 16, 16, 8, 8, 4, 4])
}

fn model_for(dag: &JobDag) -> JobTimeModel {
    JobTimeModel::from_rates(dag, &RateConfig::default())
}

/// The ISSUE acceptance gate: 32 seeds × 2 objectives × 3 schedulers,
/// zero error findings everywhere.
#[test]
fn thirty_two_seed_sweep_is_clean() {
    for seed in 0..32u64 {
        let dag = random_dag(seed, &RandomDagConfig::default());
        let model = model_for(&dag);
        let rm = sweep_cluster();
        for objective in [Objective::Jct, Objective::Cost] {
            let joint = joint_optimize(&dag, &model, &rm, objective, &JointOptions::default());
            let reference =
                joint_optimize_reference(&dag, &model, &rm, objective, &JointOptions::default());
            let nimble = ditto_core::baselines::NimbleScheduler { seed }.schedule(
                &ditto_core::SchedulingContext {
                    dag: &dag,
                    model: &model,
                    resources: &rm,
                    objective,
                },
            );
            for s in [&joint, &reference, &nimble] {
                let report = audit(&dag, &model, &rm, s);
                assert_eq!(
                    report.error_count(),
                    0,
                    "seed {seed} {objective:?} {}:\n{}",
                    s.scheduler,
                    report.render()
                );
            }
        }
    }
}

/// The paper's own query shapes stay certified under both objectives and
/// several cluster sizes, including tight budgets that force rounding's
/// shrink-largest path.
#[test]
fn paper_shapes_are_certified_across_budgets() {
    let dags = [
        ditto_dag::generators::fig1_join(),
        ditto_dag::generators::q95_shape(),
        ditto_dag::generators::diamond(8 << 30),
    ];
    for dag in &dags {
        let model = model_for(dag);
        let n = dag.num_stages() as u32;
        for slots in [vec![96; 8], vec![12; 4], vec![n.max(4); 2]] {
            let rm = ResourceManager::from_free_slots(slots.clone());
            for objective in [Objective::Jct, Objective::Cost] {
                let s = joint_optimize(dag, &model, &rm, objective, &JointOptions::default());
                let report = audit(dag, &model, &rm, &s);
                assert_eq!(
                    report.error_count(),
                    0,
                    "{} {objective:?} slots {slots:?}:\n{}",
                    dag.name(),
                    report.render()
                );
            }
        }
    }
}

/// Deadline/cost options pass when the bound is generous.
#[test]
fn generous_objective_bounds_pass() {
    let dag = ditto_dag::generators::q95_shape();
    let model = model_for(&dag);
    let rm = ResourceManager::from_free_slots(vec![96; 8]);
    let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
    let report = audit_with(
        &dag,
        &model,
        &rm,
        &s,
        &AuditOptions {
            deadline: Some(1e12),
            cost_budget: Some(1e18),
            ..Default::default()
        },
    );
    assert!(report.is_clean(), "{}", report.render());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random layered DAG, any seed, any objective: the joint
    /// optimizer and the reference both produce certified schedules.
    #[test]
    fn random_dags_always_certify(
        seed in 0u64..1_000_000,
        stages in 3usize..20,
        layers in 2usize..5,
        cost in 0u8..2,
    ) {
        let cfg = RandomDagConfig {
            stages,
            layers,
            ..Default::default()
        };
        let dag = random_dag(seed, &cfg);
        let model = model_for(&dag);
        let rm = sweep_cluster();
        let objective = if cost == 1 { Objective::Cost } else { Objective::Jct };
        for s in [
            joint_optimize(&dag, &model, &rm, objective, &JointOptions::default()),
            joint_optimize_reference(&dag, &model, &rm, objective, &JointOptions::default()),
        ] {
            let report = audit(&dag, &model, &rm, &s);
            prop_assert_eq!(
                report.error_count(),
                0,
                "seed {} stages {} {:?} {}:\n{}",
                seed, stages, objective, s.scheduler, report.render()
            );
        }
    }
}
