#![warn(missing_docs)]

//! # ditto-sql — a columnar mini analytics engine
//!
//! The paper evaluates Ditto on TPC-DS queries executed by "a data
//! analytics execution engine atop SPRIGHT \[that\] integrates a set of SQL
//! operators (e.g., join and groupby)" (§5). This crate is that substrate,
//! built from scratch:
//!
//! * [`mod@column`] / [`table`] — typed columnar storage with
//!   selection-vector row selection ([`selvec`]), single-pass hash
//!   partitioning and a compact binary codec (bulk little-endian numeric
//!   runs, dictionary-encoded strings) so intermediate tables can travel
//!   through the `ditto-storage` data plane;
//! * [`expr`] — predicates over columns, evaluated on typed slices;
//! * [`ops`] — scan, filter/project, hash join (inner/semi/anti),
//!   group-by aggregation (sum/count/count-distinct/avg/min/max, with
//!   `HAVING`), distinct, sort-limit, union. Joins and group-bys run on
//!   typed key fast paths ([`hash`], [`dict`]) and are proven
//!   bit-identical to the retained row-at-a-time [`mod@reference`]
//!   implementations;
//! * [`datagen`] — a synthetic TPC-DS-like database generator with a
//!   configurable scale factor preserving the benchmark's relative table
//!   sizes and key skew;
//! * [`queries`] — Q1, Q16, Q94 and Q95 hand-lowered to stage DAGs
//!   ([`plan::QueryPlan`]) with per-stage operators the execution engine
//!   interprets, plus single-threaded reference implementations used to
//!   verify distributed results. Q95's DAG reproduces Fig. 13 exactly
//!   (9 stages, two broadcast joins).

pub mod column;
pub mod datagen;
pub mod dict;
pub mod expr;
pub mod hash;
pub mod ops;
pub mod plan;
pub mod queries;
pub mod reference;
pub mod selvec;
pub mod table;

pub use column::Column;
pub use datagen::{Database, ScaleConfig};
pub use expr::{CmpOp, Pred};
pub use plan::{AggFunc, JoinKind, QueryPlan, StageOp, StageSpec};
pub use selvec::SelVec;
pub use table::{EncodedPartition, Field, Schema, Table};
