//! Property tests over the telemetry stream: for arbitrary chain jobs
//! and fault seeds, recorded spans are well-formed — every closed span
//! has `end >= start`, every child nests inside its parent, and
//! cumulative counters never decrease.

use ditto_cluster::ResourceManager;
use ditto_core::{DittoScheduler, Objective, SchedulingContext};
use ditto_exec::{
    try_simulate_with_faults_traced, FaultPlan, FaultRates, RecoveryPolicy,
};
use ditto_exec::{ExecConfig, GroundTruth};
use ditto_obs::{Recorder, TraceData};
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use proptest::prelude::*;
use std::collections::HashMap;

const EPS: f64 = 1e-9;

fn traced_chain_run(stages: u32, gb: u64, selectivity: f64, rate: f64, seed: u64) -> TraceData {
    let dag = ditto_dag::generators::chain(stages as usize, gb << 30, selectivity);
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let rm = ResourceManager::from_free_slots(vec![24, 24, 24]);
    let obs = Recorder::new();
    let schedule = DittoScheduler::new().schedule_traced(
        &SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        },
        &obs,
    );
    let plan = FaultPlan::from_rates(FaultRates {
        crash_prob: rate,
        straggler_prob: rate,
        straggler_slowdown: 3.0,
        ..FaultRates::none(seed)
    });
    let policy = RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    };
    let gt = GroundTruth::new(ExecConfig::default());
    try_simulate_with_faults_traced(&dag, &schedule, &gt, &plan, &policy, None, &obs)
        .expect("bounded fault rates recover");
    obs.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spans_are_well_formed(
        stages in 2u32..5,
        gb in 1u64..4,
        selectivity in 0.3f64..1.0,
        rate in 0.0f64..0.12,
        seed in 0u64..u64::MAX,
    ) {
        let data = traced_chain_run(stages, gb, selectivity, rate, seed);
        prop_assert!(!data.spans.is_empty());

        let by_id: HashMap<u32, _> = data.spans.iter().map(|s| (s.id, s)).collect();
        for s in &data.spans {
            // Every span in this pipeline is closed, and runs forward.
            prop_assert!(s.end.is_finite(), "span {} left open", s.name);
            prop_assert!(s.end >= s.start - EPS, "span {} ends before it starts", s.name);
            // Children nest within their parents.
            if s.parent != 0 {
                let p = by_id.get(&s.parent).expect("parent span exists");
                prop_assert!(
                    s.start >= p.start - EPS && s.end <= p.end + EPS,
                    "span {} [{}, {}] escapes parent {} [{}, {}]",
                    s.name, s.start, s.end, p.name, p.start, p.end
                );
            }
        }

        // Cumulative storage counters never decrease per series.
        let mut last: HashMap<&str, f64> = HashMap::new();
        for c in &data.samples {
            let prev = last.insert(c.series.as_str(), c.total).unwrap_or(0.0);
            prop_assert!(c.total >= prev - EPS, "counter {} went backwards", c.series);
        }
    }
}
