//! Ready-queue execution order and tie-break control.
//!
//! Both simulation engines (`crate::faults`, `crate::adaptive`) process
//! stages in **(ready time, stage id)** order through a [`ReadyQueue`]
//! instead of a fixed topological order. Ready time is the stage's
//! pre-recovery input gate: the max over in-edges of the producer's
//! write start (pipelined) or end (blocking). Two facts make this a
//! valid discrete-event order:
//!
//! 1. a stage enters the queue only when its last producer has been
//!    simulated, so its ready time is known exactly when it enters;
//! 2. pops are nondecreasing in ready time — a newly enabled consumer's
//!    ready time is at least its enabling producer's write start, which
//!    is at least that producer's own ready time (every `max` above
//!    preserves `>=` exactly in f64).
//!
//! Stages whose ready times are **bit-equal** are *simultaneous events*:
//! no physical signal orders them, so any execution order must yield the
//! same result. The [`TieBreak`] controller makes that order an explicit,
//! replayable decision instead of an accident of iteration order — the
//! canonical policy picks the lowest stage id, and the model checker
//! (`crate::explore`) drives the same engines through every other choice
//! to prove the result does not depend on it.

use ditto_dag::{JobDag, StageId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dependency-counting ready queue over a DAG's stages.
pub(crate) struct ReadyQueue {
    indeg: Vec<usize>,
    /// Enabled, not-yet-popped stages with their ready times.
    avail: Vec<(f64, StageId)>,
}

impl ReadyQueue {
    /// Queue with every source stage available at ready time 0.
    pub(crate) fn new(dag: &JobDag) -> Self {
        let n = dag.num_stages();
        let indeg: Vec<usize> = (0..n).map(|i| dag.in_degree(StageId(i as u32))).collect();
        let avail = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| (0.0, StageId(i as u32)))
            .collect();
        ReadyQueue { indeg, avail }
    }

    /// Record that stage `s` has been simulated, enabling consumers whose
    /// last producer it was. `ready_of` computes an enabled consumer's
    /// ready time from the (now known) producer timelines.
    pub(crate) fn complete(
        &mut self,
        dag: &JobDag,
        s: StageId,
        mut ready_of: impl FnMut(StageId) -> f64,
    ) {
        for e in dag.out_edges(s) {
            let c = e.dst;
            self.indeg[c.index()] -= 1;
            if self.indeg[c.index()] == 0 {
                self.avail.push((ready_of(c), c));
            }
        }
    }

    /// Pop the next stage: minimum ready time, ties resolved by the
    /// controller over the id-sorted candidate set. Returns the popped
    /// stage and its ready time.
    pub(crate) fn pop(&mut self, tie: &mut TieBreak) -> Option<(f64, StageId)> {
        if self.avail.is_empty() {
            return None;
        }
        let min = self
            .avail
            .iter()
            .map(|e| e.0)
            .fold(f64::INFINITY, f64::min);
        let mut cand: Vec<StageId> = self
            .avail
            .iter()
            .filter(|e| e.0 == min)
            .map(|e| e.1)
            .collect();
        cand.sort_unstable();
        let pick = if cand.len() == 1 {
            cand[0]
        } else {
            cand[tie.choose(cand.len())]
        };
        self.avail.retain(|e| e.1 != pick);
        Some((min, pick))
    }

    /// Stages still waiting or available (non-empty queue means the run
    /// is not done; used to assert every stage was simulated).
    #[cfg(test)]
    pub(crate) fn is_drained(&self) -> bool {
        self.avail.is_empty()
    }
}

enum TieMode {
    /// Lowest stage id first (the documented FIFO promise).
    Canonical,
    /// Replay a recorded decision vector; positions past the end (or out
    /// of range for the batch) fall back to the canonical choice.
    Scripted(Vec<u32>),
    /// Seeded uniform sampling over the candidate set.
    Random(StdRng),
}

/// The tie-break controller: one `choose` call per simultaneous-event
/// batch of size >= 2. Records the realized decision vector and the
/// branching arity at every decision point, so a run can be replayed,
/// enumerated (odometer over `arity`) or shrunk to a witness.
pub(crate) struct TieBreak {
    mode: TieMode,
    /// Realized choices, one per decision point.
    pub(crate) decisions: Vec<u32>,
    /// Candidate-set size at each decision point.
    pub(crate) arity: Vec<u32>,
}

impl TieBreak {
    /// Lowest-stage-id tie-breaking (production order).
    pub(crate) fn canonical() -> Self {
        TieBreak {
            mode: TieMode::Canonical,
            decisions: Vec::new(),
            arity: Vec::new(),
        }
    }

    /// Replay the given decision vector.
    pub(crate) fn scripted(decisions: Vec<u32>) -> Self {
        TieBreak {
            mode: TieMode::Scripted(decisions),
            decisions: Vec::new(),
            arity: Vec::new(),
        }
    }

    /// Seeded random tie-breaking (sampling mode of the explorer).
    pub(crate) fn random(seed: u64) -> Self {
        TieBreak {
            mode: TieMode::Random(StdRng::seed_from_u64(seed)),
            decisions: Vec::new(),
            arity: Vec::new(),
        }
    }

    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 2);
        let pos = self.decisions.len();
        let d = match &mut self.mode {
            TieMode::Canonical => 0,
            TieMode::Scripted(v) => v.get(pos).copied().unwrap_or(0).min(n as u32 - 1) as usize,
            TieMode::Random(rng) => rng.gen_range(0..n),
        };
        self.decisions.push(d as u32);
        self.arity.push(n as u32);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> JobDag {
        ditto_dag::generators::diamond(1 << 30)
    }

    #[test]
    fn canonical_pops_ready_then_id_order() {
        let dag = diamond();
        let mut q = ReadyQueue::new(&dag);
        let mut tie = TieBreak::canonical();
        // Source pops at 0; give both branches the same ready time so
        // they form a batch, then the sink.
        let (r0, s0) = q.pop(&mut tie).unwrap();
        assert_eq!((r0, s0), (0.0, StageId(0)));
        q.complete(&dag, s0, |_| 5.0);
        let (r1, s1) = q.pop(&mut tie).unwrap();
        let (r2, s2) = q.pop(&mut tie).unwrap();
        assert_eq!((r1, s1), (5.0, StageId(1)), "lowest id first on a tie");
        assert_eq!((r2, s2), (5.0, StageId(2)));
        q.complete(&dag, s1, |_| 9.0);
        q.complete(&dag, s2, |_| 9.0);
        let (r3, s3) = q.pop(&mut tie).unwrap();
        assert_eq!((r3, s3), (9.0, StageId(3)));
        assert!(q.pop(&mut tie).is_none());
        assert!(q.is_drained());
        // Exactly one decision point (the 2-way tie), canonical pick 0.
        assert_eq!(tie.decisions, vec![0]);
        assert_eq!(tie.arity, vec![2]);
    }

    #[test]
    fn scripted_flips_the_tie() {
        let dag = diamond();
        let mut q = ReadyQueue::new(&dag);
        let mut tie = TieBreak::scripted(vec![1]);
        let (_, s0) = q.pop(&mut tie).unwrap();
        q.complete(&dag, s0, |_| 5.0);
        let (_, s1) = q.pop(&mut tie).unwrap();
        assert_eq!(s1, StageId(2), "scripted decision 1 picks the second candidate");
        let (_, s2) = q.pop(&mut tie).unwrap();
        assert_eq!(s2, StageId(1));
        assert_eq!(tie.decisions, vec![1]);
        assert_eq!(tie.arity, vec![2]);
    }

    #[test]
    fn out_of_range_script_falls_back_to_canonical() {
        let dag = diamond();
        let mut q = ReadyQueue::new(&dag);
        let mut tie = TieBreak::scripted(vec![7]);
        let (_, s0) = q.pop(&mut tie).unwrap();
        q.complete(&dag, s0, |_| 5.0);
        let (_, s1) = q.pop(&mut tie).unwrap();
        // 7 clamps to the last candidate (index 1) — never panics.
        assert_eq!(s1, StageId(2));
    }

    #[test]
    fn distinct_ready_times_never_consult_the_controller() {
        let dag = diamond();
        let mut q = ReadyQueue::new(&dag);
        let mut tie = TieBreak::random(3);
        let (_, s0) = q.pop(&mut tie).unwrap();
        let mut r = 4.0;
        q.complete(&dag, s0, |_| {
            r += 1.0;
            r
        });
        let (_, a) = q.pop(&mut tie).unwrap();
        let (_, b) = q.pop(&mut tie).unwrap();
        assert_eq!((a, b), (StageId(1), StageId(2)), "ready order, no tie");
        assert!(tie.decisions.is_empty(), "no simultaneous events, no decisions");
    }
}
