//! Property-based tests of the SQL engine and the simulator.

use ditto::exec::{simulate, ExecConfig, GroundTruth};
use ditto::sql::ops::{distinct, group_by, hash_join, sort_limit, AggSpec, JoinKind, SortOrder};
use ditto::sql::ops::group_by::AggFunc;
use ditto::sql::{Column, Table};
use ditto::sql::table::Schema;
use ditto::sql::column::DataType;
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(0i64..20, n),
            proptest::collection::vec(-100.0f64..100.0, n),
        )
            .prop_map(|(keys, vals)| {
                Table::new(
                    Schema::new(&[("k", DataType::I64), ("v", DataType::F64)]),
                    vec![Column::I64(keys), Column::F64(vals)],
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Codec roundtrip: encode/decode is the identity.
    #[test]
    fn codec_roundtrip(t in arb_table()) {
        prop_assert_eq!(Table::decode(t.encode()), t);
    }

    /// Hash partitioning is a partition: no row lost, none duplicated,
    /// and equal keys land together.
    #[test]
    fn hash_partition_is_partition(t in arb_table(), parts in 1usize..8) {
        let buckets = t.hash_partition("k", parts);
        let total: usize = buckets.iter().map(|b| b.num_rows()).sum();
        prop_assert_eq!(total, t.num_rows());
        // Each key appears in exactly one bucket.
        for key in 0i64..20 {
            let holders = buckets
                .iter()
                .filter(|b| b.column_req("k").as_i64().contains(&key))
                .count();
            prop_assert!(holders <= 1, "key {key} in {holders} buckets");
        }
    }

    /// Distributed group-by (partition → local group-by → concat) equals
    /// the single-shot group-by, up to row order.
    #[test]
    fn distributed_group_by_equals_local(t in arb_table(), parts in 1usize..6) {
        let whole = group_by(&t, &["k"], &[AggSpec::new(AggFunc::Sum, "v", "s")], None);
        let buckets = t.hash_partition("k", parts);
        let partials: Vec<Table> = buckets
            .iter()
            .map(|b| group_by(b, &["k"], &[AggSpec::new(AggFunc::Sum, "v", "s")], None))
            .collect();
        let merged = Table::concat(&partials).unwrap();
        // Compare as key → sum maps.
        let to_map = |t: &Table| -> std::collections::HashMap<i64, f64> {
            t.column_req("k")
                .as_i64()
                .iter()
                .copied()
                .zip(t.column_req("s").as_f64().iter().copied())
                .collect()
        };
        let (a, b) = (to_map(&whole), to_map(&merged));
        prop_assert_eq!(a.len(), b.len());
        for (k, v) in a {
            let w = b[&k];
            prop_assert!((v - w).abs() < 1e-9 * v.abs().max(1.0));
        }
    }

    /// Semi + anti join partition the left side.
    #[test]
    fn semi_anti_partition_left(l in arb_table(), r in arb_table()) {
        let semi = hash_join(&l, &r, "k", "k", JoinKind::LeftSemi);
        let anti = hash_join(&l, &r, "k", "k", JoinKind::LeftAnti);
        prop_assert_eq!(semi.num_rows() + anti.num_rows(), l.num_rows());
    }

    /// Inner join row count equals the Σ over keys of count products.
    #[test]
    fn inner_join_cardinality(l in arb_table(), r in arb_table()) {
        let j = hash_join(&l, &r, "k", "k", JoinKind::Inner);
        let count = |t: &Table, key: i64| t.column_req("k").as_i64().iter().filter(|&&x| x == key).count();
        let expect: usize = (0i64..20).map(|k| count(&l, k) * count(&r, k)).sum();
        prop_assert_eq!(j.num_rows(), expect);
    }

    /// sort_limit returns a sorted prefix of the right length.
    #[test]
    fn sort_limit_sorted_prefix(t in arb_table(), limit in 0usize..80) {
        let s = sort_limit(&t, "v", SortOrder::Asc, limit);
        prop_assert_eq!(s.num_rows(), limit.min(t.num_rows()));
        let vals = s.column_req("v").as_f64();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// distinct yields unique rows covering every input key.
    #[test]
    fn distinct_covers_keys(t in arb_table()) {
        let d = distinct(&t, &["k"]);
        let keys = d.column_req("k").as_i64();
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), keys.len(), "no duplicates");
        for k in t.column_req("k").as_i64() {
            prop_assert!(keys.contains(k));
        }
    }

    /// Simulation invariants over random DAGs: tasks respect stage
    /// dependencies; JCT equals the latest task end; cost is positive.
    #[test]
    fn simulation_respects_dependencies(seed in 0u64..200, stages in 3usize..12) {
        use ditto::core::baselines::EvenSplitScheduler;
        use ditto::core::{Objective, Scheduler, SchedulingContext};
        let dag = ditto::dag::generators::random_dag(
            seed,
            &ditto::dag::generators::RandomDagConfig { stages, layers: 3, ..Default::default() },
        );
        let model = ditto::timemodel::JobTimeModel::from_rates(
            &dag,
            &ditto::timemodel::model::RateConfig::default(),
        );
        let rm = ditto::cluster::ResourceManager::from_free_slots(vec![24, 24, 24]);
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let (trace, metrics) = simulate(&dag, &schedule, &GroundTruth::new(ExecConfig::default()));
        for e in dag.edges() {
            let src_end = trace.stage_end(e.src.0);
            for t in trace.tasks.iter().filter(|t| t.stage == e.dst.0) {
                prop_assert!(t.read_start >= src_end - 1e-9);
            }
        }
        prop_assert!((metrics.jct - trace.jct()).abs() < 1e-9);
        prop_assert!(metrics.compute_cost > 0.0);
    }
}

// Fault-injection properties run the physical executor, so they use far
// fewer cases than the pure-engine block above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any recoverable fault plan (a crash + a straggler, arbitrary
    /// placement) leaves the local runner's final table byte-identical to
    /// the fault-free run.
    #[test]
    fn recovered_run_is_byte_identical(
        crash_stage in 0u32..4,
        crash_task in 0u32..3,
        slow_stage in 0u32..4,
        slowdown in 2.0f64..8.0,
    ) {
        use ditto::core::baselines::EvenSplitScheduler;
        use ditto::core::{Objective, Scheduler, SchedulingContext};
        use ditto::exec::{FaultEvent, FaultPlan, LocalRuntime, RecoveryPolicy};
        use ditto::sql::queries::Query;
        use ditto::sql::{Database, ScaleConfig};
        use ditto::storage::{DataPlane, Medium};
        let db = Database::generate(ScaleConfig::with_sf(0.1));
        let plan = Query::Q1.prepared_plan(&db);
        let model = ditto::timemodel::JobTimeModel::from_rates(
            &plan.dag,
            &ditto::timemodel::model::RateConfig::default(),
        );
        let rm = ditto::cluster::ResourceManager::from_free_slots(vec![8, 8]);
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let clean = LocalRuntime::new()
            .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, 2))
            .unwrap();
        // Fault targets wrap into the DAG; events naming a task index
        // beyond a stage's DoP simply never fire, which must also be safe.
        let stages = plan.dag.num_stages() as u32;
        let faulty = LocalRuntime {
            faults: FaultPlan::from_events(vec![
                FaultEvent::TaskCrash {
                    stage: ditto::dag::StageId(crash_stage % stages),
                    task: crash_task,
                    attempt: 0,
                    at_fraction: 0.5,
                },
                FaultEvent::Straggler {
                    stage: ditto::dag::StageId(slow_stage % stages),
                    task: 0,
                    slowdown,
                },
            ]),
            recovery: RecoveryPolicy::default(),
            ..Default::default()
        }
        .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, 2))
        .unwrap();
        prop_assert_eq!(faulty.result.encode(), clean.result.encode());
    }

    /// Simulated JCT is monotonically non-decreasing in the number of
    /// injected task crashes (under plain bounded retry).
    #[test]
    fn sim_jct_monotone_in_fault_count(
        fracs in proptest::collection::vec(0.05f64..0.95, 6),
    ) {
        use ditto::core::baselines::EvenSplitScheduler;
        use ditto::core::{Objective, Scheduler, SchedulingContext};
        use ditto::exec::{try_simulate_with_faults, FaultEvent, FaultPlan, RecoveryPolicy};
        let dag = ditto::dag::generators::fig1_join();
        let model = ditto::timemodel::JobTimeModel::from_rates(
            &dag,
            &ditto::timemodel::model::RateConfig::default(),
        );
        let rm = ditto::cluster::ResourceManager::from_free_slots(vec![16, 16]);
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let gt = GroundTruth::new(ExecConfig::default());
        let pool: Vec<FaultEvent> = fracs
            .iter()
            .enumerate()
            .map(|(i, &at_fraction)| FaultEvent::TaskCrash {
                stage: ditto::dag::StageId(i as u32 / 2),
                task: i as u32 % 2,
                attempt: 0,
                at_fraction,
            })
            .collect();
        let mut last = 0.0_f64;
        for k in 0..=pool.len() {
            let plan = FaultPlan::from_events(pool[..k].to_vec());
            let (_, m) = try_simulate_with_faults(
                &dag,
                &schedule,
                &gt,
                &plan,
                &RecoveryPolicy::retry_only(),
                None,
            )
            .unwrap();
            prop_assert!(
                m.jct >= last - 1e-9,
                "jct dropped from {} to {} at {} crashes",
                last,
                m.jct,
                k
            );
            last = m.jct;
        }
    }
}
