//! Row predicates: the filter language of the mini engine.
//!
//! Evaluation is vectorized: each predicate variant dispatches on the
//! column type once and runs a tight per-type loop over the typed slice —
//! no per-cell [`Value`] construction, no `String` clones. Semantics
//! (including panic messages and NaN ordering) match the retained
//! [`crate::reference::eval_reference`] exactly.

use crate::column::{Column, Value};
use crate::table::Table;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A predicate over one table's rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `column OP literal`.
    Cmp {
        /// Column name.
        col: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Value,
    },
    /// `column IN (set)` over integer columns.
    InI64 {
        /// Column name.
        col: String,
        /// The accepted values.
        set: Vec<i64>,
    },
    /// `column IN (set)` over string columns.
    InStr {
        /// Column name.
        col: String,
        /// The accepted values.
        set: Vec<String>,
    },
    /// `left OP scale·right` between two numeric columns of the same table
    /// (Q1's `ctr_total > 1.2 × avg_return`).
    ColCmp {
        /// Left column name.
        left: String,
        /// Operator.
        op: CmpOp,
        /// Right column name.
        right: String,
        /// Multiplier applied to the right column.
        scale: f64,
    },
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Convenience: `col = value` for integers.
    pub fn eq_i64(col: &str, v: i64) -> Pred {
        Pred::Cmp {
            col: col.into(),
            op: CmpOp::Eq,
            value: Value::I64(v),
        }
    }

    /// Convenience: `col = value` for strings.
    pub fn eq_str(col: &str, v: &str) -> Pred {
        Pred::Cmp {
            col: col.into(),
            op: CmpOp::Eq,
            value: Value::Str(v.into()),
        }
    }

    /// Convenience: `lo <= col <= hi` for integers (date ranges).
    pub fn between_i64(col: &str, lo: i64, hi: i64) -> Pred {
        Pred::And(vec![
            Pred::Cmp {
                col: col.into(),
                op: CmpOp::Ge,
                value: Value::I64(lo),
            },
            Pred::Cmp {
                col: col.into(),
                op: CmpOp::Le,
                value: Value::I64(hi),
            },
        ])
    }

    /// Evaluate to a row mask over the table.
    pub fn eval(&self, t: &Table) -> Vec<bool> {
        use std::cmp::Ordering;
        let n = t.num_rows();
        match self {
            Pred::Cmp { col, op, value } => {
                let c = t.column_req(col);
                match (c, value) {
                    (Column::I64(v), Value::I64(b)) => {
                        v.iter().map(|x| cmp_ord(x.cmp(b), *op)).collect()
                    }
                    (Column::F64(v), Value::F64(b)) => v
                        .iter()
                        .map(|x| {
                            cmp_ord(x.partial_cmp(b).unwrap_or(Ordering::Equal), *op)
                        })
                        .collect(),
                    (Column::Str(v), Value::Str(b)) => v
                        .iter()
                        .map(|x| cmp_ord(x.as_str().cmp(b.as_str()), *op))
                        .collect(),
                    _ if n == 0 => Vec::new(),
                    _ => {
                        // Mismatched types: the reference panics on the
                        // first evaluated cell; reproduce its message.
                        panic!(
                            "type mismatch in comparison: {:?} vs {:?}",
                            c.value(0),
                            value
                        )
                    }
                }
            }
            Pred::InI64 { col, set } => {
                let mut s: Vec<i64> = set.clone();
                s.sort_unstable();
                s.dedup();
                let c = t.column_req(col).as_i64();
                c.iter().map(|v| s.binary_search(v).is_ok()).collect()
            }
            Pred::InStr { col, set } => {
                let mut s: Vec<&str> = set.iter().map(|x| x.as_str()).collect();
                s.sort_unstable();
                s.dedup();
                let c = t.column_req(col).as_str();
                c.iter()
                    .map(|v| s.binary_search(&v.as_str()).is_ok())
                    .collect()
            }
            Pred::ColCmp {
                left,
                op,
                right,
                scale,
            } => {
                let l = t.column_req(left);
                let r = t.column_req(right);
                if n == 0 {
                    return Vec::new();
                }
                let lv = NumView::of(l);
                let rv = NumView::of(r);
                (0..n)
                    .map(|row| {
                        let a = lv.get(row);
                        let b = rv.get(row) * scale;
                        cmp_ord(a.partial_cmp(&b).unwrap_or(Ordering::Equal), *op)
                    })
                    .collect()
            }
            Pred::And(ps) => {
                let mut mask = vec![true; n];
                for p in ps {
                    for (m, x) in mask.iter_mut().zip(p.eval(t)) {
                        *m = *m && x;
                    }
                }
                mask
            }
            Pred::Or(ps) => {
                let mut mask = vec![false; n];
                for p in ps {
                    for (m, x) in mask.iter_mut().zip(p.eval(t)) {
                        *m = *m || x;
                    }
                }
                mask
            }
            Pred::Not(p) => p.eval(t).into_iter().map(|b| !b).collect(),
        }
    }
}

/// A numeric read-only view over an i64 or f64 column.
enum NumView<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl<'a> NumView<'a> {
    /// View a column as numeric; panics like the reference's `numeric()`
    /// on string columns (callers only construct views for non-empty
    /// tables, matching its lazy per-row rejection).
    fn of(c: &'a Column) -> NumView<'a> {
        match c {
            Column::I64(v) => NumView::I(v),
            Column::F64(v) => NumView::F(v),
            Column::Str(v) => {
                panic!("numeric comparison over string value {:?}", v[0])
            }
        }
    }

    fn get(&self, row: usize) -> f64 {
        match self {
            NumView::I(v) => v[row] as f64,
            NumView::F(v) => v[row],
        }
    }
}

fn cmp_ord(ord: std::cmp::Ordering, op: CmpOp) -> bool {
    use std::cmp::Ordering;
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, DataType};
    use crate::table::{Schema, Table};

    fn t() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("s", DataType::Str), ("x", DataType::F64)]),
            vec![
                Column::I64(vec![1, 2, 3, 4, 5]),
                Column::Str(vec!["TN".into(), "CA".into(), "TN".into(), "NY".into(), "WA".into()]),
                Column::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            ],
        )
    }

    #[test]
    fn comparisons() {
        let t = t();
        assert_eq!(Pred::eq_i64("k", 3).eval(&t), vec![false, false, true, false, false]);
        assert_eq!(
            Pred::eq_str("s", "TN").eval(&t),
            vec![true, false, true, false, false]
        );
        let gt = Pred::Cmp {
            col: "x".into(),
            op: CmpOp::Gt,
            value: Value::F64(3.0),
        };
        assert_eq!(gt.eval(&t), vec![false, false, false, true, true]);
    }

    #[test]
    fn between_and_in() {
        let t = t();
        assert_eq!(
            Pred::between_i64("k", 2, 4).eval(&t),
            vec![false, true, true, true, false]
        );
        let ins = Pred::InI64 {
            col: "k".into(),
            set: vec![1, 5],
        };
        assert_eq!(ins.eval(&t), vec![true, false, false, false, true]);
        let instr = Pred::InStr {
            col: "s".into(),
            set: vec!["CA".into(), "NY".into()],
        };
        assert_eq!(instr.eval(&t), vec![false, true, false, true, false]);
    }

    #[test]
    fn boolean_combinators() {
        let t = t();
        let p = Pred::Or(vec![Pred::eq_i64("k", 1), Pred::eq_i64("k", 2)]);
        assert_eq!(p.eval(&t), vec![true, true, false, false, false]);
        let p = Pred::And(vec![Pred::eq_str("s", "TN"), Pred::eq_i64("k", 3)]);
        assert_eq!(p.eval(&t), vec![false, false, true, false, false]);
        let p = Pred::Not(Box::new(Pred::eq_str("s", "TN")));
        assert_eq!(p.eval(&t), vec![false, true, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Pred::eq_i64("s", 1).eval(&t());
    }

    #[test]
    fn matches_reference_eval() {
        let t = t();
        let preds = [
            Pred::eq_i64("k", 3),
            Pred::eq_str("s", "TN"),
            Pred::between_i64("k", 2, 4),
            Pred::InI64 {
                col: "k".into(),
                set: vec![5, 1, 5],
            },
            Pred::InStr {
                col: "s".into(),
                set: vec!["NY".into(), "CA".into()],
            },
            Pred::ColCmp {
                left: "x".into(),
                op: CmpOp::Ge,
                right: "k".into(),
                scale: 0.5,
            },
            Pred::Not(Box::new(Pred::Or(vec![
                Pred::eq_i64("k", 1),
                Pred::eq_str("s", "WA"),
            ]))),
        ];
        for p in &preds {
            assert_eq!(p.eval(&t), crate::reference::eval_reference(p, &t), "{p:?}");
        }
        // Empty table: every predicate evaluates to an empty mask.
        let e = Table::new(
            Schema::new(&[("k", DataType::I64), ("s", DataType::Str), ("x", DataType::F64)]),
            vec![
                Column::I64(vec![]),
                Column::Str(vec![]),
                Column::F64(vec![]),
            ],
        );
        for p in &preds {
            assert_eq!(p.eval(&e), Vec::<bool>::new(), "{p:?}");
        }
    }

    #[test]
    fn col_cmp_with_scale() {
        let t = t();
        // x > 2.0 * (k as f64): rows where x > 2k → none (x == k exactly).
        let p = Pred::ColCmp {
            left: "x".into(),
            op: CmpOp::Gt,
            right: "k".into(),
            scale: 2.0,
        };
        assert_eq!(p.eval(&t), vec![false; 5]);
        let p = Pred::ColCmp {
            left: "x".into(),
            op: CmpOp::Ge,
            right: "k".into(),
            scale: 0.5,
        };
        assert_eq!(p.eval(&t), vec![true; 5]);
    }
}
