//! TPC-DS Q95 (simplified): web orders shipped from **more than one
//! warehouse** within a date window to selected addresses — count-distinct
//! orders plus shipping-cost/profit sums.
//!
//! The DAG reproduces the paper's Fig. 13 exactly: 9 stages, with the
//! `ws_wh` self-join expressed as `map1 → groupby` (distinct warehouses
//! per order, HAVING > 1), a semi join back onto the main fact scan
//! (`map2 + groupby → reduce1`), two broadcast dimension joins
//! (`map3 →(all-gather) join1`, `map4 →(all-gather) join2`) and a final
//! reduce:
//!
//! ```text
//!  map1 ─shuffle─▶ groupby ─shuffle─▶ reduce1 ─shuffle─▶ join1 ─shuffle─▶ join2 ─shuffle─▶ reduce2
//!  map2 ─────────shuffle────────────▲       map3 ─all-gather─▲    map4 ─all-gather─▲
//! ```

use crate::datagen::Database;
use crate::expr::{CmpOp, Pred};
use crate::ops::group_by::{AggFunc, AggSpec};
use crate::plan::{JoinKind, QueryPlan, StageOp, StageSpec};
use crate::table::Table;
use ditto_dag::{DagBuilder, EdgeKind, StageKind};
use std::collections::{HashMap, HashSet};

/// Date window: year 2000 (day index 730..1094 → sk 731..1095); widened
/// from TPC-DS's 60 days so the compound selectivity stays non-trivial at
/// laptop-scale row counts.
const DATE_LO: i64 = 731;
const DATE_HI: i64 = 1095;
/// Ship-to states (a set, keeping the compound selectivity non-trivial at
/// laptop scale).
const STATES: &[&str] = &["IL", "CA", "NY", "TX", "GA"];
/// Web sites considered (site keys 1..=8 stand in for company "pri").
const MAX_SITE: i64 = 8;

/// Build the Q95 plan (Fig. 13's 9-stage DAG).
pub fn plan() -> QueryPlan {
    let dag = DagBuilder::new("q95")
        .stage("map1", StageKind::Map, 0, 0)
        .stage("groupby", StageKind::GroupBy, 0, 0)
        .stage("map2", StageKind::Map, 0, 0)
        .stage("reduce1", StageKind::Reduce, 0, 0)
        .stage("map3", StageKind::Map, 0, 0)
        .stage("join1", StageKind::Join, 0, 0)
        .stage("map4", StageKind::Map, 0, 0)
        .stage("join2", StageKind::Join, 0, 0)
        .stage("reduce2", StageKind::Reduce, 0, 0)
        // The map1→groupby and {groupby,map2}→reduce1 exchanges need key
        // co-partitioning (group-by / semi-join on order number): true
        // shuffles. Everything after reduce1 tolerates any partitioning
        // (broadcast joins; a global aggregate whose distinct key is
        // already disjoint per partition), so those edges use the paper's
        // `gather` primitive (§4.5) — which is what lets their stage
        // groups decompose into task groups at placement time (Fig. 7).
        .edge("map1", "groupby", EdgeKind::Shuffle, 0)
        .edge("groupby", "reduce1", EdgeKind::Shuffle, 0)
        .edge("map2", "reduce1", EdgeKind::Shuffle, 0)
        .edge("reduce1", "join1", EdgeKind::Gather, 0)
        .edge("map3", "join1", EdgeKind::AllGather, 0)
        .edge("join1", "join2", EdgeKind::Gather, 0)
        .edge("map4", "join2", EdgeKind::AllGather, 0)
        .edge("join2", "reduce2", EdgeKind::Gather, 0)
        .build()
        .expect("q95 DAG is well-formed");

    let stages = vec![
        // map1: (order, warehouse) pairs for the ws_wh self-join.
        StageSpec {
            op: StageOp::Scan {
                table: "web_sales".into(),
                projection: vec!["ws_order_number".into(), "ws_warehouse_sk".into()],
                predicate: None,
            },
            output_key: Some("ws_order_number".into()),
        },
        // groupby: orders shipped from more than one warehouse (ws_wh).
        StageSpec {
            op: StageOp::GroupBy {
                input: "map1".into(),
                keys: vec!["ws_order_number".into()],
                aggs: vec![AggSpec::new(
                    AggFunc::CountDistinct,
                    "ws_warehouse_sk",
                    "wh_count",
                )],
                having: Some(Pred::Cmp {
                    col: "wh_count".into(),
                    op: CmpOp::Gt,
                    value: crate::column::Value::I64(1),
                }),
            },
            output_key: Some("ws_order_number".into()),
        },
        // map2: the main fact scan (site-filtered).
        StageSpec {
            op: StageOp::Scan {
                table: "web_sales".into(),
                projection: vec![
                    "ws_order_number".into(),
                    "ws_ship_date_sk".into(),
                    "ws_ship_addr_sk".into(),
                    "ws_ext_ship_cost".into(),
                    "ws_net_profit".into(),
                ],
                predicate: Some(Pred::Cmp {
                    col: "ws_web_site_sk".into(),
                    op: CmpOp::Le,
                    value: crate::column::Value::I64(MAX_SITE),
                }),
            },
            output_key: Some("ws_order_number".into()),
        },
        // reduce1: keep fact rows of multi-warehouse orders (semi join).
        StageSpec {
            op: StageOp::Join {
                left: "map2".into(),
                right: "groupby".into(),
                left_key: "ws_order_number".into(),
                right_key: "ws_order_number".into(),
                kind: JoinKind::LeftSemi,
            },
            output_key: Some("ws_order_number".into()),
        },
        // map3: date dimension, windowed.
        StageSpec {
            op: StageOp::Scan {
                table: "date_dim".into(),
                projection: vec!["d_date_sk".into()],
                predicate: Some(Pred::between_i64("d_date_sk", DATE_LO, DATE_HI)),
            },
            output_key: None,
        },
        // join1: restrict to the date window (broadcast semi join).
        StageSpec {
            op: StageOp::Join {
                left: "reduce1".into(),
                right: "map3".into(),
                left_key: "ws_ship_date_sk".into(),
                right_key: "d_date_sk".into(),
                kind: JoinKind::LeftSemi,
            },
            output_key: Some("ws_order_number".into()),
        },
        // map4: addresses in the target states.
        StageSpec {
            op: StageOp::Scan {
                table: "customer_address".into(),
                projection: vec!["ca_address_sk".into()],
                predicate: Some(Pred::InStr {
                    col: "ca_state".into(),
                    set: STATES.iter().map(|s| s.to_string()).collect(),
                }),
            },
            output_key: None,
        },
        // join2: restrict to the state (broadcast semi join).
        StageSpec {
            op: StageOp::Join {
                left: "join1".into(),
                right: "map4".into(),
                left_key: "ws_ship_addr_sk".into(),
                right_key: "ca_address_sk".into(),
                kind: JoinKind::LeftSemi,
            },
            output_key: Some("ws_order_number".into()),
        },
        // reduce2: global aggregate.
        StageSpec {
            op: StageOp::GroupBy {
                input: "join2".into(),
                keys: vec![],
                aggs: vec![
                    AggSpec::new(AggFunc::CountDistinct, "ws_order_number", "order_count"),
                    AggSpec::new(AggFunc::Sum, "ws_ext_ship_cost", "total_shipping_cost"),
                    AggSpec::new(AggFunc::Sum, "ws_net_profit", "total_net_profit"),
                ],
                having: None,
            },
            output_key: None,
        },
    ];

    QueryPlan {
        name: "q95".into(),
        dag,
        stages,
    }
}

/// Independent oracle: `(distinct orders, Σ ship cost, Σ profit)`.
pub fn reference(db: &Database) -> (i64, f64, f64) {
    let ws = db.table("web_sales");
    let orders = ws.column_req("ws_order_number").as_i64();
    let whs = ws.column_req("ws_warehouse_sk").as_i64();
    let dates = ws.column_req("ws_ship_date_sk").as_i64();
    let addrs = ws.column_req("ws_ship_addr_sk").as_i64();
    let sites = ws.column_req("ws_web_site_sk").as_i64();
    let costs = ws.column_req("ws_ext_ship_cost").as_f64();
    let profits = ws.column_req("ws_net_profit").as_f64();

    // ws_wh: orders shipped from > 1 warehouse.
    let mut order_whs: HashMap<i64, HashSet<i64>> = HashMap::new();
    for i in 0..ws.num_rows() {
        order_whs.entry(orders[i]).or_default().insert(whs[i]);
    }
    let multi: HashSet<i64> = order_whs
        .into_iter()
        .filter(|(_, s)| s.len() > 1)
        .map(|(o, _)| o)
        .collect();

    let addr_tab = db.table("customer_address");
    let good_addrs: HashSet<i64> = addr_tab
        .column_req("ca_address_sk")
        .as_i64()
        .iter()
        .zip(addr_tab.column_req("ca_state").as_str())
        .filter(|&(_, s)| STATES.contains(&s.as_str()))
        .map(|(&a, _)| a)
        .collect();

    let mut kept = HashSet::new();
    let (mut cost, mut profit) = (0.0, 0.0);
    for i in 0..ws.num_rows() {
        if sites[i] <= MAX_SITE
            && multi.contains(&orders[i])
            && dates[i] >= DATE_LO
            && dates[i] <= DATE_HI
            && good_addrs.contains(&addrs[i])
        {
            kept.insert(orders[i]);
            cost += costs[i];
            profit += profits[i];
        }
    }
    (kept.len() as i64, cost, profit)
}

/// Extract `(count, cost, profit)` from the plan output.
pub fn result_triple(t: &Table) -> (i64, f64, f64) {
    if t.num_rows() == 0 {
        return (0, 0.0, 0.0);
    }
    let count_col = t.column_req("order_count");
    let count = match count_col {
        crate::column::Column::I64(v) => v[0],
        crate::column::Column::F64(v) => v[0] as i64,
        _ => panic!("unexpected order_count type"),
    };
    (
        count,
        t.column_req("total_shipping_cost").as_f64()[0],
        t.column_req("total_net_profit").as_f64()[0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::ScaleConfig;

    /// The DAG must match Fig. 13: 9 stages, 8 edges, two all-gathers,
    /// four scans, one sink, depth 5.
    #[test]
    fn shape_matches_fig13() {
        let p = plan();
        assert_eq!(p.dag.num_stages(), 9);
        assert_eq!(p.dag.num_edges(), 8);
        assert_eq!(
            p.dag
                .edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::AllGather)
                .count(),
            2
        );
        assert_eq!(p.dag.initial_stages().len(), 4);
        assert_eq!(p.dag.final_stages().len(), 1);
        assert_eq!(p.dag.max_depth(), 5);
        assert_eq!(p.dag.stage(p.dag.final_stages()[0]).name, "reduce2");
    }

    #[test]
    fn plan_matches_oracle() {
        let db = Database::generate(ScaleConfig::with_sf(1.0));
        let (n, cost, profit) = reference(&db);
        assert!(n > 0, "premise: Q95 selects some multi-warehouse orders");
        let out = plan().execute_reference(&db);
        let (gn, gc, gp) = result_triple(&out);
        assert_eq!(gn, n);
        assert!((gc - cost).abs() < 1e-6 * cost.abs().max(1.0));
        assert!((gp - profit).abs() < 1e-6 * profit.abs().max(1.0));
    }

    #[test]
    fn groupby_stage_is_selective() {
        // ws_wh keeps only multi-warehouse orders: a small fraction.
        let db = Database::generate(ScaleConfig::with_sf(0.5));
        let p = plan();
        let out = p.execute_stage(
            ditto_dag::StageId(1),
            &db,
            &[(
                "map1".to_string(),
                p.execute_stage(ditto_dag::StageId(0), &db, &Default::default(), None),
            )]
            .into_iter()
            .collect(),
            None,
        );
        let total_orders = {
            let mut o: Vec<i64> = db
                .table("web_sales")
                .column_req("ws_order_number")
                .as_i64()
                .to_vec();
            o.sort_unstable();
            o.dedup();
            o.len()
        };
        assert!(out.num_rows() > 0);
        assert!(out.num_rows() < total_orders / 2);
    }
}
