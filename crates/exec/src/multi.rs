//! Multi-job scheduling (the paper's stated future work, §4.5).
//!
//! Ditto optimizes one job assuming all free slots at arrival stay
//! available for its lifetime; the paper leaves inter-job resource
//! allocation to future work. This module provides a minimal version of
//! that study: a FIFO job queue simulated under two allocation policies —
//!
//! * [`AllocationPolicy::WholeCluster`] — each job takes every free slot
//!   (the paper's single-job assumption); jobs run one at a time;
//! * [`AllocationPolicy::StaticPartitions`] — the cluster is split into
//!   `k` equal partitions, jobs round-robin across them and run
//!   concurrently, each scheduled by Ditto within its partition.
//!
//! Whole-cluster runs each job fastest but serializes the queue; static
//! partitions trade per-job JCT for queueing delay — exactly the tension
//! the co-design the paper defers would resolve.

use crate::groundtruth::GroundTruth;
use crate::metrics::JobMetrics;
use crate::sim::simulate;
use ditto_cluster::ResourceManager;
use ditto_core::{Objective, Scheduler, SchedulingContext};
use ditto_dag::JobDag;
use ditto_timemodel::JobTimeModel;

/// One job waiting to run.
pub struct QueuedJob {
    /// Display name.
    pub name: String,
    /// The job's DAG (volumes stamped).
    pub dag: JobDag,
    /// Its fitted execution-time model.
    pub model: JobTimeModel,
    /// Submission time, seconds.
    pub arrival: f64,
}

/// How cluster slots are divided among concurrent jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Every job gets the whole cluster; jobs run serially (FIFO).
    WholeCluster,
    /// `k` equal static partitions, jobs round-robin across them.
    StaticPartitions(u32),
}

/// Outcome for one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job name.
    pub name: String,
    /// Submission time.
    pub arrival: f64,
    /// When its tasks started (≥ arrival; queueing before that).
    pub start: f64,
    /// When it finished.
    pub finish: f64,
    /// Execution metrics (JCT excludes queueing).
    pub metrics: JobMetrics,
}

impl JobOutcome {
    /// Completion time as the user sees it: queueing + execution.
    pub fn response_time(&self) -> f64 {
        self.finish - self.arrival
    }
}

/// Simulate a FIFO queue of jobs on `free_slots` under the policy.
/// `jobs` must be sorted by arrival time.
pub fn simulate_queue(
    free_slots: &[u32],
    jobs: &[QueuedJob],
    scheduler: &dyn Scheduler,
    objective: Objective,
    policy: AllocationPolicy,
    gt: &GroundTruth,
) -> Vec<JobOutcome> {
    assert!(
        jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "jobs must be sorted by arrival"
    );
    let partitions: Vec<Vec<u32>> = match policy {
        AllocationPolicy::WholeCluster => vec![free_slots.to_vec()],
        AllocationPolicy::StaticPartitions(k) => {
            let k = k.max(1);
            // Split every server's slots k ways (each partition sees the
            // same server *shape*, scaled down).
            (0..k)
                .map(|i| {
                    free_slots
                        .iter()
                        .map(|&f| (f / k + u32::from(i < f % k)).max(1))
                        .collect()
                })
                .collect()
        }
    };
    // next free time per partition
    let mut free_at = vec![0.0_f64; partitions.len()];
    jobs.iter()
        .enumerate()
        .map(|(i, job)| {
            let p = fifo_pick(&free_at);
            let start = free_at[p].max(job.arrival);
            let rm = ResourceManager::from_free_slots(partitions[p].clone());
            let schedule = scheduler.schedule(&SchedulingContext {
                dag: &job.dag,
                model: &job.model,
                resources: &rm,
                objective,
            });
            let (_, metrics) = simulate(&job.dag, &schedule, gt);
            free_at[p] = start + metrics.jct;
            let _ = i;
            JobOutcome {
                name: job.name.clone(),
                arrival: job.arrival,
                start,
                finish: start + metrics.jct,
                metrics,
            }
        })
        .collect()
}

/// FIFO dispatch: the partition the next job runs on, by the explicit
/// ordering key **(next-free instant, partition index)** — earliest
/// availability wins, bit-equal availability goes to the lower index.
///
/// The index component is load-bearing, not a stylistic tiebreak:
/// [`Iterator::min_by`] keeps the *last* of equally-minimal elements, so
/// comparing availability alone would silently dispatch equal loads to
/// the highest partition. The key makes the minimum unique, which is
/// what keeps multi-job sweeps replayable across refactors (the race
/// checker's schedule-space exploration assumes dispatch is a pure
/// function of `free_at`).
pub(crate) fn fifo_pick(free_at: &[f64]) -> usize {
    free_at
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(p, _)| p)
        .expect("at least one partition exists")
}

/// Aggregate queue statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Mean response time (queueing + execution).
    pub mean_response: f64,
    /// Completion time of the last job.
    pub makespan: f64,
    /// Total cost across jobs.
    pub total_cost: f64,
}

/// Summarize outcomes.
pub fn queue_stats(outcomes: &[JobOutcome]) -> QueueStats {
    let n = outcomes.len().max(1) as f64;
    QueueStats {
        mean_response: outcomes.iter().map(|o| o.response_time()).sum::<f64>() / n,
        makespan: outcomes.iter().map(|o| o.finish).fold(0.0, f64::max),
        total_cost: outcomes.iter().map(|o| o.metrics.total_cost()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::ExecConfig;
    use crate::profile::profile_job;
    use ditto_core::DittoScheduler;

    #[test]
    fn fifo_pick_breaks_ties_to_the_lower_index() {
        // All equal: lowest index, not min_by's last-minimum default.
        assert_eq!(fifo_pick(&[0.0, 0.0, 0.0]), 0);
        // Unique minimum wins regardless of position.
        assert_eq!(fifo_pick(&[5.0, 2.0, 3.0]), 1);
        // Bit-equal minima among a subset: the lower of the tied pair.
        assert_eq!(fifo_pick(&[7.0, 4.0, 4.0]), 1);
        // -0.0 and 0.0 are distinct under total_cmp: -0.0 sorts first.
        assert_eq!(fifo_pick(&[0.0, -0.0]), 1);
        assert_eq!(fifo_pick(&[1.0]), 0);
    }

    fn make_jobs(n: usize, gt: &GroundTruth) -> Vec<QueuedJob> {
        (0..n)
            .map(|i| {
                let dag = ditto_dag::generators::q95_shape();
                let profile = profile_job(&dag, gt, &[10, 20, 40, 80]);
                let (model, _) = profile.build_model(&dag);
                QueuedJob {
                    name: format!("job{i}"),
                    dag,
                    model,
                    arrival: i as f64 * 5.0,
                }
            })
            .collect()
    }

    #[test]
    fn whole_cluster_serializes() {
        let gt = GroundTruth::new(ExecConfig::default());
        let jobs = make_jobs(3, &gt);
        let out = simulate_queue(
            &[96; 8],
            &jobs,
            &DittoScheduler::new(),
            Objective::Jct,
            AllocationPolicy::WholeCluster,
            &gt,
        );
        assert_eq!(out.len(), 3);
        for w in out.windows(2) {
            assert!(w[1].start >= w[0].finish - 1e-9, "FIFO serialization");
        }
        // Later jobs queue: response > execution JCT.
        assert!(out[2].response_time() > out[2].metrics.jct);
    }

    #[test]
    fn partitions_run_concurrently() {
        let gt = GroundTruth::new(ExecConfig::default());
        let jobs = make_jobs(4, &gt);
        let whole = queue_stats(&simulate_queue(
            &[96; 8],
            &jobs,
            &DittoScheduler::new(),
            Objective::Jct,
            AllocationPolicy::WholeCluster,
            &gt,
        ));
        let split = queue_stats(&simulate_queue(
            &[96; 8],
            &jobs,
            &DittoScheduler::new(),
            Objective::Jct,
            AllocationPolicy::StaticPartitions(2),
            &gt,
        ));
        // Each partitioned job runs slower (fewer slots), but two run at
        // once; with enough queueing pressure the makespan improves or at
        // least per-job JCT inflates while concurrency compensates.
        let jct_whole = whole.makespan;
        assert!(split.makespan < jct_whole * 1.5, "partitions must overlap work");
        assert!(split.mean_response.is_finite());
    }

    #[test]
    fn stats_aggregate() {
        let o = vec![
            JobOutcome {
                name: "a".into(),
                arrival: 0.0,
                start: 0.0,
                finish: 10.0,
                metrics: JobMetrics {
                    jct: 10.0,
                    compute_cost: 5.0,
                    storage_cost: 1.0,
                    faults: Default::default(),
                },
            },
            JobOutcome {
                name: "b".into(),
                arrival: 2.0,
                start: 10.0,
                finish: 18.0,
                metrics: JobMetrics {
                    jct: 8.0,
                    compute_cost: 4.0,
                    storage_cost: 0.0,
                    faults: Default::default(),
                },
            },
        ];
        let s = queue_stats(&o);
        assert!((s.mean_response - (10.0 + 16.0) / 2.0).abs() < 1e-12);
        assert_eq!(s.makespan, 18.0);
        assert_eq!(s.total_cost, 10.0);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_jobs_rejected() {
        let gt = GroundTruth::new(ExecConfig::default());
        let mut jobs = make_jobs(2, &gt);
        jobs[0].arrival = 100.0;
        simulate_queue(
            &[96; 2],
            &jobs,
            &DittoScheduler::new(),
            Objective::Jct,
            AllocationPolicy::WholeCluster,
            &gt,
        );
    }
}
