//! External-storage comparison: S3-like vs Redis-like vs shared memory
//! (the paper's §6.3 Redis experiment, plus the SPRIGHT motivation).
//!
//! Runs all four TPC-DS queries under both external media and reports how
//! much JCT the faster medium buys — and how Ditto's shared-memory
//! grouping shrinks the gap by avoiding external storage altogether.
//!
//! ```sh
//! cargo run --release --example storage_comparison
//! ```

use ditto::cluster::{Cluster, ResourceManager, SlotDistribution};
use ditto::core::baselines::NimbleScheduler;
use ditto::core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
use ditto::exec::{profile_job, simulate, ExecConfig, GroundTruth};
use ditto::sql::queries::Query;
use ditto::sql::{Database, ScaleConfig};
use ditto::storage::{Medium, TransferModel};

fn main() {
    // The raw medium gap first (per-task time to move 1 GB).
    println!("per-task transfer of 1 GB:");
    for m in [Medium::SharedMemory, Medium::Redis, Medium::S3] {
        let t = TransferModel::for_medium(m).transfer_time(1 << 30);
        println!("  {m:<14} {t:>10.4}s");
    }
    println!();

    let db = Database::generate(ScaleConfig::with_sf(0.5));
    let rm = ResourceManager::snapshot(&Cluster::paper_testbed(&SlotDistribution::zipf_09()));

    println!("query   medium  scheduler      JCT(s)    cost(GB·s)");
    for q in Query::all() {
        for medium in [Medium::S3, Medium::Redis] {
            let mut plan = q.prepared_plan(&db);
            // Redis capacity forces the scaled-down benchmark (§6.3).
            let scale = if medium == Medium::Redis { 4_000.0 } else { 40_000.0 };
            plan.scale_volumes(scale);
            let gt = GroundTruth::new(ExecConfig {
                external: medium,
                ..Default::default()
            });
            let profile = profile_job(&plan.dag, &gt, &[10, 20, 40, 80, 120]);
            let (model, _) = profile.build_model(&plan.dag);
            for s in [
                &DittoScheduler::new() as &dyn Scheduler,
                &NimbleScheduler::default(),
            ] {
                let schedule = s.schedule(&SchedulingContext {
                    dag: &plan.dag,
                    model: &model,
                    resources: &rm,
                    objective: Objective::Jct,
                });
                let (_, m) = simulate(&plan.dag, &schedule, &gt);
                println!(
                    "{:<6}  {:<6}  {:<12} {:>8.2}  {:>12.1}",
                    q.name(),
                    medium.to_string(),
                    s.name(),
                    m.jct,
                    m.total_cost()
                );
            }
        }
    }
}
